#!/usr/bin/env bash
# Lints the demo hazard specs plus every tmverify corpus kernel with
# `tmlint --json`, concatenating the diagnostics in a fixed order.
#
#   ci/tmlint-smoke.sh          diff against ci/tmlint-baseline.jsonl;
#                               any new or vanished diagnostic fails
#   ci/tmlint-smoke.sh --bless  rewrite the checked-in baseline
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

# tmlint exits 1 when an error-severity diagnostic fires (the
# mixed-access demo is supposed to); only exit 2 (usage/parse) is fatal.
lint() {
  cargo run --release -q -p tmstatic --bin tmlint -- "$@" >> "$out" && rc=0 || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "tmlint failed ($rc) for: $*" >&2
    exit "$rc"
  fi
}

# Demo hazards: mixed-access race, capacity overflow, hand-off cycle.
lint --prog '2/c:L0,S1/p:L1' --json
lint --prog '6/c:L0,L1,L2,S0/c:L3,L4,L5,S3' --system LockillerTM --tiny-l1 --json
lint --prog '2/c:L0,S1/c:L1,S0' --json

# Every corpus witness kernel, in sorted filename order, under the
# geometry the witness was found with.
for w in crates/tmverify/tests/corpus/*.json; do
  mapfile -t fields < <(python3 -c "
import json, sys
w = json.load(open(sys.argv[1]))
print(w['prog'])
print(w['system'])
print(1 if w.get('tiny_l1') else 0)
" "$w")
  args=(--prog "${fields[0]}" --system "${fields[1]}" --json)
  [ "${fields[2]}" = 1 ] && args+=(--tiny-l1)
  lint "${args[@]}"
done

if [ "${1:-}" = "--bless" ]; then
  mv "$out" ci/tmlint-baseline.jsonl
  trap - EXIT
  echo "blessed $(wc -l < ci/tmlint-baseline.jsonl) diagnostic(s) into ci/tmlint-baseline.jsonl"
else
  diff -u ci/tmlint-baseline.jsonl "$out"
  echo "tmlint diagnostics match the baseline ($(wc -l < "$out") diagnostic(s))"
fi
