#!/usr/bin/env bash
# Lints the demo hazard specs plus every tmverify corpus kernel with
# `tmlint --json`, and the compiled VM bytecode (spec kernels + STAMP
# workloads) with `tmlint kernel --json`, concatenating each stream's
# diagnostics in a fixed order.
#
#   ci/tmlint-smoke.sh          diff against ci/tmlint-baseline.jsonl
#                               and ci/tmlint-kernel-baseline.jsonl;
#                               any new or vanished diagnostic fails
#   ci/tmlint-smoke.sh --bless  rewrite both checked-in baselines
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(mktemp)
kout=$(mktemp)
trap 'rm -f "$out" "$kout"' EXIT

# tmlint exits 1 when an error-severity diagnostic fires (the
# mixed-access demo is supposed to); only exit 2 (usage/parse) is fatal.
lint() {
  cargo run --release -q -p tmstatic --bin tmlint -- "$@" >> "$out" && rc=0 || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "tmlint failed ($rc) for: $*" >&2
    exit "$rc"
  fi
}

# Demo hazards: mixed-access race, capacity overflow, hand-off cycle.
lint --prog '2/c:L0,S1/p:L1' --json
lint --prog '6/c:L0,L1,L2,S0/c:L3,L4,L5,S3' --system LockillerTM --tiny-l1 --json
lint --prog '2/c:L0,S1/c:L1,S0' --json

# Every corpus witness kernel, in sorted filename order, under the
# geometry the witness was found with.
for w in crates/tmverify/tests/corpus/*.json; do
  mapfile -t fields < <(python3 -c "
import json, sys
w = json.load(open(sys.argv[1]))
print(w['prog'])
print(w['system'])
print(1 if w.get('tiny_l1') else 0)
" "$w")
  args=(--prog "${fields[0]}" --system "${fields[1]}" --json)
  [ "${fields[2]}" = 1 ] && args+=(--tiny-l1)
  lint "${args[@]}"
done

# Kernel mode: the same demo specs compiled to guest bytecode, plus the
# STAMP VM kernels (kmeans both contention modes; intruder-flow is the
# Top-degradation case and must stay diagnostic-free).
klint() {
  cargo run --release -q -p tmstatic --bin tmlint -- kernel "$@" >> "$kout" && rc=0 || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "tmlint kernel failed ($rc) for: $*" >&2
    exit "$rc"
  fi
}
klint --prog '2/c:L0,S1/p:L1' --json
klint --prog '6/c:L0,L1,L2,S0/c:L3,L4,L5,S3' --system LockillerTM --tiny-l1 --json
klint --prog '2/c:L0,S1/c:L1,S0' --json
klint --stamp kmeans --threads 2 --system LockillerTM --json
klint --stamp kmeans-low --threads 2 --system LockillerTM --json
klint --stamp intruder-flow --threads 2 --system LockillerTM --json

if [ "${1:-}" = "--bless" ]; then
  mv "$out" ci/tmlint-baseline.jsonl
  mv "$kout" ci/tmlint-kernel-baseline.jsonl
  trap - EXIT
  echo "blessed $(wc -l < ci/tmlint-baseline.jsonl) diagnostic(s) into ci/tmlint-baseline.jsonl"
  echo "blessed $(wc -l < ci/tmlint-kernel-baseline.jsonl) diagnostic(s) into ci/tmlint-kernel-baseline.jsonl"
else
  diff -u ci/tmlint-baseline.jsonl "$out"
  echo "tmlint diagnostics match the baseline ($(wc -l < "$out") diagnostic(s))"
  diff -u ci/tmlint-kernel-baseline.jsonl "$kout"
  echo "tmlint kernel diagnostics match the baseline ($(wc -l < "$kout") diagnostic(s))"
fi
