//! Cross-crate integration tests asserting the paper's *qualitative*
//! claims hold on the reproduction, at reduced scale: each test maps to a
//! section of the evaluation (§IV-B) and checks the direction of an
//! effect, not absolute numbers.

use lockillertm::lockiller::{Runner, SystemKind};
use lockillertm::sim_core::config::SystemConfig;
use lockillertm::sim_core::stats::AbortCause;
use lockillertm::stamp::{Scale, Workload, WorkloadKind};

fn run(
    kind: SystemKind,
    w: WorkloadKind,
    threads: usize,
) -> lockillertm::sim_core::stats::RunStats {
    let mut prog = Workload::with_scale(w, threads, Scale::Tiny);
    Runner::new(kind)
        .threads(threads)
        .config(SystemConfig::testing(threads.max(2)))
        .run(&mut prog)
        .into_stats()
}

/// §IV-B(a): recovery + insts-based priority raises the commit rate
/// versus requester-win across the contended workloads (Fig. 8).
#[test]
fn recovery_raises_commit_rate() {
    let mut base_sum = 0.0;
    let mut rwi_sum = 0.0;
    let mut n = 0.0;
    for w in [
        WorkloadKind::Intruder,
        WorkloadKind::KmeansHigh,
        WorkloadKind::VacationHigh,
    ] {
        base_sum += run(SystemKind::Baseline, w, 4).commit_rate();
        rwi_sum += run(SystemKind::LockillerRwi, w, 4).commit_rate();
        n += 1.0;
    }
    assert!(
        rwi_sum / n >= base_sum / n,
        "recovery must not lower the average commit rate ({:.3} vs {:.3})",
        rwi_sum / n,
        base_sum / n
    );
}

/// §IV-B(b): the HTMLock mechanism eliminates `mutex` aborts entirely
/// (Fig. 10: "the HTMLock mechanism eliminates transaction aborts due to
/// mutex").
#[test]
fn htmlock_eliminates_mutex_aborts() {
    for w in [WorkloadKind::Yada, WorkloadKind::VacationHigh] {
        let rwil = run(SystemKind::LockillerRwil, w, 2);
        let full = run(SystemKind::LockillerTm, w, 2);
        assert_eq!(
            rwil.abort_count(AbortCause::Mutex),
            0,
            "{}: RWIL saw mutex aborts",
            w.name()
        );
        assert_eq!(
            full.abort_count(AbortCause::Mutex),
            0,
            "{}: full saw mutex aborts",
            w.name()
        );
    }
}

/// §IV-B(c): switchingMode reduces capacity (`of`) aborts when the L1 is
/// small (Fig. 10: "the switchingMode mechanism significantly reduces
/// aborts due to cache overflow").
#[test]
fn switching_mode_reduces_of_aborts() {
    let mut cfg = SystemConfig::testing(2);
    cfg.mem.l1 = lockillertm::sim_core::config::CacheGeometry { sets: 4, ways: 2 };
    let run_small = |kind: SystemKind| {
        let mut prog = Workload::with_scale(WorkloadKind::Labyrinth, 2, Scale::Tiny);
        Runner::new(kind)
            .threads(2)
            .config(cfg.clone())
            .run(&mut prog)
            .into_stats()
    };
    let rwil = run_small(SystemKind::LockillerRwil);
    let full = run_small(SystemKind::LockillerTm);
    assert!(
        full.abort_count(AbortCause::Of) <= rwil.abort_count(AbortCause::Of),
        "switchingMode must not increase of aborts ({} vs {})",
        full.abort_count(AbortCause::Of),
        rwil.abort_count(AbortCause::Of)
    );
    assert!(full.switches_granted > 0, "switchingMode never engaged");
}

/// §III-C: switchingMode does NOT rescue exception (fault) aborts — the
/// paper explicitly chooses not to support switching on exceptions.
#[test]
fn switching_mode_does_not_cover_faults() {
    let s = run(SystemKind::LockillerTm, WorkloadKind::Yada, 2);
    assert!(s.abort_count(AbortCause::Fault) > 0, "yada must fault");
}

/// Every Table-II system produces a valid (serializable) result on every
/// workload: the per-workload `validate` oracle passes, which `run`
/// enforces by panicking otherwise.
#[test]
fn all_systems_all_workloads_serializable() {
    for w in WorkloadKind::ALL {
        for kind in SystemKind::ALL {
            run(kind, w, 2);
        }
    }
}

/// Determinism across the full stack: same seed, same system, same
/// workload => byte-identical statistics.
#[test]
fn full_stack_determinism() {
    for kind in [SystemKind::Baseline, SystemKind::LockillerTm] {
        let a = run(kind, WorkloadKind::Intruder, 4);
        let b = run(kind, WorkloadKind::Intruder, 4);
        assert_eq!(a.cycles, b.cycles, "{}: cycles diverged", kind.name());
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.rejects, b.rejects);
        assert_eq!(a.messages, b.messages);
    }
}

/// No wake-up is ever lost: the safety-net timeout never fires in any
/// recovery configuration.
#[test]
fn no_wakeup_timeouts_anywhere() {
    for w in [
        WorkloadKind::KmeansHigh,
        WorkloadKind::Intruder,
        WorkloadKind::VacationHigh,
    ] {
        for kind in [
            SystemKind::LosaTmSafu,
            SystemKind::LockillerRwi,
            SystemKind::LockillerRwil,
            SystemKind::LockillerTm,
        ] {
            let s = run(kind, w, 4);
            assert_eq!(
                s.wakeup_timeouts,
                0,
                "{} / {}: lost wake-up",
                kind.name(),
                w.name()
            );
        }
    }
}

/// The full system must beat the baseline on high-contention workloads
/// at high thread counts (the paper's bottom line, Fig. 12 direction).
#[test]
fn lockillertm_beats_baseline_under_contention() {
    let mut full = 0u64;
    let mut base = 0u64;
    for w in [
        WorkloadKind::KmeansHigh,
        WorkloadKind::VacationHigh,
        WorkloadKind::Yada,
    ] {
        full += run(SystemKind::LockillerTm, w, 4).cycles;
        base += run(SystemKind::Baseline, w, 4).cycles;
    }
    assert!(
        full < base,
        "LockillerTM ({full} cycles) must beat Baseline ({base} cycles) on contended workloads"
    );
}

/// DESIGN.md §8 contention-class table: the ports must land in their
/// documented classes — labyrinth has the biggest write sets, ssca2 and
/// kmeans the smallest transactions.
#[test]
fn workload_characterization_classes() {
    let measure = |w: WorkloadKind| {
        let mut prog = Workload::with_scale(w, 4, Scale::Small);
        Runner::new(SystemKind::Baseline)
            .threads(4)
            .config(SystemConfig::testing(4))
            .run(&mut prog)
            .into_stats()
    };
    let lab = measure(WorkloadKind::Labyrinth);
    let km = measure(WorkloadKind::KmeansHigh);
    let ss = measure(WorkloadKind::Ssca2);
    let vac = measure(WorkloadKind::VacationHigh);

    assert!(
        lab.avg_write_set() > vac.avg_write_set(),
        "labyrinth writes whole paths ({:.1} lines) and must out-write vacation ({:.1})",
        lab.avg_write_set(),
        vac.avg_write_set()
    );
    assert!(
        lab.avg_tx_len() > ss.avg_tx_len(),
        "labyrinth txs ({:.0} cycles) must dwarf ssca2's ({:.0})",
        lab.avg_tx_len(),
        ss.avg_tx_len()
    );
    assert!(
        km.avg_write_set() <= 3.0,
        "kmeans accumulator txs must stay tiny ({:.1} lines)",
        km.avg_write_set()
    );
    assert!(
        vac.avg_read_set() > km.avg_read_set(),
        "vacation's tree lookups ({:.1} lines) must out-read kmeans ({:.1})",
        vac.avg_read_set(),
        km.avg_read_set()
    );
}

/// §III-A topology variant: direct L1-to-L1 responses preserve
/// correctness on every workload and never slow the contended handoffs.
#[test]
fn direct_response_topology_correct() {
    for w in [
        WorkloadKind::KmeansHigh,
        WorkloadKind::Intruder,
        WorkloadKind::Genome,
    ] {
        let mut cfg = SystemConfig::testing(4);
        cfg.mem.direct_rsp = true;
        let mut prog = Workload::with_scale(w, 4, Scale::Tiny);
        let stats = Runner::new(SystemKind::LockillerTm)
            .threads(4)
            .config(cfg)
            .run(&mut prog)
            .stats;
        assert_eq!(
            stats.wakeup_timeouts,
            0,
            "{}: lost wakeup under direct topology",
            w.name()
        );
    }
}
