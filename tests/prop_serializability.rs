//! Property-based serializability testing of the full stack: random
//! multi-threaded guest programs built from commutative critical sections
//! whose final memory state is computable independent of interleaving.
//! Every Table-II system must produce exactly that state.
//!
//! This is the strongest end-to-end oracle in the suite: any isolation
//! bug anywhere (coherence protocol, recovery/NACK path, HTMLock
//! signatures, switchingMode, value layer) shows up as a wrong counter.

use lockillertm::lockiller::flatmem::{FlatMem, SetupCtx};
use lockillertm::lockiller::guest::GuestCtx;
use lockillertm::lockiller::{Program, Runner, SystemKind};
use lockillertm::sim_core::config::SystemConfig;
use lockillertm::sim_core::types::Addr;
use proptest::prelude::*;

/// One critical section: add `delta` to `cells` (a multiset of cell
/// indices), with `work` compute cycles inside.
#[derive(Clone, Debug)]
struct Crit {
    cells: Vec<u8>,
    delta: u64,
    work: u8,
}

#[derive(Clone, Debug)]
struct RandomProgram {
    ncells: u64,
    /// Per-thread script of critical sections.
    scripts: Vec<Vec<Crit>>,
    base: Addr,
}

impl Program for RandomProgram {
    fn name(&self) -> &str {
        "random-commutative"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.scripts.len());
        self.base = s.alloc(self.ncells * 8);
        for c in 0..self.ncells {
            s.write(self.base.add(c * 8), 0);
        }
    }

    fn run(&self, ctx: &mut GuestCtx) {
        for crit in &self.scripts[ctx.tid] {
            let base = self.base;
            let ncells = self.ncells;
            ctx.critical(|tx| {
                for &c in &crit.cells {
                    let a = base.add((c as u64 % ncells) * 8);
                    let v = tx.load(a)?;
                    tx.compute(crit.work as u64)?;
                    tx.store(a, v + crit.delta)?;
                }
                Ok(())
            });
            ctx.compute(10);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // Addition commutes: expected value per cell is the sum of deltas
        // over every script touching it, regardless of interleaving.
        let mut want = vec![0u64; self.ncells as usize];
        for script in &self.scripts {
            for crit in script {
                for &c in &crit.cells {
                    want[(c as u64 % self.ncells) as usize] += crit.delta;
                }
            }
        }
        for (c, &w) in want.iter().enumerate() {
            let got = mem.read(self.base.add(c as u64 * 8));
            if got != w {
                return Err(format!("cell {c}: {got} != {w}"));
            }
        }
        Ok(())
    }
}

fn crit_strategy() -> impl Strategy<Value = Crit> {
    (prop::collection::vec(0u8..6, 1..4), 1u64..10, 0u8..30).prop_map(|(cells, delta, work)| Crit {
        cells,
        delta,
        work,
    })
}

fn program_strategy(threads: usize) -> impl Strategy<Value = RandomProgram> {
    prop::collection::vec(prop::collection::vec(crit_strategy(), 1..12), threads).prop_map(
        |scripts| RandomProgram {
            ncells: 6,
            scripts,
            base: Addr::NULL,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn baseline_serializable(prog in program_strategy(3)) {
        let mut p = prog;
        let _ = Runner::new(SystemKind::Baseline).threads(3).config(SystemConfig::testing(3)).run(&mut p);
    }

    #[test]
    fn rwi_serializable(prog in program_strategy(3)) {
        let mut p = prog;
        let _ = Runner::new(SystemKind::LockillerRwi).threads(3).config(SystemConfig::testing(3)).run(&mut p);
    }

    #[test]
    fn full_lockillertm_serializable(prog in program_strategy(3)) {
        let mut p = prog;
        let _ = Runner::new(SystemKind::LockillerTm).threads(3).config(SystemConfig::testing(3)).run(&mut p);
    }

    #[test]
    fn full_lockillertm_tiny_l1_serializable(prog in program_strategy(3)) {
        // A 8-line L1 forces the overflow/switching machinery into play
        // on these multi-cell transactions.
        let mut cfg = SystemConfig::testing(3);
        cfg.mem.l1 = lockillertm::sim_core::config::CacheGeometry { sets: 4, ways: 2 };
        let mut p = prog;
        let _ = Runner::new(SystemKind::LockillerTm).threads(3).config(cfg).run(&mut p);
    }

    #[test]
    fn losatm_serializable(prog in program_strategy(2)) {
        let mut p = prog;
        let _ = Runner::new(SystemKind::LosaTmSafu).threads(2).config(SystemConfig::testing(2)).run(&mut p);
    }
}
