//! A small, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace's benches link against this shim instead (the `criterion`
//! dependency is a renamed path dependency on this package). It covers
//! exactly the API subset `crates/bench` uses: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`BenchmarkId::new`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is calibrated to a
//! short wall-clock window, timed once, and reported as mean ns/iter on
//! stdout. There are no statistics, plots, or saved baselines.
//!
//! [`criterion`]: https://docs.rs/criterion
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark. Short on purpose: these
/// benches exist to flag gross regressions, not to resolve noise.
const TARGET: Duration = Duration::from_millis(200);

/// Entry point handed to every registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks, reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark; `f` drives the [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.into_benchmark_id());
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.into_benchmark_id());
        self
    }

    /// End the group. (No deferred reporting in the shim.)
    pub fn finish(self) {}
}

/// Times a closure: calibrates an iteration count to roughly [`TARGET`],
/// then measures one batch.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it takes a measurable slice of
        // the target window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET / 8 || n >= 1 << 40 {
                let per = elapsed.as_nanos() as f64 / n as f64;
                let target = (TARGET.as_nanos() as f64 / per.max(1.0)) as u64;
                n = target.clamp(1, 1 << 40);
                break;
            }
            n = n.saturating_mul(4);
        }
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / n as f64;
        self.iters = n;
    }

    fn report(&self, group: &str, id: &BenchmarkId) {
        println!(
            "bench {group}/{id} ... {:>12.1} ns/iter ({} iters)",
            self.ns_per_iter, self.iters
        );
    }
}

/// A benchmark name, optionally parameterised (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.param {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Anything `bench_function`/`bench_with_input` accept as an id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            param: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            param: None,
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench_fn(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups. Extra CLI arguments (which
/// `cargo bench` forwards) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut x = 0u64;
        g.bench_function("add", |b| b.iter(|| x = x.wrapping_add(1)));
        g.bench_with_input(BenchmarkId::new("mul", 3u32), &3u64, |b, &k| {
            b.iter(|| x.wrapping_mul(k));
        });
        g.finish();
        assert!(x > 0);
    }

    #[test]
    fn id_formats_with_param() {
        assert_eq!(
            BenchmarkId::new("point", "genome").to_string(),
            "point/genome"
        );
    }
}
