//! Property tests for mesh routing and link-contention timing.

use noc::{route_hops, Mesh};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hops_triangle_inequality(a in 0usize..32, b in 0usize..32, c in 0usize..32) {
        let w = 4;
        prop_assert!(route_hops(a, c, w) <= route_hops(a, b, w) + route_hops(b, c, w));
    }

    #[test]
    fn delivery_never_before_ideal(src in 0usize..32, dst in 0usize..32, flits in 1u32..8, start in 0u64..1000) {
        let mut m = Mesh::new(4, 8, 1);
        let at = m.send(start, src, dst, flits);
        prop_assert!(at >= start + m.ideal_latency(src, dst, flits).min(1));
        prop_assert!(at >= start);
    }

    #[test]
    fn contention_only_delays(sends in prop::collection::vec((0usize..32, 0usize..32, 1u32..6), 1..40)) {
        // Sending the same sequence twice: the second batch, injected
        // later, must never arrive earlier relative to its injection.
        let mut m = Mesh::new(4, 8, 1);
        let mut last_arrival = 0;
        for (i, &(s, d, f)) in sends.iter().enumerate() {
            let t = i as u64; // staggered injection
            let at = m.send(t, s, d, f);
            prop_assert!(at >= t, "arrival before injection");
            last_arrival = last_arrival.max(at);
        }
        // Quiet mesh afterwards: a fresh message sees no stale queueing
        // beyond the drained horizon.
        let at = m.send(last_arrival + 100, 0, 31, 1);
        prop_assert_eq!(at, last_arrival + 100 + m.ideal_latency(0, 31, 1));
    }

    #[test]
    fn stats_count_messages(sends in prop::collection::vec((0usize..32, 0usize..32), 1..30)) {
        let mut m = Mesh::new(4, 8, 1);
        for (i, &(s, d)) in sends.iter().enumerate() {
            m.send(i as u64 * 10, s, d, 1);
        }
        prop_assert_eq!(m.stats().messages, sends.len() as u64);
        let want_hops: u64 = sends.iter().map(|&(s, d)| route_hops(s, d, 4) as u64).sum();
        prop_assert_eq!(m.stats().hops, want_hops);
    }
}
