//! Mesh coordinates and deterministic X-Y (dimension-ordered) routing.
//!
//! X-Y routing first corrects the X coordinate, then the Y coordinate.
//! It is deadlock-free on a mesh and is what the paper's Table I specifies.

/// A tile index in row-major order: `id = y * width + x`.
pub type NodeId = usize;

/// Mesh coordinates of a tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Position {
    pub x: usize,
    pub y: usize,
}

impl Position {
    pub fn of(id: NodeId, width: usize) -> Position {
        Position {
            x: id % width,
            y: id / width,
        }
    }

    pub fn id(self, width: usize) -> NodeId {
        self.y * width + self.x
    }
}

/// Number of hops between two nodes under X-Y routing (Manhattan distance).
pub fn route_hops(src: NodeId, dst: NodeId, width: usize) -> usize {
    let a = Position::of(src, width);
    let b = Position::of(dst, width);
    a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
}

/// Iterator over the node sequence of the X-Y route from `src` to `dst`,
/// inclusive of both endpoints.
pub fn route_path(src: NodeId, dst: NodeId, width: usize) -> Vec<NodeId> {
    let s = Position::of(src, width);
    let d = Position::of(dst, width);
    let mut path = Vec::with_capacity(route_hops(src, dst, width) + 1);
    let mut cur = s;
    path.push(cur.id(width));
    while cur.x != d.x {
        cur.x = if d.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        path.push(cur.id(width));
    }
    while cur.y != d.y {
        cur.y = if d.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        path.push(cur.id(width));
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_roundtrip() {
        for id in 0..32 {
            assert_eq!(Position::of(id, 4).id(4), id);
        }
    }

    #[test]
    fn hops_zero_for_self() {
        for id in 0..32 {
            assert_eq!(route_hops(id, id, 4), 0);
        }
    }

    #[test]
    fn hops_symmetric() {
        for a in 0..32 {
            for b in 0..32 {
                assert_eq!(route_hops(a, b, 4), route_hops(b, a, 4));
            }
        }
    }

    #[test]
    fn path_is_x_then_y() {
        // From (0,0) to (3,2) on a 4-wide mesh: along X first.
        let p = route_path(0, 2 * 4 + 3, 4);
        assert_eq!(p, vec![0, 1, 2, 3, 7, 11]);
    }

    #[test]
    fn path_length_matches_hops() {
        for a in 0..32 {
            for b in 0..32 {
                let p = route_path(a, b, 4);
                assert_eq!(p.len(), route_hops(a, b, 4) + 1);
                assert_eq!(*p.first().unwrap(), a);
                assert_eq!(*p.last().unwrap(), b);
                // Each step moves exactly one hop.
                for w in p.windows(2) {
                    assert_eq!(route_hops(w[0], w[1], 4), 1);
                }
            }
        }
    }

    #[test]
    fn max_hops_on_4x8() {
        // Corner to corner on 4x8: 3 + 7 = 10 hops.
        assert_eq!(route_hops(0, 31, 4), 10);
    }
}
