//! Per-link contention timing for the mesh.
//!
//! Each directed link can carry one flit per cycle. A message of `f` flits
//! traversing a link occupies it for `f` cycles; a following message waits
//! for the link to drain. Hop traversal is store-and-forward: the message
//! arrives at the next router `link_latency + f` cycles after it starts
//! crossing the link. Local (src == dst) delivery costs one router
//! traversal cycle.

use crate::route::{route_path, NodeId};
use sim_core::obs::{Metric, MetricSpec};
use sim_core::types::Cycle;

/// Four directed links per node is enough to name every mesh edge:
/// link `(node, dir)` is the edge leaving `node` towards `dir`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

fn dir_between(a: NodeId, b: NodeId, width: usize) -> Dir {
    let (ax, ay) = (a % width, a / width);
    let (bx, by) = (b % width, b / width);
    if bx == ax + 1 {
        Dir::East
    } else if ax == bx + 1 {
        Dir::West
    } else if by == ay + 1 {
        Dir::South
    } else {
        debug_assert!(ay == by + 1);
        Dir::North
    }
}

fn link_index(node: NodeId, dir: Dir) -> usize {
    node * 4
        + match dir {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
}

/// Aggregate NoC traffic statistics.
#[derive(Clone, Debug, Default)]
pub struct NocStats {
    pub messages: u64,
    pub hops: u64,
    pub flit_hops: u64,
    /// Cycles spent queueing behind busy links (contention delay).
    pub queue_cycles: u64,
    /// Busy (flit-carrying) cycles per directed link, indexed
    /// `node * 4 + direction` (E/W/N/S order, matching `link_index`).
    pub link_busy: Vec<u64>,
}

/// Human-readable name for a directed link id (`node * 4 + dir`).
pub fn link_name(link: usize) -> String {
    let dir = ["E", "W", "N", "S"][link % 4];
    format!("link{}{dir}", link / 4)
}

/// Metric registrations for a `width * height` mesh: the aggregate
/// traffic counters plus one busy-cycle counter per directed link.
pub fn obs_metric_specs(width: usize, height: usize) -> Vec<MetricSpec> {
    let mut specs = vec![
        MetricSpec::new(Metric::NocMessages, "msgs", "NoC messages injected"),
        MetricSpec::new(
            Metric::NocQueueCycles,
            "cycles",
            "cycles spent queueing behind busy links",
        ),
    ];
    for l in 0..width * height * 4 {
        specs.push(MetricSpec::new(
            Metric::LinkBusy(l as u16),
            "cycles",
            "busy cycles of one directed mesh link",
        ));
    }
    specs
}

/// The mesh timing model. See the crate docs for the contention model.
#[derive(Clone, Debug)]
pub struct Mesh {
    width: usize,
    height: usize,
    link_latency: Cycle,
    /// `busy_until[link]`: cycle at which the link becomes free.
    busy_until: Vec<Cycle>,
    stats: NocStats,
}

impl Mesh {
    pub fn new(width: usize, height: usize, link_latency: Cycle) -> Mesh {
        assert!(width >= 1 && height >= 1);
        Mesh {
            width,
            height,
            link_latency,
            busy_until: vec![0; width * height * 4],
            stats: NocStats {
                link_busy: vec![0; width * height * 4],
                ..NocStats::default()
            },
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Inject a message of `flits` flits at `src` at cycle `now`, destined
    /// for `dst`. Returns the cycle at which it is delivered, accounting
    /// for link serialization along the X-Y route.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, flits: u32) -> Cycle {
        assert!(
            src < self.nodes() && dst < self.nodes(),
            "node out of range"
        );
        self.stats.messages += 1;
        if src == dst {
            // Local loopback through the router: one cycle.
            return now + 1;
        }
        let path = route_path(src, dst, self.width);
        let mut t = now;
        for w in path.windows(2) {
            let link = link_index(w[0], dir_between(w[0], w[1], self.width));
            let free = self.busy_until[link];
            let start = t.max(free);
            self.stats.queue_cycles += start - t;
            self.busy_until[link] = start + flits as Cycle;
            t = start + self.link_latency + flits as Cycle;
            self.stats.hops += 1;
            self.stats.flit_hops += flits as u64;
            self.stats.link_busy[link] += flits as u64;
        }
        t
    }

    /// Uncontended delivery latency for a message (used by tests and by
    /// quick analytical checks; does not update link state).
    pub fn ideal_latency(&self, src: NodeId, dst: NodeId, flits: u32) -> Cycle {
        if src == dst {
            return 1;
        }
        let hops = crate::route::route_hops(src, dst, self.width) as Cycle;
        hops * (self.link_latency + flits as Cycle)
    }

    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    pub fn take_stats(&mut self) -> NocStats {
        std::mem::replace(
            &mut self.stats,
            NocStats {
                link_busy: vec![0; self.busy_until.len()],
                ..NocStats::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(4, 8, 1)
    }

    #[test]
    fn local_delivery_is_one_cycle() {
        let mut m = mesh();
        assert_eq!(m.send(100, 5, 5, 5), 101);
    }

    #[test]
    fn uncontended_latency_matches_ideal() {
        let mut m = mesh();
        // 0 -> 3 is 3 hops; control message (1 flit): 3 * (1 + 1) = 6.
        assert_eq!(m.send(0, 0, 3, 1), 6);
        assert_eq!(m.ideal_latency(0, 3, 1), 6);
        // Fresh mesh: data message (5 flits) over 1 hop: 1 + 5 = 6.
        let mut m2 = mesh();
        assert_eq!(m2.send(0, 0, 1, 5), 6);
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut m = mesh();
        // Two 5-flit messages over the same single link, injected together.
        let a = m.send(0, 0, 1, 5);
        let b = m.send(0, 0, 1, 5);
        assert_eq!(a, 6);
        // Second waits for the link to drain 5 flits: starts at 5, arrives 11.
        assert_eq!(b, 11);
        assert_eq!(m.stats().queue_cycles, 5);
    }

    #[test]
    fn disjoint_links_do_not_interfere() {
        let mut m = mesh();
        let a = m.send(0, 0, 1, 5);
        let b = m.send(0, 2, 3, 5); // different link
        assert_eq!(a, b);
        assert_eq!(m.stats().queue_cycles, 0);
    }

    #[test]
    fn opposite_directions_are_separate_links() {
        let mut m = mesh();
        let a = m.send(0, 0, 1, 5);
        let b = m.send(0, 1, 0, 5);
        assert_eq!(a, b, "east and west links must not share occupancy");
    }

    #[test]
    fn long_route_accumulates_per_hop_cost() {
        let mut m = mesh();
        // Corner to corner: 10 hops, control flit: 10 * 2 = 20 cycles.
        assert_eq!(m.send(0, 0, 31, 1), 20);
        assert_eq!(m.stats().hops, 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mesh();
        m.send(0, 0, 1, 1);
        m.send(0, 1, 2, 5);
        let s = m.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.hops, 2);
        assert_eq!(s.flit_hops, 6);
    }

    #[test]
    fn per_link_busy_cycles_accumulate() {
        let mut m = mesh();
        // 0 -> 1 crosses exactly one link (east out of node 0).
        m.send(0, 0, 1, 5);
        m.send(10, 0, 1, 1);
        let s = m.stats();
        assert_eq!(s.link_busy.len(), 4 * 8 * 4);
        assert_eq!(s.link_busy.iter().sum::<u64>(), 6);
        assert_eq!(s.link_busy.iter().filter(|&&b| b > 0).count(), 1);
        // Local delivery touches no link.
        m.send(20, 3, 3, 5);
        assert_eq!(m.stats().link_busy.iter().sum::<u64>(), 6);
    }

    #[test]
    fn take_stats_keeps_link_vector_sized() {
        let mut m = mesh();
        m.send(0, 0, 1, 5);
        let taken = m.take_stats();
        assert_eq!(taken.link_busy.iter().sum::<u64>(), 5);
        // The mesh stays usable: the fresh vector is fully sized.
        m.send(0, 0, 31, 1);
        assert_eq!(m.stats().link_busy.len(), taken.link_busy.len());
    }

    #[test]
    fn link_names_and_specs() {
        assert_eq!(link_name(0), "link0E");
        assert_eq!(link_name(7), "link1S");
        let specs = obs_metric_specs(2, 2);
        assert_eq!(specs.len(), 2 + 16);
        assert!(specs.iter().any(|s| s.name == "noc.messages"));
        assert_eq!(specs[2].name, Metric::LinkBusy(0).name());
    }

    #[test]
    fn later_traffic_sees_free_links() {
        let mut m = mesh();
        m.send(0, 0, 1, 5);
        // Well after the first message drained, no queueing.
        let t = m.send(100, 0, 1, 5);
        assert_eq!(t, 106);
        assert_eq!(m.stats().queue_cycles, 0);
    }
}
