//! Network-on-chip timing model: a 2-D mesh with dimension-ordered (X-Y)
//! routing, per-link serialization, and store-and-forward flit timing, as
//! configured by Table I of the paper (4x8 mesh, 1-cycle links, 1 flit per
//! cycle per link, 16-byte flits: 1-flit control messages, 5-flit data
//! messages).
//!
//! The model is *passive*: [`Mesh::send`] computes the arrival cycle of a
//! message injected `now`, updating per-link occupancy so that contending
//! messages serialize. The simulation engine schedules the delivery event
//! at the returned cycle. This keeps the NoC free of its own event loop
//! while still modelling queueing delay on hot links (e.g., the links into
//! a contended LLC home bank).

pub mod mesh;
pub mod route;

pub use mesh::{link_name, Mesh, NocStats};
pub use route::{route_hops, NodeId, Position};
