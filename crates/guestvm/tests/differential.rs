//! The backend differential harness: every program here runs once on
//! the OS-thread rendezvous backend and once on the in-process VM, and
//! the two runs must be **byte-identical** — same `RunStats` (including
//! every latency histogram), same structured event trace, same final
//! memory image, same termination.
//!
//! This is the acceptance gate for the `GuestExec` redesign: the VM
//! re-implements the whole guest-side retry protocol, and these tests
//! are what pins it to the hand-written runtime. The corpus spans the
//! litmus kernels, the `ProgSpec` exploration corpus (including random
//! specs), every system family, and the tmverify explorer (decision
//! digests over whole schedule spaces).

use guestvm::spec::{ProgSpec, SpecProgram};
use lockiller::{Backend, Runner, SystemKind};
use sim_core::config::SystemConfig;
use tmverify::Explorer;

/// The systems exercised: one per code-path family (CGL spin lock,
/// baseline subscription + fallback, HTMLock lock transactions,
/// recovery variants, switchingMode).
const SYSTEMS: [SystemKind; 5] = [
    SystemKind::Cgl,
    SystemKind::Baseline,
    SystemKind::LockillerRwil,
    SystemKind::LockillerRwi,
    SystemKind::LockillerTm,
];

/// Run `spec` on `kind` under both backends and assert byte-identity.
fn assert_spec_identical(kind: SystemKind, spec: &ProgSpec, retries: Option<u32>) {
    let threads = spec.num_threads();
    let mut runner = Runner::new(kind)
        .threads(threads)
        .config(SystemConfig::testing(threads.max(2)))
        .tracing();
    if let Some(r) = retries {
        runner = runner.retries(r);
    }
    let mut pt = SpecProgram::new(spec.clone());
    let a = runner.clone().backend(Backend::Threads).run(&mut pt);
    let mut pv = SpecProgram::new(spec.clone());
    let b = runner.backend(Backend::Vm).run(&mut pv);

    let label = format!("{} on {}", spec.render(), kind.name());
    assert_eq!(a.stats, b.stats, "RunStats diverge: {label}");
    assert_eq!(
        a.mem.digest(),
        b.mem.digest(),
        "memory images diverge: {label}"
    );
    assert_eq!(
        a.trace_events(),
        b.trace_events(),
        "event traces diverge: {label}"
    );
}

#[test]
fn litmus_specs_bit_identical_across_backends() {
    // Hand-picked kernels covering plain ops, disjoint and conflicting
    // critical sections, compute backoff, and mixed segments.
    let litmus = [
        "1/p:C3",
        "2/p:L0,S1,C2",
        "2/c:L0,S1/c:L1,S0",
        "4/c:L0,S1;p:L2/c:S0,C5",
        "2/c:S0,S1/c:S1,S0/c:S0,C2",
        "8/c:L7,S0/p:S3;c:L3,L4,S4",
        "3/p:S0;c:L1,S2;p:L2/c:L0,S0;c:S1",
    ];
    for s in litmus {
        let spec = ProgSpec::parse(s).expect(s);
        for kind in SYSTEMS {
            assert_spec_identical(kind, &spec, None);
        }
    }
}

#[test]
fn conflict_rings_bit_identical_across_backends() {
    // Contended rings at several widths force the retry/fallback paths
    // (tiny retry budgets reach the lock path quickly).
    for threads in [2usize, 3, 4] {
        let spec = ProgSpec::conflict_ring(threads, 2);
        for kind in SYSTEMS {
            for retries in [Some(1), Some(2), None] {
                assert_spec_identical(kind, &spec, retries);
            }
        }
    }
}

#[test]
fn random_spec_corpus_bit_identical_across_backends() {
    let mut rng = proptest::Rng::new(0xd1ff);
    for i in 0..20 {
        let threads = 2 + (i % 3);
        let spec = ProgSpec::random(&mut rng, threads, 6);
        let kind = SYSTEMS[i % SYSTEMS.len()];
        assert_spec_identical(kind, &spec, Some(2));
    }
}

#[test]
fn explorer_digest_identical_across_backends() {
    // Whole schedule spaces: the explorer's order-sensitive digest
    // hashes every merged run's decision vector, termination, trace
    // length, and violation count — equal digests mean the VM backend
    // reproduced every explored schedule bit-for-bit, including the
    // state fingerprints steering DPOR.
    for (system, spec) in [
        (SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0"),
        (SystemKind::Baseline, "2/c:S0,C1/c:S0"),
        (SystemKind::Cgl, "2/c:S0/p:L0;c:S0"),
    ] {
        let spec = ProgSpec::parse(spec).expect(spec);
        let mut ex = Explorer::new(system, spec);
        ex.max_schedules = 2_000;
        let rep_threads = ex.explore();
        ex.backend = Backend::Vm;
        let rep_vm = ex.explore();
        assert_eq!(
            rep_threads.digest,
            rep_vm.digest,
            "exploration digests diverge on {}",
            system.name()
        );
        assert_eq!(rep_threads.schedules, rep_vm.schedules);
        assert_eq!(rep_threads.pruned_dedup, rep_vm.pruned_dedup);
        assert_eq!(rep_threads.space.is_clean(), rep_vm.space.is_clean());
    }
}

#[test]
fn stamp_points_bit_identical_across_backends() {
    // One real STAMP ladder point per VM-ported workload. kmeans runs
    // the compiled mirror of its hand-written body; intruder-flow runs
    // the same kernel through `run_on_ctx` (threads) and the VM.
    use lockiller::Program;
    use stamp::Scale;

    fn assert_prog_identical<P: Program>(
        kind: SystemKind,
        threads: usize,
        mut mk: impl FnMut() -> P,
    ) {
        let runner = Runner::new(kind)
            .threads(threads)
            .config(SystemConfig::testing(threads))
            .tracing();
        let mut pt = mk();
        let a = runner.clone().backend(Backend::Threads).run(&mut pt);
        let mut pv = mk();
        let b = runner.backend(Backend::Vm).run(&mut pv);
        assert_eq!(a.stats, b.stats, "RunStats diverge: {}", pt.name());
        assert_eq!(
            a.mem.digest(),
            b.mem.digest(),
            "memory diverges: {}",
            pt.name()
        );
        assert_eq!(
            a.trace_events(),
            b.trace_events(),
            "traces diverge: {}",
            pt.name()
        );
    }

    assert_prog_identical(SystemKind::LockillerRwil, 4, || {
        stamp::kmeans::Kmeans::new(Scale::Small, 4, true)
    });
    assert_prog_identical(SystemKind::Baseline, 4, || {
        stamp::vm::IntruderFlow::new(Scale::Small, 4)
    });
}

#[test]
fn vm_snapshot_restore_replays_identically() {
    // Snapshot a VM guest mid-run, keep driving it, restore, and check
    // the op stream repeats. Uses the raw GuestExec interface with a
    // scripted response sequence (no engine).
    use lockiller::{GuestEnv, GuestResp};
    use sim_core::rng::SimRng;

    let spec = ProgSpec::parse("2/c:L0,S1/c:L1,S0").unwrap();
    let mut prog = SpecProgram::new(spec);
    let mut s = lockiller::SetupCtx::new();
    let lock_addr = s.alloc(8);
    lockiller::Program::setup(&mut prog, &mut s, 2);
    let env = GuestEnv {
        tid: 0,
        threads: 2,
        rng: SimRng::new(1),
        policy: lockiller::guest::GuestPolicy {
            coarse_grained_lock: false,
            htmlock: false,
            max_retries: 2,
            fallback_on_capacity: true,
        },
        lock_addr,
    };
    let mut vm = lockiller::Program::guest_exec(&prog, env).expect("SpecProgram compiles");

    // Drive three ops: kick -> TxBegin, Done -> subscription load,
    // lock free -> first body op.
    let o1 = vm.resume(GuestResp::Done);
    let snap = vm.snapshot().expect("VM supports snapshots");
    let o2 = vm.resume(GuestResp::Done);
    let o3 = vm.resume(GuestResp::Value(0));
    assert!(vm.restore(&snap), "restore accepts own snapshot");
    let o2b = vm.resume(GuestResp::Done);
    let o3b = vm.resume(GuestResp::Value(0));
    assert_eq!(o2, o2b, "op stream after restore diverges");
    assert_eq!(o3, o3b, "op stream after restore diverges");
    let _ = o1;
}

/// Attaching the `tmprof` host profiler must be invisible to the
/// differential harness: on either backend a profiled run is
/// byte-identical to an unprofiled one, and the two profiled backends
/// still agree with each other — the profiler reads the host clock and
/// nothing else.
#[test]
fn profiler_is_invisible_to_the_differential_harness() {
    let spec = ProgSpec::parse("4/c:L0,S1;p:L2/c:S0,C5").expect("spec");
    let threads = spec.num_threads();
    for kind in SYSTEMS {
        let run = |backend: Backend, profile: bool| {
            let mut r = Runner::new(kind)
                .threads(threads)
                .config(SystemConfig::testing(threads.max(2)))
                .tracing()
                .backend(backend);
            if profile {
                r = r.profile();
            }
            let mut p = SpecProgram::new(spec.clone());
            r.run(&mut p)
        };
        for backend in [Backend::Threads, Backend::Vm] {
            let plain = run(backend, false);
            let profiled = run(backend, true);
            let label = format!("{} on {:?}", kind.name(), backend);
            assert!(profiled.host_prof.is_some(), "no report: {label}");
            assert_eq!(plain.stats, profiled.stats, "stats diverge: {label}");
            assert_eq!(
                plain.mem.digest(),
                profiled.mem.digest(),
                "memory images diverge: {label}"
            );
            assert_eq!(
                plain.trace_events(),
                profiled.trace_events(),
                "event traces diverge: {label}"
            );
        }
        let at = run(Backend::Threads, true);
        let bv = run(Backend::Vm, true);
        assert_eq!(
            at.stats,
            bv.stats,
            "profiled backends diverge: {}",
            kind.name()
        );
        assert_eq!(at.trace_events(), bv.trace_events());
    }
}
