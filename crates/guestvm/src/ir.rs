//! The kernel IR: a compact register-machine bytecode that guest
//! programs compile into.
//!
//! The instruction set splits into **pure** instructions (register
//! arithmetic, moves, branches — executed inline by the VM in zero
//! simulated time, exactly like host-side Rust between two `GuestCtx`
//! calls under the thread backend) and **op** instructions (loads,
//! stores, CAS, compute, barrier, page touches — each producing exactly
//! one [`lockiller::GuestOp`] rendezvous with the engine).
//!
//! Critical sections are bracketed by [`Instr::CritBegin`] /
//! [`Instr::CritEnd`]; the VM wraps the enclosed op stream in the full
//! `lock_acquire_elided` retry protocol (see `crate::vm`), restoring the
//! registers captured at `CritBegin` on every re-execution — the
//! software analogue of hardware register rollback on abort.
//!
//! All arithmetic is wrapping two's-complement on `u64`; division and
//! remainder by zero yield 0 (total and deterministic — a kernel can
//! never fault the host). Shift counts are masked to the low 6 bits.

use std::fmt;

/// Register index. Kernels declare how many registers they use
/// ([`Kernel::nregs`], at most [`MAX_REGS`]).
pub type Reg = u8;

/// Upper bound on registers per kernel (keeps frames small; raise if a
/// compiled program ever needs more).
pub const MAX_REGS: usize = 64;

/// Two-operand ALU operations (wrapping; `Div`/`Rem` by zero give 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    /// Evaluate the operation (total: no panic for any input).
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b).unwrap_or(0),
            BinOp::Rem => a.checked_rem(b).unwrap_or(0),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Branch conditions (unsigned comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
}

impl Cond {
    #[inline]
    pub fn holds(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

/// One bytecode instruction. `usize` operands are absolute instruction
/// indices (resolved from labels by [`KernelBuilder`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    // ----- pure (zero simulated time) -----
    /// `rd <- imm`.
    Imm(Reg, u64),
    /// `rd <- ra`.
    Mov(Reg, Reg),
    /// `rd <- ra <op> rb`.
    Bin(BinOp, Reg, Reg, Reg),
    /// `rd <- ra <op> imm`.
    BinI(BinOp, Reg, Reg, u64),
    /// Unconditional jump.
    Jmp(usize),
    /// Conditional branch: jump when `ra <cond> rb`.
    Br(Cond, Reg, Reg, usize),
    /// `rd <- tid` (simulated thread id).
    Tid(Reg),
    /// `rd <- threads` (simulated thread count).
    Threads(Reg),
    // ----- ops (one engine rendezvous each) -----
    /// `rd <- mem[ra + off]` (word-addressed).
    Load(Reg, Reg, u64),
    /// `mem[ra + off] <- rv`.
    Store(Reg, u64, Reg),
    /// `rd <- cas(mem[ra], expected=re, new=rn)` — plain regions only.
    Cas(Reg, Reg, Reg, Reg),
    /// `n` non-memory instructions of simulated work.
    Compute(u64),
    /// Register-valued compute (`ra` simulated instructions).
    ComputeR(Reg),
    /// First-touch page notification (page number in `ra`).
    PageTouch(Reg),
    /// Global barrier — plain regions only.
    Barrier,
    // ----- structure -----
    /// Enter a critical section (the VM runs the elided-lock protocol).
    CritBegin,
    /// Leave the critical section.
    CritEnd,
    /// Guest done (the VM emits `GuestOp::Exit`).
    Halt,
}

impl fmt::Display for Instr {
    /// Stable one-line assembly rendering — used in [`KernelError`]
    /// diagnostics and `tmlint kernel` output, so keep it byte-stable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = |o: BinOp| match o {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        let cond = |c: Cond| match c {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        match *self {
            Instr::Imm(rd, v) => write!(f, "r{rd} <- {v}"),
            Instr::Mov(rd, ra) => write!(f, "r{rd} <- r{ra}"),
            Instr::Bin(o, rd, ra, rb) => write!(f, "r{rd} <- r{ra} {} r{rb}", op(o)),
            Instr::BinI(o, rd, ra, v) => write!(f, "r{rd} <- r{ra} {} {v}", op(o)),
            Instr::Jmp(t) => write!(f, "jmp {t}"),
            Instr::Br(c, ra, rb, t) => write!(f, "br.{} r{ra}, r{rb} -> {t}", cond(c)),
            Instr::Tid(rd) => write!(f, "r{rd} <- tid"),
            Instr::Threads(rd) => write!(f, "r{rd} <- threads"),
            Instr::Load(rd, ra, off) => write!(f, "r{rd} <- load [r{ra}+{off}]"),
            Instr::Store(ra, off, rv) => write!(f, "store [r{ra}+{off}] <- r{rv}"),
            Instr::Cas(rd, ra, re, rn) => write!(f, "r{rd} <- cas [r{ra}], r{re}, r{rn}"),
            Instr::Compute(n) => write!(f, "compute {n}"),
            Instr::ComputeR(ra) => write!(f, "compute r{ra}"),
            Instr::PageTouch(ra) => write!(f, "pagetouch r{ra}"),
            Instr::Barrier => write!(f, "barrier"),
            Instr::CritBegin => write!(f, "crit_begin"),
            Instr::CritEnd => write!(f, "crit_end"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

impl Instr {
    /// Dense encoding for [`Kernel::content_hash`]: a stable operation
    /// tag plus every operand widened to `u64`. Two instructions encode
    /// equal iff they are equal.
    fn encode(self) -> [u64; 5] {
        let o = |o: BinOp| o as u64;
        let c = |c: Cond| c as u64;
        match self {
            Instr::Imm(rd, v) => [0, rd as u64, v, 0, 0],
            Instr::Mov(rd, ra) => [1, rd as u64, ra as u64, 0, 0],
            Instr::Bin(b, rd, ra, rb) => [2, o(b), rd as u64, ra as u64, rb as u64],
            Instr::BinI(b, rd, ra, v) => [3, o(b), rd as u64, ra as u64, v],
            Instr::Jmp(t) => [4, t as u64, 0, 0, 0],
            Instr::Br(cc, ra, rb, t) => [5, c(cc), ra as u64, rb as u64, t as u64],
            Instr::Tid(rd) => [6, rd as u64, 0, 0, 0],
            Instr::Threads(rd) => [7, rd as u64, 0, 0, 0],
            Instr::Load(rd, ra, off) => [8, rd as u64, ra as u64, off, 0],
            Instr::Store(ra, off, rv) => [9, ra as u64, off, rv as u64, 0],
            Instr::Cas(rd, ra, re, rn) => [10, rd as u64, ra as u64, re as u64, rn as u64],
            Instr::Compute(n) => [11, n, 0, 0, 0],
            Instr::ComputeR(ra) => [12, ra as u64, 0, 0, 0],
            Instr::PageTouch(ra) => [13, ra as u64, 0, 0, 0],
            Instr::Barrier => [14, 0, 0, 0, 0],
            Instr::CritBegin => [15, 0, 0, 0, 0],
            Instr::CritEnd => [16, 0, 0, 0, 0],
            Instr::Halt => [17, 0, 0, 0, 0],
        }
    }
}

/// A validated guest kernel: the bytecode one simulated thread runs.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Diagnostic name (shows up in panics, not in the simulation).
    pub name: String,
    /// Registers used (frame size); all register operands are `< nregs`.
    pub nregs: usize,
    pub instrs: Vec<Instr>,
}

/// Static validation failure for a kernel (see [`Kernel::validate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelError {
    /// Index of the offending instruction.
    pub at: usize,
    /// Rendered form of the offending instruction ([`Instr`]'s
    /// `Display`), or empty when the failure is not tied to one
    /// (undersized kernel, `nregs` over the cap).
    pub instr: String,
    pub message: String,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instr.is_empty() {
            write!(f, "kernel: instr {}: {}", self.at, self.message)
        } else {
            write!(
                f,
                "kernel: instr {} `{}`: {}",
                self.at, self.instr, self.message
            )
        }
    }
}

impl std::error::Error for KernelError {}

impl Kernel {
    /// Build and validate. Panics on an invalid kernel — compilation
    /// bugs, not data errors (use [`Kernel::validate`] to inspect).
    pub fn new(name: impl Into<String>, nregs: usize, instrs: Vec<Instr>) -> Kernel {
        let k = Kernel {
            name: name.into(),
            nregs,
            instrs,
        };
        if let Err(e) = k.validate() {
            panic!("kernel {:?}: {e}", k.name);
        }
        k
    }

    /// Stable content hash over `nregs` and the instruction stream.
    ///
    /// The diagnostic [`Kernel::name`] is deliberately excluded: two
    /// kernels with identical bytecode hash equal, which is what lets
    /// static analyses (`tmstatic::vmabs`) cache results per kernel
    /// *content* rather than per instance. FNV-1a, byte-stable across
    /// runs and platforms.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let fold = |mut h: u64, x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        };
        let mut h = fold(OFFSET, self.nregs as u64);
        h = fold(h, self.instrs.len() as u64);
        for i in &self.instrs {
            for w in i.encode() {
                h = fold(h, w);
            }
        }
        h
    }

    /// Static checks: register and branch-target ranges, and a
    /// reachability dataflow proving every instruction executes in a
    /// consistent critical/plain context — no nested `CritBegin`, no
    /// `CritEnd` outside a section, no `Cas`/`Barrier`/`Halt` inside
    /// one, and no path that falls off the end of the bytecode.
    pub fn validate(&self) -> Result<(), KernelError> {
        let err = |at: usize, message: String| {
            Err(KernelError {
                at,
                instr: self
                    .instrs
                    .get(at)
                    .map(ToString::to_string)
                    .unwrap_or_default(),
                message,
            })
        };
        // Kernel-level failures carry no offending instruction.
        let kernel_err = |message: String| {
            Err(KernelError {
                at: 0,
                instr: String::new(),
                message,
            })
        };
        if self.nregs > MAX_REGS {
            return kernel_err(format!("nregs {} exceeds {MAX_REGS}", self.nregs));
        }
        if self.instrs.is_empty() {
            return kernel_err("empty kernel".into());
        }
        let n = self.instrs.len();
        let reg_ok = |r: Reg| (r as usize) < self.nregs;
        for (at, i) in self.instrs.iter().enumerate() {
            let regs: Vec<Reg> = match *i {
                Instr::Imm(a, _)
                | Instr::Tid(a)
                | Instr::Threads(a)
                | Instr::ComputeR(a)
                | Instr::PageTouch(a) => vec![a],
                Instr::Mov(a, b)
                | Instr::Load(a, b, _)
                | Instr::BinI(_, a, b, _)
                | Instr::Store(a, _, b)
                | Instr::Br(_, a, b, _) => vec![a, b],
                Instr::Bin(_, a, b, c) => vec![a, b, c],
                Instr::Cas(a, b, c, d) => vec![a, b, c, d],
                _ => vec![],
            };
            if let Some(&r) = regs.iter().find(|&&r| !reg_ok(r)) {
                return err(
                    at,
                    format!("register r{r} out of range (nregs {})", self.nregs),
                );
            }
            if let Instr::Jmp(t) | Instr::Br(_, _, _, t) = *i {
                if t >= n {
                    return err(at, format!("branch target {t} out of range ({n} instrs)"));
                }
            }
        }
        // Critical-context dataflow to fixpoint. `state[pc]` is a bitmask:
        // bit 0 = reachable outside a critical section, bit 1 = inside.
        let mut state = vec![0u8; n];
        let mut work = vec![(0usize, 0u8)];
        while let Some((pc, ctx)) = work.pop() {
            let bit = 1u8 << ctx;
            if state[pc] & bit != 0 {
                continue;
            }
            state[pc] |= bit;
            if state[pc] == 0b11 {
                return err(
                    pc,
                    "reachable both inside and outside a critical section".into(),
                );
            }
            let in_crit = ctx == 1;
            let mut succ: Vec<(usize, u8)> = Vec::new();
            match self.instrs[pc] {
                Instr::Halt => {
                    if in_crit {
                        return err(pc, "Halt inside a critical section".into());
                    }
                    continue;
                }
                Instr::CritBegin => {
                    if in_crit {
                        return err(pc, "nested CritBegin".into());
                    }
                    succ.push((pc + 1, 1));
                }
                Instr::CritEnd => {
                    if !in_crit {
                        return err(pc, "CritEnd outside a critical section".into());
                    }
                    succ.push((pc + 1, 0));
                }
                Instr::Cas(..) if in_crit => {
                    return err(pc, "Cas inside a critical section".into());
                }
                Instr::Barrier if in_crit => {
                    return err(pc, "Barrier inside a critical section".into());
                }
                Instr::Jmp(t) => succ.push((t, ctx)),
                Instr::Br(_, _, _, t) => {
                    succ.push((t, ctx));
                    succ.push((pc + 1, ctx));
                }
                _ => succ.push((pc + 1, ctx)),
            }
            for (t, c) in succ {
                if t >= n {
                    return err(pc, "control flow falls off the end (missing Halt?)".into());
                }
                work.push((t, c));
            }
        }
        Ok(())
    }
}

/// Forward-label builder for [`Kernel`]s: emit instructions in order,
/// create labels with [`KernelBuilder::label`], bind them with
/// [`KernelBuilder::bind`], and reference them from jumps/branches
/// before or after binding.
pub struct KernelBuilder {
    name: String,
    nregs: usize,
    instrs: Vec<Instr>,
    /// Label id -> bound instruction index.
    bound: Vec<Option<usize>>,
    /// (instr index, label id) pairs to patch at build time.
    fixups: Vec<(usize, Label)>,
}

/// An abstract jump target (see [`KernelBuilder::label`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

impl KernelBuilder {
    pub fn new(name: impl Into<String>, nregs: usize) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            nregs,
            instrs: Vec::new(),
            bound: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Bind `l` to the next emitted instruction.
    pub fn bind(&mut self, l: Label) {
        assert!(self.bound[l.0].is_none(), "label bound twice");
        self.bound[l.0] = Some(self.instrs.len());
    }

    /// Append a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // Convenience emitters (thin wrappers so compiled code reads close
    // to the hand-written guest bodies it mirrors).
    pub fn imm(&mut self, rd: Reg, v: u64) -> &mut Self {
        self.push(Instr::Imm(rd, v))
    }
    pub fn mov(&mut self, rd: Reg, ra: Reg) -> &mut Self {
        self.push(Instr::Mov(rd, ra))
    }
    pub fn bin(&mut self, op: BinOp, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.push(Instr::Bin(op, rd, ra, rb))
    }
    pub fn bini(&mut self, op: BinOp, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.push(Instr::BinI(op, rd, ra, imm))
    }
    pub fn load(&mut self, rd: Reg, ra: Reg, off: u64) -> &mut Self {
        self.push(Instr::Load(rd, ra, off))
    }
    pub fn store(&mut self, ra: Reg, off: u64, rv: Reg) -> &mut Self {
        self.push(Instr::Store(ra, off, rv))
    }
    pub fn cas(&mut self, rd: Reg, ra: Reg, re: Reg, rn: Reg) -> &mut Self {
        self.push(Instr::Cas(rd, ra, re, rn))
    }
    pub fn compute(&mut self, n: u64) -> &mut Self {
        self.push(Instr::Compute(n))
    }
    pub fn compute_r(&mut self, ra: Reg) -> &mut Self {
        self.push(Instr::ComputeR(ra))
    }
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Instr::Barrier)
    }
    pub fn crit_begin(&mut self) -> &mut Self {
        self.push(Instr::CritBegin)
    }
    pub fn crit_end(&mut self) -> &mut Self {
        self.push(Instr::CritEnd)
    }
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Jump to `l`.
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), l));
        self.push(Instr::Jmp(usize::MAX))
    }

    /// Branch to `l` when `ra <cond> rb`.
    pub fn br(&mut self, cond: Cond, ra: Reg, rb: Reg, l: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), l));
        self.push(Instr::Br(cond, ra, rb, usize::MAX))
    }

    /// Patch labels, validate, and produce the kernel (panics on an
    /// invalid kernel — a compiler bug, not input data).
    pub fn build(mut self) -> Kernel {
        for (at, l) in std::mem::take(&mut self.fixups) {
            let target = self.bound[l.0].unwrap_or_else(|| panic!("label {l:?} never bound"));
            match &mut self.instrs[at] {
                Instr::Jmp(t) | Instr::Br(_, _, _, t) => *t = target,
                other => panic!("fixup at non-branch {other:?}"),
            }
        }
        Kernel::new(self.name, self.nregs, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_is_total() {
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(BinOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(BinOp::Shl.eval(1, 64), 1); // count masked to 6 bits
        assert_eq!(BinOp::Mul.eval(3, 5), 15);
    }

    #[test]
    fn builder_patches_labels() {
        let mut b = KernelBuilder::new("t", 2);
        let done = b.label();
        b.imm(0, 1).imm(1, 1);
        b.br(Cond::Eq, 0, 1, done);
        b.compute(99);
        b.bind(done);
        b.halt();
        let k = b.build();
        assert_eq!(k.instrs[2], Instr::Br(Cond::Eq, 0, 1, 4));
    }

    #[test]
    fn validate_rejects_bad_kernels() {
        let bad = |instrs: Vec<Instr>| Kernel {
            name: "bad".into(),
            nregs: 2,
            instrs,
        };
        // Register out of range.
        assert!(bad(vec![Instr::Imm(7, 0), Instr::Halt]).validate().is_err());
        // Falls off the end.
        assert!(bad(vec![Instr::Imm(0, 0)]).validate().is_err());
        // Nested critical sections.
        assert!(bad(vec![
            Instr::CritBegin,
            Instr::CritBegin,
            Instr::CritEnd,
            Instr::CritEnd,
            Instr::Halt
        ])
        .validate()
        .is_err());
        // CritEnd without CritBegin.
        assert!(bad(vec![Instr::CritEnd, Instr::Halt]).validate().is_err());
        // Barrier inside a critical section.
        assert!(bad(vec![
            Instr::CritBegin,
            Instr::Barrier,
            Instr::CritEnd,
            Instr::Halt
        ])
        .validate()
        .is_err());
        // Cas inside a critical section.
        assert!(bad(vec![
            Instr::CritBegin,
            Instr::Cas(0, 0, 0, 1),
            Instr::CritEnd,
            Instr::Halt
        ])
        .validate()
        .is_err());
        // Halt inside a critical section.
        assert!(bad(vec![Instr::CritBegin, Instr::Halt]).validate().is_err());
        // Branch target out of range.
        assert!(bad(vec![Instr::Jmp(9), Instr::Halt]).validate().is_err());
        // A good one for contrast.
        assert!(bad(vec![
            Instr::CritBegin,
            Instr::Load(0, 1, 0),
            Instr::CritEnd,
            Instr::Halt
        ])
        .validate()
        .is_ok());
    }

    #[test]
    fn kernel_error_renders_offending_instruction() {
        // Instruction-level failure: index + rendered form + reason.
        let e = Kernel {
            name: "bad".into(),
            nregs: 2,
            instrs: vec![Instr::CritBegin, Instr::Cas(0, 0, 0, 1), Instr::Halt],
        }
        .validate()
        .unwrap_err();
        assert_eq!(e.at, 1);
        assert_eq!(e.instr, "r0 <- cas [r0], r0, r1");
        assert_eq!(
            e.to_string(),
            "kernel: instr 1 `r0 <- cas [r0], r0, r1`: Cas inside a critical section"
        );
        // Register-range failure names the register and the instruction.
        let e = Kernel {
            name: "bad".into(),
            nregs: 2,
            instrs: vec![Instr::Imm(7, 3), Instr::Halt],
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            e.to_string(),
            "kernel: instr 0 `r7 <- 3`: register r7 out of range (nregs 2)"
        );
        // Kernel-level failure carries no instruction backtick block.
        let e = Kernel {
            name: "bad".into(),
            nregs: 2,
            instrs: vec![],
        }
        .validate()
        .unwrap_err();
        assert_eq!(e.instr, "");
        assert_eq!(e.to_string(), "kernel: instr 0: empty kernel");
    }

    #[test]
    fn content_hash_ignores_name_but_not_code() {
        let k = |name: &str, nregs: usize, instrs: Vec<Instr>| Kernel {
            name: name.into(),
            nregs,
            instrs,
        };
        let a = k("a", 2, vec![Instr::Imm(0, 1), Instr::Halt]);
        let renamed = k("b", 2, vec![Instr::Imm(0, 1), Instr::Halt]);
        assert_eq!(a.content_hash(), renamed.content_hash());
        // Any operand or structural change must move the hash.
        let operand = k("a", 2, vec![Instr::Imm(0, 2), Instr::Halt]);
        let reg = k("a", 2, vec![Instr::Imm(1, 1), Instr::Halt]);
        let frame = k("a", 3, vec![Instr::Imm(0, 1), Instr::Halt]);
        let longer = k(
            "a",
            2,
            vec![Instr::Imm(0, 1), Instr::Compute(0), Instr::Halt],
        );
        for other in [&operand, &reg, &frame, &longer] {
            assert_ne!(a.content_hash(), other.content_hash());
        }
        // Distinct opcodes with identical operand words must differ.
        let begin = k("a", 1, vec![Instr::CritBegin, Instr::CritEnd, Instr::Halt]);
        let end = k("a", 1, vec![Instr::Barrier, Instr::Barrier, Instr::Halt]);
        assert_ne!(begin.content_hash(), end.content_hash());
    }

    #[test]
    fn validate_rejects_mixed_context() {
        // pc 3 reachable both inside (fallthrough from CritBegin path)
        // and outside (jump around it) a critical section.
        let k = Kernel {
            name: "mixed".into(),
            nregs: 1,
            instrs: vec![
                Instr::Imm(0, 0),
                Instr::Br(Cond::Eq, 0, 0, 4), // jump into the tail, plain
                Instr::CritBegin,
                Instr::Load(0, 0, 0), // also reached in-crit… wait: pc4 is target
                Instr::Load(0, 0, 0), // reached plain via branch, in-crit by fallthrough
                Instr::CritEnd,
                Instr::Halt,
            ],
        };
        assert!(k.validate().is_err());
    }
}
