//! # guestvm — the in-process resumable guest execution core
//!
//! Guest programs for the LockillerTM engine originally ran on OS
//! threads in strict rendezvous with the discrete-event loop: two host
//! context switches per simulated guest operation. This crate replaces
//! that with a compiled alternative behind the same
//! [`lockiller::GuestExec`] seam:
//!
//! - [`ir`] — a compact register-machine bytecode ([`ir::Kernel`])
//!   guest kernels compile into, with static validation and a
//!   label-resolving [`ir::KernelBuilder`];
//! - [`interp`] — the shared fetch/execute core, plus
//!   [`interp::run_on_ctx`] running a kernel over a plain
//!   [`lockiller::GuestCtx`] (the thread backend for kernel programs);
//! - [`vm`] — [`vm::GuestVm`], the resumable state machine
//!   implementing the whole elided-lock retry protocol
//!   (`GuestCtx::critical`, Listings 1–2 of the paper) as explicit
//!   states, with O(registers) [`lockiller::GuestExec::snapshot`] /
//!   `restore` for backtracking explorers;
//! - [`spec`] — the `ProgSpec` corpus DSL (shared with `tmverify` /
//!   `tmstatic`), whose [`spec::SpecProgram`] runs hand-written on the
//!   thread backend and compiled on the VM backend.
//!
//! The design contract is **bit-identity**: for the same program,
//! seed, schedule, and system, both backends produce byte-equal run
//! statistics, traces, memory images, and state fingerprints. The
//! differential tests in this crate and the CI `guestvm-smoke` job
//! enforce it.

pub mod interp;
pub mod ir;
pub mod spec;
pub mod vm;

pub use interp::{run_on_ctx, Fetch, Frame, OpAt};
pub use ir::{BinOp, Cond, Instr, Kernel, KernelBuilder, KernelError, Label, Reg};
pub use spec::{Op, ParseError, ProgSpec, Segment, SpecProgram};
pub use vm::GuestVm;
