//! The shared execution core: a register frame plus the fetch loop that
//! turns bytecode into a stream of [`GuestOp`]s.
//!
//! Both backends run kernels through [`Frame::fetch`]:
//!
//! - [`run_on_ctx`] drives a kernel over a [`GuestCtx`] on the
//!   OS-thread backend — every fetched op becomes the corresponding
//!   blocking `GuestCtx` call, and critical sections become
//!   [`GuestCtx::critical`] closures (the hand-written runtime supplies
//!   the whole retry protocol);
//! - `crate::vm::GuestVm` embeds a `Frame` in its resumable state
//!   machine and re-implements the retry protocol itself.
//!
//! Because the pure-instruction semantics live here once, the two
//! backends cannot drift apart on arithmetic; the differential tests
//! pin the protocol layer.

use crate::ir::{Instr, Kernel, Reg};
use lockiller::guest::{GuestCtx, GuestOp};
use sim_core::types::Addr;

/// One thread's register file and program counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub regs: Vec<u64>,
    pub pc: usize,
}

/// An op-instruction fetched from the stream: the engine rendezvous to
/// perform, plus the register its `Value` response lands in (loads and
/// CAS).
#[derive(Clone, Copy, Debug)]
pub struct OpAt {
    pub op: GuestOp,
    pub dst: Option<Reg>,
}

/// What [`Frame::fetch`] stopped on.
#[derive(Clone, Copy, Debug)]
pub enum Fetch {
    /// An engine op; the pc already points past it (delivery of the
    /// response via [`Frame::put`] resumes at the next instruction).
    Op(OpAt),
    CritBegin,
    CritEnd,
    Halt,
}

impl Frame {
    pub fn new(k: &Kernel) -> Frame {
        Frame {
            regs: vec![0; k.nregs],
            pc: 0,
        }
    }

    #[inline]
    fn r(&self, r: Reg) -> u64 {
        self.regs[r as usize]
    }

    /// Deliver an op's `Value` response into its destination register.
    #[inline]
    pub fn put(&mut self, dst: Option<Reg>, v: u64) {
        if let Some(r) = dst {
            self.regs[r as usize] = v;
        }
    }

    /// Execute pure instructions until the next op / structural point.
    /// Guaranteed to terminate on a validated kernel only if the kernel
    /// has no pure infinite loop; compiled kernels never emit one (every
    /// loop body performs at least one op).
    pub fn fetch(&mut self, k: &Kernel, tid: usize, threads: usize) -> Fetch {
        loop {
            let i = k.instrs[self.pc];
            self.pc += 1;
            match i {
                Instr::Imm(rd, v) => self.regs[rd as usize] = v,
                Instr::Mov(rd, ra) => self.regs[rd as usize] = self.r(ra),
                Instr::Bin(op, rd, ra, rb) => {
                    self.regs[rd as usize] = op.eval(self.r(ra), self.r(rb));
                }
                Instr::BinI(op, rd, ra, imm) => {
                    self.regs[rd as usize] = op.eval(self.r(ra), imm);
                }
                Instr::Jmp(t) => self.pc = t,
                Instr::Br(c, ra, rb, t) => {
                    if c.holds(self.r(ra), self.r(rb)) {
                        self.pc = t;
                    }
                }
                Instr::Tid(rd) => self.regs[rd as usize] = tid as u64,
                Instr::Threads(rd) => self.regs[rd as usize] = threads as u64,
                Instr::Load(rd, ra, off) => {
                    return Fetch::Op(OpAt {
                        op: GuestOp::Load(Addr(self.r(ra).wrapping_add(off))),
                        dst: Some(rd),
                    })
                }
                Instr::Store(ra, off, rv) => {
                    return Fetch::Op(OpAt {
                        op: GuestOp::Store(Addr(self.r(ra).wrapping_add(off)), self.r(rv)),
                        dst: None,
                    })
                }
                Instr::Cas(rd, ra, re, rn) => {
                    return Fetch::Op(OpAt {
                        op: GuestOp::Cas(Addr(self.r(ra)), self.r(re), self.r(rn)),
                        dst: Some(rd),
                    })
                }
                Instr::Compute(n) => {
                    return Fetch::Op(OpAt {
                        op: GuestOp::Compute(n),
                        dst: None,
                    })
                }
                Instr::ComputeR(ra) => {
                    return Fetch::Op(OpAt {
                        op: GuestOp::Compute(self.r(ra)),
                        dst: None,
                    })
                }
                Instr::PageTouch(ra) => {
                    return Fetch::Op(OpAt {
                        op: GuestOp::PageTouch(self.r(ra)),
                        dst: None,
                    })
                }
                Instr::Barrier => {
                    return Fetch::Op(OpAt {
                        op: GuestOp::Barrier,
                        dst: None,
                    })
                }
                Instr::CritBegin => return Fetch::CritBegin,
                Instr::CritEnd => return Fetch::CritEnd,
                Instr::Halt => {
                    self.pc -= 1; // stay on Halt: fetch is idempotent at the end
                    return Fetch::Halt;
                }
            }
        }
    }
}

/// Run `kernel` to completion over a [`GuestCtx`] — the OS-thread
/// backend for kernel programs. Op-for-op identical to the VM backend
/// on the same kernel: plain ops map to the blocking `GuestCtx` calls
/// and each critical section runs under [`GuestCtx::critical`] with the
/// registers captured at `CritBegin` restored on every (re-)execution
/// of the body, mirroring the VM's rollback rule.
pub fn run_on_ctx(kernel: &Kernel, ctx: &mut GuestCtx) {
    let tid = ctx.tid;
    let threads = ctx.threads;
    let mut f = Frame::new(kernel);
    loop {
        match f.fetch(kernel, tid, threads) {
            Fetch::Halt => return,
            Fetch::CritEnd => unreachable!("validated kernel: CritEnd outside a section"),
            Fetch::Op(o) => match o.op {
                GuestOp::Load(a) => {
                    let v = ctx.load(a);
                    f.put(o.dst, v);
                }
                GuestOp::Store(a, v) => ctx.store(a, v),
                GuestOp::Cas(a, e, n) => {
                    let v = ctx.cas(a, e, n);
                    f.put(o.dst, v);
                }
                GuestOp::Compute(n) => ctx.compute(n),
                GuestOp::Barrier => ctx.barrier(),
                GuestOp::PageTouch(p) => ctx.page_touch(p).expect("abort on a plain page touch"),
                other => unreachable!("fetch produced non-kernel op {other:?}"),
            },
            Fetch::CritBegin => {
                let body_pc = f.pc;
                let saved = f.regs.clone();
                let frame = &mut f;
                ctx.critical(|tx| {
                    // Register rollback: every execution of the body
                    // starts from the state captured at CritBegin.
                    frame.regs.copy_from_slice(&saved);
                    frame.pc = body_pc;
                    loop {
                        match frame.fetch(kernel, tid, threads) {
                            Fetch::CritEnd => return Ok(()),
                            Fetch::Op(o) => match o.op {
                                GuestOp::Load(a) => {
                                    let v = tx.load(a)?;
                                    frame.put(o.dst, v);
                                }
                                GuestOp::Store(a, v) => tx.store(a, v)?,
                                GuestOp::Compute(n) => tx.compute(n)?,
                                GuestOp::PageTouch(p) => tx.page_touch(p)?,
                                other => {
                                    unreachable!("validated kernel: {other:?} inside a section")
                                }
                            },
                            Fetch::CritBegin => unreachable!("validated kernel: nested sections"),
                            Fetch::Halt => unreachable!("validated kernel: Halt inside a section"),
                        }
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Cond, KernelBuilder};

    fn fetch_ops(k: &Kernel) -> Vec<GuestOp> {
        // Drive a frame standalone, feeding zero for every load.
        let mut f = Frame::new(k);
        let mut ops = Vec::new();
        loop {
            match f.fetch(k, 0, 1) {
                Fetch::Halt => return ops,
                Fetch::Op(o) => {
                    ops.push(o.op);
                    f.put(o.dst, 0);
                }
                Fetch::CritBegin | Fetch::CritEnd => {}
            }
        }
    }

    #[test]
    fn pure_instrs_run_inline() {
        let mut b = KernelBuilder::new("sum", 3);
        // r0 = 0; for r1 in 10,9,..,1 { r0 += r1 }; store r0 to word 8.
        let loop_top = b.label();
        b.imm(0, 0).imm(1, 10).imm(2, 0);
        b.bind(loop_top);
        b.bin(BinOp::Add, 0, 0, 1);
        b.bini(BinOp::Sub, 1, 1, 1);
        b.br(Cond::Ne, 1, 2, loop_top);
        b.imm(1, 8);
        b.store(1, 0, 0);
        b.halt();
        let k = b.build();
        let ops = fetch_ops(&k);
        assert_eq!(ops, vec![GuestOp::Store(Addr(8), 55)]);
    }

    #[test]
    fn fetch_is_idempotent_at_halt() {
        let mut b = KernelBuilder::new("h", 1);
        b.halt();
        let k = b.build();
        let mut f = Frame::new(&k);
        assert!(matches!(f.fetch(&k, 0, 1), Fetch::Halt));
        assert!(matches!(f.fetch(&k, 0, 1), Fetch::Halt));
    }

    #[test]
    fn tid_and_threads_materialize() {
        let mut b = KernelBuilder::new("t", 2);
        b.push(Instr::Tid(0));
        b.push(Instr::Threads(1));
        b.store(1, 0, 0); // mem[threads] <- tid
        b.halt();
        let k = b.build();
        let mut f = Frame::new(&k);
        match f.fetch(&k, 3, 8) {
            Fetch::Op(o) => assert_eq!(o.op, GuestOp::Store(Addr(8), 3)),
            other => panic!("{other:?}"),
        }
    }
}
