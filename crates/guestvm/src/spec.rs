//! Guest programs for exploration: a tiny textual DSL (`ProgSpec`)
//! describing short STAMP-style kernels, plus deterministic random
//! generation for fuzz-style space coverage.
//!
//! Spec grammar (whitespace-free):
//!
//! ```text
//! spec    := lines '/' thread ('/' thread)*
//! thread  := segment (';' segment)*
//! segment := ('c' | 'p') ':' op (',' op)*
//! op      := 'L' line | 'S' line | 'C' count
//! ```
//!
//! `lines` is the number of distinct cache lines in the shared arena;
//! each thread is a sequence of segments, either **c**ritical (executed
//! under [`lockiller::GuestCtx::critical`], i.e. the active system's
//! concurrency control) or **p**lain (direct non-transactional
//! accesses). Ops: `L<i>` loads line `i`, `S<i>` stores a deterministic
//! value to line `i`, `C<n>` computes `n` instructions.
//!
//! Example — the 2-core/2-line hand-off kernel:
//! `2/c:L0,S1/c:L1,S0`.
//!
//! Specs are pure data: the same spec replayed under the same schedule
//! reproduces the run bit-for-bit (guests derive every value from
//! `(tid, op index)`, never from wall clock or host randomness), which
//! is what makes witnesses replayable.
//!
//! [`SpecProgram`] runs a spec on **either** guest backend: the thread
//! backend executes the hand-written loop in [`Program::run`], while
//! [`Program::guest_exec`] compiles the same spec to `guestvm` bytecode
//! ([`SpecProgram::compile`]). The two implementations are independent
//! — one interprets the spec directly over `GuestCtx`, the other goes
//! through the IR and the VM's re-implemented retry protocol — so the
//! differential suite's byte-equality checks across backends validate
//! the whole VM stack, not just one encoder.

use crate::ir::{Kernel, KernelBuilder};
use crate::vm::GuestVm;
use lockiller::exec::{GuestEnv, GuestExec};
use lockiller::{GuestCtx, Program, SetupCtx};
use sim_core::types::{Addr, LineAddr};
use std::fmt;
use std::sync::Arc;

/// Typed failure from [`ProgSpec::parse`]. Every variant carries enough
/// context to point at the offending token; `Display` renders the same
/// `spec: ...` messages callers previously got as bare strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The spec string has no leading line count.
    Empty,
    /// The leading line count is not an unsigned integer.
    BadLineCount { text: String },
    /// The declared line count is zero.
    ZeroLines,
    /// No thread follows the line count.
    NoThreads,
    /// A segment lacks its `c:`/`p:` mode prefix.
    MissingMode { segment: String },
    /// A segment mode other than `c` or `p`.
    BadMode { mode: String },
    /// An op that is not `L<i>`, `S<i>`, or `C<n>`.
    BadOp { op: String },
    /// A load/store references a line index outside the declared arena.
    LineOutOfRange { op: String, line: u64, lines: u64 },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "spec: empty"),
            ParseError::BadLineCount { text } => {
                write!(f, "spec: bad line count {text:?}")
            }
            ParseError::ZeroLines => write!(f, "spec: need at least one line"),
            ParseError::NoThreads => write!(f, "spec: need at least one thread"),
            ParseError::MissingMode { segment } => {
                write!(f, "spec: segment {segment:?} lacks 'c:'/'p:'")
            }
            ParseError::BadMode { mode } => write!(f, "spec: bad segment mode {mode:?}"),
            ParseError::BadOp { op } => write!(f, "spec: bad op {op:?}"),
            ParseError::LineOutOfRange { op, line, lines } => {
                write!(f, "spec: op {op:?} references line {line} >= {lines}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

/// One guest operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load line `i`.
    Load(u64),
    /// Store a deterministic value to line `i`.
    Store(u64),
    /// `n` non-memory instructions.
    Compute(u64),
}

/// A run of ops, either inside a critical section or plain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    pub critical: bool,
    pub ops: Vec<Op>,
}

/// A parsed guest-program specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgSpec {
    /// Number of distinct cache lines in the shared arena.
    pub lines: u64,
    /// Per-thread op sequences.
    pub threads: Vec<Vec<Segment>>,
}

impl ProgSpec {
    /// Parse the textual form (see module docs for the grammar).
    pub fn parse(s: &str) -> Result<ProgSpec, ParseError> {
        let mut parts = s.split('/');
        let head = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or(ParseError::Empty)?;
        let lines: u64 = head.parse().map_err(|_| ParseError::BadLineCount {
            text: head.to_string(),
        })?;
        if lines == 0 {
            return Err(ParseError::ZeroLines);
        }
        let mut threads = Vec::new();
        for tspec in parts {
            let mut segs = Vec::new();
            for sspec in tspec.split(';') {
                let (mode, ops_s) =
                    sspec
                        .split_once(':')
                        .ok_or_else(|| ParseError::MissingMode {
                            segment: sspec.to_string(),
                        })?;
                let critical = match mode {
                    "c" => true,
                    "p" => false,
                    _ => {
                        return Err(ParseError::BadMode {
                            mode: mode.to_string(),
                        })
                    }
                };
                let mut ops = Vec::new();
                for op_s in ops_s.split(',') {
                    let (kind, num) = op_s.split_at(1.min(op_s.len()));
                    let n: u64 = num.parse().map_err(|_| ParseError::BadOp {
                        op: op_s.to_string(),
                    })?;
                    let op = match kind {
                        "L" => Op::Load(n),
                        "S" => Op::Store(n),
                        "C" => Op::Compute(n),
                        _ => {
                            return Err(ParseError::BadOp {
                                op: op_s.to_string(),
                            })
                        }
                    };
                    if let Op::Load(l) | Op::Store(l) = op {
                        if l >= lines {
                            return Err(ParseError::LineOutOfRange {
                                op: op_s.to_string(),
                                line: l,
                                lines,
                            });
                        }
                    }
                    ops.push(op);
                }
                segs.push(Segment { critical, ops });
            }
            threads.push(segs);
        }
        if threads.is_empty() {
            return Err(ParseError::NoThreads);
        }
        Ok(ProgSpec { lines, threads })
    }

    /// Render back to the textual form (`parse(render(x)) == x`).
    pub fn render(&self) -> String {
        let mut out = self.lines.to_string();
        for t in &self.threads {
            out.push('/');
            let segs: Vec<String> = t
                .iter()
                .map(|seg| {
                    let ops: Vec<String> = seg
                        .ops
                        .iter()
                        .map(|op| match op {
                            Op::Load(l) => format!("L{l}"),
                            Op::Store(l) => format!("S{l}"),
                            Op::Compute(n) => format!("C{n}"),
                        })
                        .collect();
                    format!("{}:{}", if seg.critical { 'c' } else { 'p' }, ops.join(","))
                })
                .collect();
            out.push_str(&segs.join(";"));
        }
        out
    }

    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The canonical small conflict kernel: each of `threads` threads
    /// runs one critical section loading its own line and storing its
    /// neighbour's (`c:L(t%lines),S((t+1)%lines)`).
    pub fn conflict_ring(threads: usize, lines: u64) -> ProgSpec {
        assert!(threads >= 1 && lines >= 1);
        let spec_threads = (0..threads as u64)
            .map(|t| {
                vec![Segment {
                    critical: true,
                    ops: vec![Op::Load(t % lines), Op::Store((t + 1) % lines)],
                }]
            })
            .collect();
        ProgSpec {
            lines,
            threads: spec_threads,
        }
    }

    /// Generate a random small spec: `threads` threads, up to
    /// `max_lines` lines, 1–2 segments per thread, 1–4 ops per segment.
    /// Deterministic in `rng`'s seed.
    pub fn random(rng: &mut proptest::Rng, threads: usize, max_lines: u64) -> ProgSpec {
        let lines = 1 + rng.below(max_lines.max(1));
        let spec_threads = (0..threads)
            .map(|_| {
                let segs = 1 + rng.below(2) as usize;
                (0..segs)
                    .map(|_| {
                        let critical = rng.below(4) != 0; // bias to critical
                        let n_ops = 1 + rng.below(4) as usize;
                        let ops = (0..n_ops)
                            .map(|_| match rng.below(5) {
                                0 | 1 => Op::Load(rng.below(lines)),
                                2 | 3 => Op::Store(rng.below(lines)),
                                _ => Op::Compute(1 + rng.below(8)),
                            })
                            .collect();
                        Segment { critical, ops }
                    })
                    .collect()
            })
            .collect();
        ProgSpec {
            lines,
            threads: spec_threads,
        }
    }
}

/// [`Program`] executing a [`ProgSpec`]: the arena is `lines` disjoint
/// cache lines; store values encode `(tid, op index)` so the trace
/// identifies which op wrote what. Runs on both guest backends (see the
/// module docs).
pub struct SpecProgram {
    spec: ProgSpec,
    bases: Vec<Addr>,
    name: String,
}

impl SpecProgram {
    /// Physical cache line of the fallback lock under the standard
    /// [`lockiller::Runner`] memory layout: the runner allocates the
    /// lock's 8-word block first (`Addr(8)`, the word-0 line being
    /// reserved), so the lock always lands on `LineAddr(1)`.
    pub const LOCK_LINE: LineAddr = LineAddr(1);

    /// Physical cache line of spec line `i`: [`SpecProgram::setup`]
    /// allocates one line-sized block per spec line immediately after
    /// the lock, so spec line `i` lands on `LineAddr(2 + i)`. Static
    /// analyses use this to translate spec-level line sets into the
    /// bank/set geometry of a [`sim_core::config::SystemConfig`]. The
    /// `tmstatic` soundness tests cross-check it against traced runs.
    pub fn data_line(i: u64) -> LineAddr {
        LineAddr(2 + i)
    }

    pub fn new(spec: ProgSpec) -> SpecProgram {
        let name = spec.render();
        SpecProgram {
            spec,
            bases: Vec::new(),
            name,
        }
    }

    /// Compile thread `tid`'s op sequence to a straight-line kernel.
    /// Every op and every store value matches [`Program::run`]'s
    /// hand-written loop exactly — including the shared op counter that
    /// numbers ops across segments.
    pub fn compile(&self, tid: usize) -> Kernel {
        assert!(
            !self.bases.is_empty(),
            "compile requires setup (bases unassigned)"
        );
        let mut b = KernelBuilder::new(format!("spec[{tid}]:{}", self.name), 2);
        let t = tid as u64;
        let mut op_no: u64 = 0;
        for seg in &self.spec.threads[tid] {
            if seg.critical {
                b.crit_begin();
            }
            for (k, op) in (op_no..).zip(seg.ops.iter()) {
                match *op {
                    Op::Load(l) => {
                        b.imm(0, self.bases[l as usize].0).load(1, 0, 0);
                    }
                    Op::Store(l) => {
                        b.imm(0, self.bases[l as usize].0)
                            .imm(1, (t << 32) | k)
                            .store(0, 0, 1);
                    }
                    Op::Compute(n) => {
                        b.compute(n);
                    }
                }
            }
            if seg.critical {
                b.crit_end();
            }
            op_no += seg.ops.len() as u64;
        }
        b.halt();
        b.build()
    }

    /// Compile every thread of `spec` under the standard
    /// [`lockiller::Runner`] memory layout without running a simulation:
    /// the runner allocates the fallback lock's 8-word block first
    /// ([`SpecProgram::LOCK_LINE`]), then [`SpecProgram::setup`] places
    /// spec line `i` on [`SpecProgram::data_line`]`(i)`. The returned
    /// kernels are byte-identical to what `--backend vm` executes, which
    /// is what lets static analyses (`tmstatic::vmabs`) and `tmlint
    /// kernel` reason about physical line addresses offline.
    pub fn compile_all(spec: &ProgSpec) -> Vec<Kernel> {
        let threads = spec.num_threads();
        let mut p = SpecProgram::new(spec.clone());
        let mut s = SetupCtx::new();
        let _lock = s.alloc(8);
        p.setup(&mut s, threads);
        (0..threads).map(|t| p.compile(t)).collect()
    }
}

impl Program for SpecProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(
            threads,
            self.spec.num_threads(),
            "runner thread count must match the spec"
        );
        // One 8-word (line-sized, line-aligned) block per spec line.
        self.bases = (0..self.spec.lines).map(|_| s.alloc(8)).collect();
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let segs = &self.spec.threads[ctx.tid];
        let tid = ctx.tid as u64;
        let mut op_no: u64 = 0;
        for seg in segs {
            if seg.critical {
                ctx.critical(|tx| {
                    for (k, op) in (op_no..).zip(seg.ops.iter()) {
                        match *op {
                            Op::Load(l) => {
                                tx.load(self.bases[l as usize])?;
                            }
                            Op::Store(l) => {
                                tx.store(self.bases[l as usize], (tid << 32) | k)?;
                            }
                            Op::Compute(n) => tx.compute(n)?,
                        }
                    }
                    Ok(())
                });
            } else {
                for op in &seg.ops {
                    match *op {
                        Op::Load(l) => {
                            ctx.load(self.bases[l as usize]);
                        }
                        Op::Store(l) => ctx.store(self.bases[l as usize], (tid << 32) | op_no),
                        Op::Compute(n) => ctx.compute(n),
                    }
                    op_no += 1;
                }
                continue;
            }
            op_no += seg.ops.len() as u64;
        }
    }

    fn guest_exec(&self, env: GuestEnv) -> Option<Box<dyn GuestExec + '_>> {
        Some(GuestVm::boxed(Arc::new(self.compile(env.tid)), &env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;

    #[test]
    fn parse_render_roundtrip() {
        for s in [
            "2/c:L0,S1/c:L1,S0",
            "4/c:L0,S1;p:L2/c:S0,C5",
            "1/p:C3",
            "8/c:L7,S0/p:S3;c:L3,L4,S4",
        ] {
            let spec = ProgSpec::parse(s).expect(s);
            assert_eq!(spec.render(), s);
            assert_eq!(ProgSpec::parse(&spec.render()).unwrap(), spec);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "2",
            "0/c:L0",
            "2/x:L0",
            "2/c:L5", // line out of range
            "2/c:Q1", // bad op
            "2/c:",   // empty ops
            "nope/c:L0",
        ] {
            assert!(ProgSpec::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        assert_eq!(ProgSpec::parse(""), Err(ParseError::Empty));
        assert_eq!(ProgSpec::parse("2"), Err(ParseError::NoThreads));
        assert_eq!(ProgSpec::parse("0/c:L0"), Err(ParseError::ZeroLines));
        assert_eq!(
            ProgSpec::parse("2/c:L5,S0"),
            Err(ParseError::LineOutOfRange {
                op: "L5".into(),
                line: 5,
                lines: 2,
            })
        );
        match ProgSpec::parse("2/x:L0") {
            Err(ParseError::BadMode { mode }) => assert_eq!(mode, "x"),
            other => panic!("expected BadMode, got {other:?}"),
        }
        // Errors convert to the stringly form callers used to consume.
        let msg: String = ProgSpec::parse("2/c:L5").unwrap_err().into();
        assert!(msg.contains("references line 5"), "{msg}");
    }

    #[test]
    fn conflict_ring_shape() {
        let spec = ProgSpec::conflict_ring(3, 2);
        assert_eq!(spec.render(), "2/c:L0,S1/c:L1,S0/c:L0,S1");
        assert_eq!(spec.num_threads(), 3);
    }

    #[test]
    fn random_specs_valid_and_deterministic() {
        let mut a = proptest::Rng::new(7);
        let mut b = proptest::Rng::new(7);
        for _ in 0..50 {
            let sa = ProgSpec::random(&mut a, 3, 8);
            let sb = ProgSpec::random(&mut b, 3, 8);
            assert_eq!(sa, sb, "same seed, same spec");
            // Round-trips through the textual form.
            assert_eq!(ProgSpec::parse(&sa.render()).unwrap(), sa);
            assert_eq!(sa.num_threads(), 3);
        }
    }

    #[test]
    fn compile_numbers_ops_like_the_hand_written_loop() {
        let spec = ProgSpec::parse("2/p:S0,S1;c:S0,S1").unwrap();
        let mut p = SpecProgram::new(spec);
        let mut s = SetupCtx::new();
        // Match the runner's layout: lock block first.
        let _lock = s.alloc(8);
        p.setup(&mut s, 1);
        let k = p.compile(0);
        // Store values are (tid << 32) | op_index with one shared
        // counter: plain S0 -> 0, plain S1 -> 1, crit S0 -> 2, S1 -> 3.
        let values: Vec<u64> = k
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Imm(1, v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
        // Critical section is bracketed.
        assert!(k.instrs.contains(&Instr::CritBegin));
        assert!(k.instrs.contains(&Instr::CritEnd));
    }
}
