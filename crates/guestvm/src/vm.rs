//! The resumable guest VM: `lockiller`'s guest-side runtime
//! (`GuestCtx::critical`, Listings 1 and 2 of the paper) re-implemented
//! as an explicit state machine behind the [`GuestExec`] seam.
//!
//! Every [`GuestVm::resume`] call applies the engine's response to the
//! in-flight operation, advances the interpreter to the next
//! op-producing instruction, and returns that op — a plain function
//! call where the thread backend paid two OS context switches.
//!
//! # Bit-identity
//!
//! The VM must emit **exactly** the `GuestOp` sequence the hand-written
//! runtime in `lockiller::guest` emits for the same kernel and response
//! history. The protocol below is therefore a transliteration of
//! `critical_inner`/`try_htm` (same op order, same retry accounting,
//! same panic conditions); the differential suite asserts byte-equal
//! run statistics, traces, and memory images across backends for the
//! whole program corpus. When editing either side, edit both.
//!
//! # Snapshot / restore
//!
//! The whole execution state is plain data (registers + a `Waiting`
//! tag), so [`GuestExec::snapshot`] is a deep copy — this is what lets
//! schedule explorers backtrack a guest without re-running it.

use crate::interp::{Fetch, Frame};
use crate::ir::Kernel;
use lockiller::exec::{GuestEnv, GuestExec, GuestSnapshot};
use lockiller::guest::{GuestOp, GuestPolicy, GuestResp, TTest};
use sim_core::stats::AbortCause;
use sim_core::types::Addr;
use std::sync::Arc;

/// Which register state a critical section is executing under (the
/// paper's code paths: speculative HTM, or one of the lock-held modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BodyKind {
    /// Speculative attempt: body ops may abort.
    Htm,
    /// Lock-held section (`hl` selects `HlBegin`/`HlEnd` vs
    /// `FallbackBegin`/`FallbackEnd` bracketing). Aborts are fatal.
    Lock { hl: bool },
}

/// After `spin_acquire` succeeds, which section follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AfterAcquire {
    /// CGL systems: plain critical section under the global lock.
    Cgl,
    /// Retry budget exhausted: the elided lock's fallback path.
    Fallback,
}

/// The operation currently in flight — what the next response answers.
/// Each variant is one rendezvous point of the hand-written runtime.
#[derive(Clone, Debug)]
enum Waiting {
    /// Nothing issued yet (next `resume` carries the synthetic kick).
    Start,
    /// Plain (non-critical) op; `Some(reg)` receives a `Value` response.
    Plain(Option<u8>),
    /// `TxBegin` of a speculative attempt.
    TxBegin,
    /// Baseline lock subscription: transactional load of the lock word.
    SubLoad,
    /// `TxAbortUser` after observing the subscribed lock held.
    XAbort,
    /// A body op on the speculative path.
    Body(Option<u8>),
    /// `TTest` of `lock_release_elided` (Listing 2).
    TTest,
    /// `HlEnd` after `TTest` reported STL (switched transaction).
    HlEndSwitched,
    /// `TxCommit` (xend).
    TxCommit,
    /// `spin_until_free` (subscribed lock seen held): its `SpinBegin`,
    /// lock load, backoff compute, `SpinEnd`.
    SufBegin,
    SufLoad,
    SufCompute,
    SufEnd,
    /// `spin_acquire` (CGL entry or fallback): its `SpinBegin`, lock
    /// load, CAS, backoff compute, `SpinEnd`.
    SaBegin(AfterAcquire),
    SaLoad(AfterAcquire),
    SaCas(AfterAcquire),
    SaCompute(AfterAcquire),
    SaEnd(AfterAcquire),
    /// `FallbackBegin` / `HlBegin` bracketing a lock-held section.
    SecBegin {
        hl: bool,
    },
    /// A body op on a lock-held path.
    LockBody {
        hl: bool,
        dst: Option<u8>,
    },
    /// `FallbackEnd` / `HlEnd` of a lock-held section.
    SecEnd,
    /// The lock-release store (`lock <- 0`).
    ReleaseStore,
    /// `Exit` returned; `resume` must never be called again.
    Exited,
}

/// In-progress critical section (one `CritBegin`..`CritEnd` region).
#[derive(Clone, Debug)]
struct Crit {
    /// First body instruction (just past `CritBegin`).
    body_pc: usize,
    /// Registers at `CritBegin` — restored on every body (re)entry.
    saved_regs: Vec<u64>,
    /// Remaining speculative attempts (Listing 1's `retries`).
    retries: u32,
}

/// The complete, cloneable execution state of one simulated thread.
#[derive(Clone, Debug)]
struct VmState {
    tid: usize,
    threads: usize,
    policy: GuestPolicy,
    lock_addr: Addr,
    frame: Frame,
    waiting: Waiting,
    crit: Option<Crit>,
}

/// Why a speculative attempt failed (mirrors `guest::HtmFail`).
enum HtmFail {
    LockTaken,
    Abort(AbortCause),
}

/// In-process resumable guest: one simulated thread executing a
/// [`Kernel`], implementing [`GuestExec`] for the engine.
pub struct GuestVm {
    kernel: Arc<Kernel>,
    st: VmState,
}

impl GuestVm {
    /// Build a guest for one simulated thread. `env.rng` is unused:
    /// kernels are closed programs whose behaviour is a pure function of
    /// the bytecode and the response history.
    pub fn new(kernel: Arc<Kernel>, env: &GuestEnv) -> GuestVm {
        let frame = Frame::new(&kernel);
        GuestVm {
            kernel,
            st: VmState {
                tid: env.tid,
                threads: env.threads,
                policy: env.policy,
                lock_addr: env.lock_addr,
                frame,
                waiting: Waiting::Start,
                crit: None,
            },
        }
    }

    /// Boxed constructor for [`lockiller::Program::guest_exec`] impls.
    pub fn boxed(kernel: Arc<Kernel>, env: &GuestEnv) -> Box<dyn GuestExec + 'static> {
        Box::new(GuestVm::new(kernel, env))
    }

    /// The kernel this guest runs (diagnostics).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

/// Extract the `Value` payload of a response to `what`, with the same
/// panic the hand-written runtime raises on a malformed response.
fn value(resp: GuestResp, what: &str) -> u64 {
    match resp {
        GuestResp::Value(v) => v,
        r => panic!("bad response to {what}: {r:?}"),
    }
}

/// Panic exactly like `op_infallible` on an abort outside speculation.
fn infallible(resp: GuestResp) -> GuestResp {
    match resp {
        GuestResp::Aborted(c) => panic!("unexpected abort ({c:?}) outside a transaction"),
        r => r,
    }
}

impl VmState {
    /// The two policy-dependent entry ops of a critical section.
    fn enter_crit(&mut self, k: &Kernel) -> GuestOp {
        let body_pc = self.frame.pc;
        let saved_regs = self.frame.regs.clone();
        let retries = self.policy.max_retries;
        self.crit = Some(Crit {
            body_pc,
            saved_regs,
            retries,
        });
        if self.policy.coarse_grained_lock {
            // CGL: spin_acquire, then a plain locked section.
            self.waiting = Waiting::SaBegin(AfterAcquire::Cgl);
            return GuestOp::SpinBegin;
        }
        self.next_attempt(k)
    }

    /// Listing 1's `while retries > 0` head: begin a speculative
    /// attempt, or fall back to the lock once the budget is gone.
    fn next_attempt(&mut self, _k: &Kernel) -> GuestOp {
        let retries = self.crit.as_ref().expect("in critical section").retries;
        if retries > 0 {
            self.waiting = Waiting::TxBegin;
            GuestOp::TxBegin
        } else {
            self.waiting = Waiting::SaBegin(AfterAcquire::Fallback);
            GuestOp::SpinBegin
        }
    }

    /// A speculative attempt failed: route to `spin_until_free` (lock
    /// observed held) or straight to retry accounting.
    fn attempt_failed(&mut self, k: &Kernel, fail: &HtmFail) -> GuestOp {
        match fail {
            HtmFail::LockTaken => {
                // Wait until the lock frees, then burn one retry (the
                // decrement happens at SufEnd, as in the hand-written
                // runtime's `spin_until_free(); retries -= 1;`).
                self.waiting = Waiting::SufBegin;
                GuestOp::SpinBegin
            }
            HtmFail::Abort(cause) => {
                let hopeless = matches!(cause, AbortCause::Of | AbortCause::Fault);
                let crit = self.crit.as_mut().expect("in critical section");
                if hopeless && self.policy.fallback_on_capacity {
                    crit.retries = 0;
                } else {
                    crit.retries -= 1;
                }
                self.next_attempt(k)
            }
        }
    }

    /// Classify a body abort exactly like `try_htm`'s match on the body
    /// result: `Mutex` without htmlock means the subscribed lock was
    /// taken.
    fn body_abort(&mut self, k: &Kernel, cause: AbortCause) -> GuestOp {
        let fail = if cause == AbortCause::Mutex && !self.policy.htmlock {
            HtmFail::LockTaken
        } else {
            HtmFail::Abort(cause)
        };
        self.attempt_failed(k, &fail)
    }

    /// (Re-)enter the critical-section body: restore the registers
    /// captured at `CritBegin` (hardware register rollback) and run to
    /// the first body op or the section end.
    fn enter_body(&mut self, k: &Kernel, kind: BodyKind) -> GuestOp {
        let crit = self.crit.as_ref().expect("in critical section");
        self.frame.regs.copy_from_slice(&crit.saved_regs);
        self.frame.pc = crit.body_pc;
        self.body_step(k, kind)
    }

    /// Advance inside the body until the next op or `CritEnd`.
    fn body_step(&mut self, k: &Kernel, kind: BodyKind) -> GuestOp {
        match self.frame.fetch(k, self.tid, self.threads) {
            Fetch::Op(o) => {
                self.waiting = match kind {
                    BodyKind::Htm => Waiting::Body(o.dst),
                    BodyKind::Lock { hl } => Waiting::LockBody { hl, dst: o.dst },
                };
                o.op
            }
            Fetch::CritEnd => match kind {
                BodyKind::Htm => {
                    // lock_release_elided (Listing 2): dispatch on _ttest.
                    self.waiting = Waiting::TTest;
                    GuestOp::TTest
                }
                BodyKind::Lock { hl } => {
                    self.waiting = Waiting::SecEnd;
                    if hl {
                        GuestOp::HlEnd
                    } else {
                        GuestOp::FallbackEnd
                    }
                }
            },
            Fetch::CritBegin => unreachable!("validated kernel: nested sections"),
            Fetch::Halt => unreachable!("validated kernel: Halt inside a section"),
        }
    }

    /// The critical section committed/completed: resume plain execution
    /// after `CritEnd` (the frame already points there).
    fn crit_done(&mut self, k: &Kernel) -> GuestOp {
        self.crit = None;
        self.run_plain(k)
    }

    /// Advance outside any critical section until the next op, a
    /// `CritBegin`, or program end.
    fn run_plain(&mut self, k: &Kernel) -> GuestOp {
        match self.frame.fetch(k, self.tid, self.threads) {
            Fetch::Op(o) => {
                self.waiting = Waiting::Plain(o.dst);
                o.op
            }
            Fetch::CritBegin => self.enter_crit(k),
            Fetch::CritEnd => unreachable!("validated kernel: CritEnd outside a section"),
            Fetch::Halt => {
                self.waiting = Waiting::Exited;
                GuestOp::Exit
            }
        }
    }

    fn step(&mut self, k: &Kernel, resp: GuestResp) -> GuestOp {
        // Every transition: consume the response for the in-flight op,
        // then advance to the next op. The `Waiting` variants below are
        // in one-to-one correspondence with the rendezvous points of
        // `lockiller::guest` — see the module docs.
        let waiting = std::mem::replace(&mut self.waiting, Waiting::Start);
        match waiting {
            Waiting::Start => {
                // Synthetic kick; no op is in flight.
                self.run_plain(k)
            }
            Waiting::Plain(dst) => {
                match infallible(resp) {
                    GuestResp::Value(v) => self.frame.put(dst, v),
                    _ => {
                        if dst.is_some() {
                            panic!("bad response to load: {resp:?}");
                        }
                    }
                }
                self.run_plain(k)
            }

            // ---- speculative attempt (try_htm) ----
            Waiting::TxBegin => match resp {
                GuestResp::Aborted(c) => self.attempt_failed(k, &HtmFail::Abort(c)),
                _ => {
                    if !self.policy.htmlock {
                        // Baseline subscription: the fallback lock joins
                        // the read set.
                        self.waiting = Waiting::SubLoad;
                        GuestOp::Load(self.lock_addr)
                    } else {
                        self.enter_body(k, BodyKind::Htm)
                    }
                }
            },
            Waiting::SubLoad => match resp {
                GuestResp::Aborted(c) => self.body_abort(k, c),
                GuestResp::Value(0) => self.enter_body(k, BodyKind::Htm),
                GuestResp::Value(_) => {
                    // Lock already held: abort explicitly.
                    self.waiting = Waiting::XAbort;
                    GuestOp::TxAbortUser
                }
                r => panic!("bad response to tx load: {r:?}"),
            },
            Waiting::XAbort => match resp {
                GuestResp::Aborted(_) => self.body_abort(k, AbortCause::Mutex),
                r => panic!("xabort must abort, got {r:?}"),
            },
            Waiting::Body(dst) => match resp {
                GuestResp::Aborted(c) => self.body_abort(k, c),
                GuestResp::Value(v) => {
                    self.frame.put(dst, v);
                    self.body_step(k, BodyKind::Htm)
                }
                _ if dst.is_some() => panic!("bad response to tx load: {resp:?}"),
                _ => self.body_step(k, BodyKind::Htm),
            },
            Waiting::TTest => match resp {
                GuestResp::Aborted(c) => self.attempt_failed(k, &HtmFail::Abort(c)),
                GuestResp::Value(TTest::STL) => {
                    // Switched transaction: hlend, no lock to release.
                    self.waiting = Waiting::HlEndSwitched;
                    GuestOp::HlEnd
                }
                GuestResp::Value(_) => {
                    self.waiting = Waiting::TxCommit;
                    GuestOp::TxCommit
                }
                r => panic!("bad ttest response: {r:?}"),
            },
            // `HlEnd` after an STL switch and the lock-release store
            // both complete the critical section.
            Waiting::HlEndSwitched | Waiting::ReleaseStore => {
                let _ = infallible(resp);
                self.crit_done(k)
            }
            Waiting::TxCommit => match resp {
                GuestResp::Aborted(c) => self.attempt_failed(k, &HtmFail::Abort(c)),
                _ => self.crit_done(k),
            },

            // ---- spin_until_free (subscribed lock observed held) ----
            // `SpinBegin` acknowledged and backoff-compute finished both
            // lead to the next poll of the lock word.
            Waiting::SufBegin | Waiting::SufCompute => {
                let _ = infallible(resp);
                self.waiting = Waiting::SufLoad;
                GuestOp::Load(self.lock_addr)
            }
            Waiting::SufLoad => match infallible(resp) {
                GuestResp::Value(0) => {
                    self.waiting = Waiting::SufEnd;
                    GuestOp::SpinEnd
                }
                GuestResp::Value(_) => {
                    self.waiting = Waiting::SufCompute;
                    GuestOp::Compute(16)
                }
                r => panic!("bad response to load: {r:?}"),
            },
            Waiting::SufEnd => {
                let _ = infallible(resp);
                self.crit.as_mut().expect("in critical section").retries -= 1;
                self.next_attempt(k)
            }

            // ---- spin_acquire (CGL entry / fallback path) ----
            Waiting::SaBegin(next) | Waiting::SaCompute(next) => {
                let _ = infallible(resp);
                self.waiting = Waiting::SaLoad(next);
                GuestOp::Load(self.lock_addr)
            }
            Waiting::SaLoad(next) => match infallible(resp) {
                GuestResp::Value(0) => {
                    self.waiting = Waiting::SaCas(next);
                    GuestOp::Cas(self.lock_addr, 0, 1)
                }
                GuestResp::Value(_) => {
                    self.waiting = Waiting::SaCompute(next);
                    GuestOp::Compute(16)
                }
                r => panic!("bad response to load: {r:?}"),
            },
            Waiting::SaCas(next) => match value(infallible(resp), "cas") {
                0 => {
                    self.waiting = Waiting::SaEnd(next);
                    GuestOp::SpinEnd
                }
                _ => {
                    self.waiting = Waiting::SaCompute(next);
                    GuestOp::Compute(16)
                }
            },
            Waiting::SaEnd(next) => {
                let _ = infallible(resp);
                let hl = match next {
                    // CGL always uses the plain fallback brackets.
                    AfterAcquire::Cgl => false,
                    AfterAcquire::Fallback => self.policy.htmlock,
                };
                self.waiting = Waiting::SecBegin { hl };
                if hl {
                    GuestOp::HlBegin
                } else {
                    GuestOp::FallbackBegin
                }
            }

            // ---- lock-held section ----
            Waiting::SecBegin { hl } => {
                let _ = infallible(resp);
                self.enter_body(k, BodyKind::Lock { hl })
            }
            Waiting::LockBody { hl, dst } => match resp {
                GuestResp::Aborted(c) => {
                    panic!("abort on the non-speculative path: Abort {{ cause: {c:?} }}")
                }
                GuestResp::Value(v) => {
                    self.frame.put(dst, v);
                    self.body_step(k, BodyKind::Lock { hl })
                }
                _ if dst.is_some() => panic!("bad response to tx load: {resp:?}"),
                _ => self.body_step(k, BodyKind::Lock { hl }),
            },
            Waiting::SecEnd => {
                let _ = infallible(resp);
                self.waiting = Waiting::ReleaseStore;
                GuestOp::Store(self.lock_addr, 0)
            }
            Waiting::Exited => panic!("resume after Exit"),
        }
    }
}

impl GuestExec for GuestVm {
    fn resume(&mut self, resp: GuestResp) -> GuestOp {
        self.st.step(&self.kernel, resp)
    }

    fn snapshot(&self) -> Option<GuestSnapshot> {
        Some(GuestSnapshot(Box::new(self.st.clone())))
    }

    fn restore(&mut self, snap: &GuestSnapshot) -> bool {
        match snap.0.downcast_ref::<VmState>() {
            Some(s) if s.frame.regs.len() == self.st.frame.regs.len() => {
                self.st = s.clone();
                true
            }
            _ => false,
        }
    }
}
