//! The [`Strategy`] trait and the combinators the workspace's suites use.

use crate::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: `generate` produces a final value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Map generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// # Panics
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (proptest's `any`).
#[must_use]
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain integer strategy backing `any::<uN>()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyInt<T>(PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt(PhantomData)
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyInt<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyInt<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyInt(PhantomData)
    }
}

/// `any::<Option<T>>()`: `None` one time in four, matching proptest's
/// default weighting closely enough for coverage purposes.
pub struct AnyOption<T: Arbitrary>(T::Strategy);

impl<T: Arbitrary> Strategy for AnyOption<T> {
    type Value = Option<T>;
    fn generate(&self, rng: &mut Rng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    type Strategy = AnyOption<T>;
    fn arbitrary() -> Self::Strategy {
        AnyOption(T::arbitrary())
    }
}

macro_rules! any_tuple {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            type Strategy = ($($t::Strategy,)+);
            fn arbitrary() -> Self::Strategy {
                ($($t::arbitrary(),)+)
            }
        }
    )*};
}

any_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice among the alternatives, in proptest's macro syntax.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..1).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u8..10, 5u8..6).prop_map(|(a, b)| u32::from(a) + u32::from(b));
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s: OneOf<u8> = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = Rng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn determinism() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
