//! Test-runner types and the [`proptest!`] macro family.
//!
//! [`proptest!`]: crate::proptest

use std::fmt;

/// Per-suite configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why one generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    pub fn fail(reason: impl fmt::Display) -> TestCaseError {
        TestCaseError::Fail(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject => write!(f, "inputs rejected by prop_assume!"),
        }
    }
}

/// Defines `#[test]` functions that run their body over generated inputs.
///
/// Supported grammar (the subset real proptest files in this workspace
/// use):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop_name(x in 0u64..10, ys in prop::collection::vec(any::<u8>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut done: u32 = 0;
            let mut attempts: u32 = 0;
            while done < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(20).max(100),
                    "prop_assume! rejected too many generated cases"
                );
                let mut rng = $crate::Rng::new(seed ^ (u64::from(attempts)).wrapping_mul(0x9E37_79B9));
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let case_debug = format!(concat!($(stringify!($arg), " = {:?}; ",)+), $(&$arg),+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => done += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!(
                            "property `{}` falsified on case {} (seed {seed:#x}): {reason}\n  inputs: {}",
                            stringify!($name), attempts, case_debug
                        );
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current generated case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, "prop_assert_eq! failed: {:?} != {:?}", a, b);
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a != b, "prop_assert_ne! failed: both {:?}", a);
    }};
}

/// Skip cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips(a in 0u8..4) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in prop::collection::vec(any::<u16>(), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn impossible(a in 5u64..6) {
                    prop_assert!(a != 5, "a was {}", a);
                }
            }
            impossible();
        });
        let msg = *r
            .expect_err("must panic")
            .downcast::<String>()
            .expect("string panic");
        assert!(
            msg.contains("falsified") && msg.contains("a = 5"),
            "bad message: {msg}"
        );
    }
}
