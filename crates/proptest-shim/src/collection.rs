//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::Rng;
use std::ops::Range;

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Anything accepted as the length argument of [`vec`], mirroring
/// proptest's `Into<SizeRange>` conversions.
pub trait IntoSizeRange {
    fn into_size_range(self) -> Range<usize>;
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> Range<usize> {
        self
    }
}

impl IntoSizeRange for usize {
    /// A bare length means "exactly this many elements".
    fn into_size_range(self) -> Range<usize> {
        self..self + 1
    }
}

/// Mirror of `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
    let len = len.into_size_range();
    assert!(len.start < len.end, "empty vec length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let s = vec(0u8..4, 2..7);
        let mut rng = Rng::new(9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn bare_usize_is_exact_length() {
        let s = vec(0u8..4, 3usize);
        let mut rng = Rng::new(5);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng).len(), 3);
        }
    }
}
