//! A small, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace's property suites link against this shim instead (the
//! `proptest` dependency of every crate is a renamed path dependency on
//! this package). It implements exactly the API subset the suites use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! - [`prop_oneof!`],
//! - [`Strategy`] with `prop_map` and `boxed`,
//! - integer-range, tuple, `any::<T>()`, and `collection::vec` strategies.
//!
//! Generation is a deterministic splitmix64 stream seeded from the test
//! name (override with `PROPTEST_SEED`), so failures reproduce exactly.
//! There is **no shrinking**: a failing case is reported as generated.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property-test file needs, mirroring
    //! `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic splitmix64 generator used by every strategy.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// FNV-1a over a test's name, the default per-test seed.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(h)
}
