//! genome — gene sequencing by segment matching (STAMP `genome`).
//!
//! A random gene of `gene_len` bases is cut into all overlapping windows
//! of `seg_len` bases. Phase 1 deduplicates the (over-sampled, shuffled)
//! segment stream into a shared hash set — the transaction-heavy part.
//! Phase 2 builds a prefix index, then links each unique segment to its
//! unique successor (the window one base to the right), reconstructing
//! the gene.
//!
//! The port keeps the original's structure: hash-table insert
//! transactions in phase 1 (low/medium contention, medium length), then
//! table build + match transactions in phase 2. Validation reconstructs
//! the gene from the links and compares it to the input — failure means a
//! transaction was torn.

use crate::Scale;
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use sim_core::rng::SimRng;
use tmlib::{HashTable, TmAlloc};

/// Input parameters (STAMP's `-g -s -n` knobs).
#[derive(Clone, Copy, Debug)]
pub struct GenomeParams {
    /// Gene length in bases (STAMP `-g`).
    pub gene_len: usize,
    /// Segment length in bases (STAMP `-s`); max 30 (2-bit encoding).
    pub seg_len: usize,
    /// Oversampling factor: total segments = windows * oversample
    /// (STAMP `-n` expressed as coverage).
    pub oversample: usize,
}

impl GenomeParams {
    pub fn for_scale(scale: Scale) -> GenomeParams {
        let (gene_len, seg_len, oversample) = match scale {
            Scale::Tiny => (48, 8, 2),
            Scale::Small => (128, 12, 3),
            Scale::Full => (320, 16, 4),
        };
        GenomeParams {
            gene_len,
            seg_len,
            oversample,
        }
    }
}

pub struct Genome {
    threads: usize,
    gene_len: usize,
    seg_len: usize,
    oversample: usize,
    /// The gene as 2-bit bases.
    gene: Vec<u8>,
    /// Shuffled segment stream (encoded windows), partitioned per thread.
    stream: Vec<u64>,
    /// Unique windows in position order (for validation).
    windows: Vec<u64>,
    alloc: Option<TmAlloc>,
    /// Dedup set: segment -> 1.
    unique: Option<HashTable>,
    /// Prefix index: prefix(seg) -> seg.
    starts: Option<HashTable>,
    /// Successor links: seg -> next seg (hashtable).
    links: Option<HashTable>,
    /// Phase-2 claim bitmap cell per segment is folded into `links`.
    first_window: u64,
}

fn encode(gene: &[u8], pos: usize, len: usize) -> u64 {
    let mut v: u64 = 1; // leading 1 keeps distinct lengths distinct
    for &b in &gene[pos..pos + len] {
        v = (v << 2) | b as u64;
    }
    v
}

/// Prefix of a window: drop the last base.
fn prefix(seg: u64) -> u64 {
    seg >> 2
}

/// Suffix of a window: drop the first base (keeping the leading 1).
fn suffix(seg: u64, len: usize) -> u64 {
    let body_bits = 2 * (len - 1);
    (1u64 << body_bits) | (seg & ((1u64 << body_bits) - 1))
}

impl Genome {
    pub fn new(scale: Scale, threads: usize) -> Genome {
        Genome::with_params(GenomeParams::for_scale(scale), threads)
    }

    pub fn with_params(p: GenomeParams, threads: usize) -> Genome {
        assert!(
            p.seg_len >= 2 && p.seg_len <= 30,
            "seg_len must fit 2-bit encoding"
        );
        assert!(p.gene_len > p.seg_len);
        Genome {
            threads,
            gene_len: p.gene_len,
            seg_len: p.seg_len,
            oversample: p.oversample.max(1),
            gene: Vec::new(),
            stream: Vec::new(),
            windows: Vec::new(),
            alloc: None,
            unique: None,
            starts: None,
            links: None,
            first_window: 0,
        }
    }
}

impl Program for Genome {
    fn name(&self) -> &str {
        "genome"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        // Generate a gene whose windows (and their S-1 prefixes) are all
        // unique so reconstruction is exact; bump the seed until true.
        let mut seed = 0x67_65_6e_6f_6d_65u64;
        loop {
            let mut rng = SimRng::new(seed);
            self.gene = (0..self.gene_len).map(|_| rng.below(4) as u8).collect();
            let n = self.gene_len - self.seg_len + 1;
            self.windows = (0..n)
                .map(|p| encode(&self.gene, p, self.seg_len))
                .collect();
            let mut ws = self.windows.clone();
            ws.sort_unstable();
            ws.dedup();
            let mut ps: Vec<u64> = self.windows.iter().map(|&w| prefix(w)).collect();
            ps.sort_unstable();
            ps.dedup();
            if ws.len() == n && ps.len() == n {
                break;
            }
            seed = seed.wrapping_add(1);
        }
        self.first_window = self.windows[0];
        // Segment stream: every window once (guaranteed coverage) plus
        // random duplicates, shuffled; padded to a multiple of threads.
        let mut rng = SimRng::new(seed ^ 0x5eed);
        let mut stream = self.windows.clone();
        for _ in 0..(self.windows.len() * (self.oversample - 1)) {
            stream.push(self.windows[rng.below(self.windows.len() as u64) as usize]);
        }
        rng.shuffle(&mut stream);
        while !stream.len().is_multiple_of(self.threads) {
            stream.push(self.windows[rng.below(self.windows.len() as u64) as usize]);
        }
        self.stream = stream;

        let per_thread_heap = 64 * 1024;
        self.alloc = Some(TmAlloc::setup(s, self.threads, per_thread_heap));
        let buckets = (self.windows.len() * 2).next_power_of_two() as u64;
        self.unique = Some(HashTable::setup(s, buckets));
        self.starts = Some(HashTable::setup(s, buckets));
        self.links = Some(HashTable::setup(s, buckets));
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let alloc = self.alloc.unwrap();
        let unique = self.unique.unwrap();
        let starts = self.starts.unwrap();
        let links = self.links.unwrap();
        let per = self.stream.len() / self.threads;
        let lo = ctx.tid * per;
        let hi = lo + per;

        // Phase 1: deduplicate segments into the shared hash set.
        for &seg in &self.stream[lo..hi] {
            ctx.critical(|tx| {
                unique.insert(tx, &alloc, seg, 1)?;
                Ok(())
            });
            ctx.compute(20); // segment I/O & encode in the original
        }
        ctx.barrier();

        // Phase 2a: index each unique window by its prefix. Partition the
        // canonical window list among threads (as the original partitions
        // the unique-segment table).
        let n = self.windows.len();
        let per_w = n.div_ceil(self.threads);
        let wlo = (ctx.tid * per_w).min(n);
        let whi = ((ctx.tid + 1) * per_w).min(n);
        for &w in &self.windows[wlo..whi] {
            ctx.critical(|tx| {
                debug_assert!(unique.contains(tx, w)?, "window lost in phase 1");
                starts.insert(tx, &alloc, prefix(w), w)?;
                Ok(())
            });
        }
        ctx.barrier();

        // Phase 2b: link each window to its successor (the window whose
        // prefix equals our suffix).
        let seg_len = self.seg_len;
        for &w in &self.windows[wlo..whi] {
            ctx.critical(|tx| {
                if let Some(next) = starts.find(tx, suffix(w, seg_len))? {
                    links.insert(tx, &alloc, w, next)?;
                }
                Ok(())
            });
            ctx.compute(10);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // Follow links from the first window; must walk every window in
        // gene order.
        let links = self.links.unwrap();
        let snap: std::collections::HashMap<u64, u64> = links.snapshot(mem).into_iter().collect();
        let mut cur = self.first_window;
        for (i, &want) in self.windows.iter().enumerate() {
            if cur != want {
                return Err(format!("chain diverged at window {i}"));
            }
            if i + 1 < self.windows.len() {
                cur = *snap
                    .get(&cur)
                    .ok_or_else(|| format!("missing link at window {i}"))?;
            }
        }
        // The last window must have no link.
        if snap.contains_key(self.windows.last().unwrap()) {
            return Err("unexpected link after the last window".into());
        }
        let unique = self.unique.unwrap();
        let got = unique.snapshot(mem).len();
        if got != self.windows.len() {
            return Err(format!(
                "dedup produced {got} segments, expected {}",
                self.windows.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;

    #[test]
    fn window_encoding_shifts() {
        let gene = vec![0u8, 1, 2, 3, 0, 1];
        let w0 = encode(&gene, 0, 4);
        let w1 = encode(&gene, 1, 4);
        // suffix(w0) covers bases 1..=3, as does prefix(w1) (w1 = bases
        // 1..=4 with the last dropped); both carry the leading length tag.
        assert_eq!(suffix(w0, 4), prefix(w1), "suffix/prefix mismatch");
        assert_eq!(suffix(w0, 4), encode(&gene, 1, 3));
    }

    #[test]
    fn genome_reconstructs_on_all_core_systems() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerTm,
        ] {
            let mut w = Genome::new(Scale::Tiny, 2);
            let _ = Runner::new(kind)
                .threads(2)
                .config(SystemConfig::testing(2))
                .run(&mut w);
        }
    }
}
