//! VM-native STAMP ports: programs whose thread bodies are `guestvm`
//! kernels, runnable on **either** execution backend from one bytecode
//! image — [`lockiller::Backend::Threads`] interprets the kernel against
//! a `GuestCtx` ([`guestvm::run_on_ctx`]), [`lockiller::Backend::Vm`]
//! steps it as an in-process resumable state machine. Both paths issue
//! the same `GuestOp` stream, so results are bit-identical by
//! construction *and* asserted by the differential harness.
//!
//! [`IntruderFlow`] here is the flow-reassembly skeleton of STAMP
//! `intruder` (the full port in [`crate::intruder`] leans on host-side
//! `tmlib` containers that have no bytecode equivalent): threads pop
//! fragments off a shared work queue, accumulate them into per-flow
//! entries, and run a detection pass over each completed flow — the same
//! three-transaction pipeline, contention profile (every pop hits one
//! queue-head line), and data-dependent detection cost as the original.

use crate::Scale;
use guestvm::{BinOp, Cond, Kernel, KernelBuilder};
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::{GuestEnv, GuestExec};
use sim_core::rng::SimRng;
use sim_core::types::Addr;
use std::sync::Arc;

/// Fragment encoding: `flow << 40 | seq << 32 | payload` (payload is 32
/// bits, the sequence number 8 — enough for [`IntruderFlowParams`]).
const PAYLOAD_BITS: u64 = 32;
const SEQ_BITS: u64 = 8;

/// Words per per-flow reassembly entry (power of two so the kernel can
/// index with a shift): got-count, needed-count, payload accumulator.
const ENTRY_STRIDE: u64 = 4;
const E_GOT: u64 = 0;
const E_NEED: u64 = 1;
const E_ACC: u64 = 2;

/// Input parameters (mirrors [`crate::intruder::IntruderParams`]).
#[derive(Clone, Copy, Debug)]
pub struct IntruderFlowParams {
    pub flows_per_thread: usize,
    pub max_frags: usize,
}

impl IntruderFlowParams {
    pub fn for_scale(scale: Scale) -> IntruderFlowParams {
        let (flows_per_thread, max_frags) = match scale {
            Scale::Tiny => (4, 3),
            Scale::Small => (10, 4),
            Scale::Full => (24, 4),
        };
        IntruderFlowParams {
            flows_per_thread,
            max_frags,
        }
    }
}

/// Flow reassembly + detection over a shared fragment queue, compiled
/// once to a [`Kernel`] every simulated thread runs.
pub struct IntruderFlow {
    threads: usize,
    params: IntruderFlowParams,
    /// Expected per-flow payload sum (the detection "verdict").
    expected: Vec<u64>,
    need: Vec<u64>,
    nfrags: u64,
    head: Addr,
    frags: Addr,
    entries: Addr,
    verdicts: Addr,
    kernel: Option<Arc<Kernel>>,
}

impl IntruderFlow {
    pub fn new(scale: Scale, threads: usize) -> IntruderFlow {
        IntruderFlow::with_params(IntruderFlowParams::for_scale(scale), threads)
    }

    pub fn with_params(p: IntruderFlowParams, threads: usize) -> IntruderFlow {
        assert!(p.flows_per_thread >= 1);
        assert!(
            (2..(1 << SEQ_BITS)).contains(&p.max_frags),
            "max_frags {} out of range",
            p.max_frags
        );
        IntruderFlow {
            threads,
            params: p,
            expected: Vec::new(),
            need: Vec::new(),
            nfrags: 0,
            head: Addr::NULL,
            frags: Addr::NULL,
            entries: Addr::NULL,
            verdicts: Addr::NULL,
            kernel: None,
        }
    }

    fn flows(&self) -> usize {
        self.params.flows_per_thread * self.threads
    }

    /// Compile the per-thread kernels under the standard
    /// [`lockiller::Runner`] memory layout without running a simulation:
    /// the runner allocates the fallback lock's 8-word block first, then
    /// this program's [`Program::setup`] places the queue head, fragment
    /// array, reassembly entries, and verdicts. Every thread runs the
    /// same shared body, so the vector holds `threads` copies of one
    /// kernel image — static analyses (`tmstatic::vmabs`) dedupe them by
    /// [`Kernel::content_hash`]. Consumes the program; the runner path
    /// compiles through [`Program::setup`] instead.
    pub fn compile_standalone(mut self) -> Vec<Kernel> {
        let mut s = SetupCtx::new();
        let _lock = s.alloc(8);
        let threads = self.threads;
        self.setup(&mut s, threads);
        let k = self.kernel.expect("setup populates the kernel");
        (0..threads).map(|_| (*k).clone()).collect()
    }

    /// The shared thread body. One loop iteration = the original's
    /// packet step: TX1 pops a fragment off the queue, TX2 folds it into
    /// the flow's entry, and — when the flow completes — a
    /// payload-dependent detection compute and TX3 publishing the
    /// verdict. All registers holding base addresses are set before the
    /// first `CritBegin`, so abort rollback (which restores the
    /// `CritBegin` snapshot) cannot lose them.
    fn compile(&self) -> Kernel {
        const R_ZERO: u8 = 0;
        const R_HEAD: u8 = 1;
        const R_NFRAGS: u8 = 2;
        const R_FRAGS: u8 = 3;
        const R_ENTRIES: u8 = 4;
        const R_VERD: u8 = 5;
        const R_IDX: u8 = 6;
        const R_IDX1: u8 = 7;
        const R_FA: u8 = 8;
        const R_FRAG: u8 = 9;
        const R_FLAG: u8 = 10;
        const R_FLOW: u8 = 11;
        const R_PAY: u8 = 12;
        const R_EA: u8 = 13;
        const R_GOT: u8 = 14;
        const R_ACC: u8 = 15;
        const R_NEED: u8 = 16;
        const R_TMP: u8 = 17;

        let mut b = KernelBuilder::new("intruder-flow", 18);
        b.imm(R_ZERO, 0)
            .imm(R_HEAD, self.head.0)
            .imm(R_NFRAGS, self.nfrags)
            .imm(R_FRAGS, self.frags.0)
            .imm(R_ENTRIES, self.entries.0)
            .imm(R_VERD, self.verdicts.0);
        let l_loop = b.label();
        let l_done = b.label();
        b.bind(l_loop);
        // TX1: pop. The empty-queue path still commits (reading the head
        // is enough to decide), flagging the exit via a register.
        b.crit_begin();
        b.load(R_IDX, R_HEAD, 0);
        b.imm(R_FLAG, 0);
        let l_join = b.label();
        b.br(Cond::Ge, R_IDX, R_NFRAGS, l_join);
        b.bini(BinOp::Add, R_IDX1, R_IDX, 1);
        b.store(R_HEAD, 0, R_IDX1);
        b.bin(BinOp::Add, R_FA, R_FRAGS, R_IDX);
        b.load(R_FRAG, R_FA, 0);
        b.imm(R_FLAG, 1);
        b.bind(l_join);
        b.crit_end();
        b.br(Cond::Eq, R_FLAG, R_ZERO, l_done);
        // Decode (pure, zero simulated time — like host arithmetic
        // between two GuestCtx calls).
        b.bini(BinOp::Shr, R_FLOW, R_FRAG, PAYLOAD_BITS + SEQ_BITS);
        b.bini(BinOp::And, R_PAY, R_FRAG, (1 << PAYLOAD_BITS) - 1);
        b.bini(
            BinOp::Shl,
            R_EA,
            R_FLOW,
            ENTRY_STRIDE.trailing_zeros() as u64,
        );
        b.bin(BinOp::Add, R_EA, R_EA, R_ENTRIES);
        // TX2: fold the fragment into its flow entry.
        b.crit_begin();
        b.load(R_GOT, R_EA, E_GOT);
        b.bini(BinOp::Add, R_GOT, R_GOT, 1);
        b.store(R_EA, E_GOT, R_GOT);
        b.load(R_ACC, R_EA, E_ACC);
        b.bin(BinOp::Add, R_ACC, R_ACC, R_PAY);
        b.store(R_EA, E_ACC, R_ACC);
        b.load(R_NEED, R_EA, E_NEED);
        b.crit_end();
        b.br(Cond::Ne, R_GOT, R_NEED, l_loop);
        // Detection: cost depends on the reassembled payload, as in the
        // original's signature scan.
        b.bini(BinOp::Rem, R_TMP, R_ACC, 64);
        b.bini(BinOp::Add, R_TMP, R_TMP, 60);
        b.compute_r(R_TMP);
        // TX3: publish the verdict.
        b.bin(BinOp::Add, R_TMP, R_VERD, R_FLOW);
        b.crit_begin();
        b.store(R_TMP, 0, R_ACC);
        b.crit_end();
        b.jmp(l_loop);
        b.bind(l_done);
        b.halt();
        b.build()
    }
}

impl Program for IntruderFlow {
    fn name(&self) -> &str {
        "intruder-flow"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        let mut rng = SimRng::new(0x666c_6f77_7673);
        let flows = self.flows();
        self.need = (0..flows)
            .map(|_| rng.range(2, self.params.max_frags as u64 + 1))
            .collect();
        self.expected = vec![0; flows];
        let mut frags: Vec<u64> = Vec::new();
        for (f, &need) in self.need.iter().enumerate() {
            for seq in 0..need {
                let payload = rng.range(1, 1 << PAYLOAD_BITS);
                self.expected[f] += payload;
                frags.push(
                    ((f as u64) << (PAYLOAD_BITS + SEQ_BITS)) | (seq << PAYLOAD_BITS) | payload,
                );
            }
        }
        // Deterministic shuffle: fragments of different flows interleave
        // on the queue, as the original's packet stream does.
        for i in (1..frags.len()).rev() {
            let j = rng.range(0, i as u64 + 1) as usize;
            frags.swap(i, j);
        }
        self.nfrags = frags.len() as u64;

        self.head = s.alloc(8); // own line: every pop hits it
        s.write(self.head, 0);
        self.frags = s.alloc(self.nfrags);
        for (i, &w) in frags.iter().enumerate() {
            s.write(self.frags.add(i as u64), w);
        }
        self.entries = s.alloc(flows as u64 * ENTRY_STRIDE);
        for (f, &need) in self.need.iter().enumerate() {
            let e = self.entries.add(f as u64 * ENTRY_STRIDE);
            s.write(e.add(E_GOT), 0);
            s.write(e.add(E_NEED), need);
            s.write(e.add(E_ACC), 0);
        }
        self.verdicts = s.alloc(flows as u64);
        for f in 0..flows {
            s.write(self.verdicts.add(f as u64), 0);
        }
        self.kernel = Some(Arc::new(self.compile()));
    }

    fn run(&self, ctx: &mut GuestCtx) {
        guestvm::run_on_ctx(self.kernel.as_ref().expect("setup first"), ctx);
    }

    fn guest_exec(&self, env: GuestEnv) -> Option<Box<dyn GuestExec + '_>> {
        Some(guestvm::GuestVm::boxed(
            self.kernel.clone().expect("setup first"),
            &env,
        ))
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got_head = mem.read(self.head);
        if got_head != self.nfrags {
            return Err(format!(
                "queue head {got_head}, expected {} (fragments lost or double-popped)",
                self.nfrags
            ));
        }
        for f in 0..self.flows() {
            let e = self.entries.add(f as u64 * ENTRY_STRIDE);
            let got = mem.read(e.add(E_GOT));
            if got != self.need[f] {
                return Err(format!(
                    "flow {f}: reassembled {got} fragments, expected {}",
                    self.need[f]
                ));
            }
            let verdict = mem.read(self.verdicts.add(f as u64));
            if verdict != self.expected[f] {
                return Err(format!(
                    "flow {f}: verdict {verdict}, expected {}",
                    self.expected[f]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use lockiller::Backend;
    use sim_core::config::SystemConfig;

    #[test]
    fn intruder_flow_correct_on_both_backends() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerTm,
        ] {
            for backend in [Backend::Threads, Backend::Vm] {
                let mut w = IntruderFlow::new(Scale::Tiny, 2);
                let stats = Runner::new(kind)
                    .threads(2)
                    .config(SystemConfig::testing(2))
                    .backend(backend)
                    .run(&mut w)
                    .stats;
                assert!(stats.cycles > 0);
            }
        }
    }

    #[test]
    fn backends_bit_identical_on_intruder_flow() {
        let run = |backend| {
            let mut w = IntruderFlow::new(Scale::Tiny, 3);
            Runner::new(SystemKind::LockillerRwi)
                .threads(3)
                .config(SystemConfig::testing(3))
                .tracing()
                .backend(backend)
                .run(&mut w)
        };
        let a = run(Backend::Threads);
        let b = run(Backend::Vm);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mem.digest(), b.mem.digest());
        assert_eq!(a.trace_events(), b.trace_events());
    }

    #[test]
    fn kmeans_guest_exec_bit_identical_to_thread_body() {
        // The compiled kernel must mirror the hand-written Kmeans::run
        // op-for-op: identical stats, trace, and memory image.
        let run = |backend| {
            let mut w = crate::kmeans::Kmeans::new(Scale::Tiny, 2, true);
            Runner::new(SystemKind::LockillerTm)
                .threads(2)
                .config(SystemConfig::testing(2))
                .tracing()
                .backend(backend)
                .run(&mut w)
        };
        let a = run(Backend::Threads);
        let b = run(Backend::Vm);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mem.digest(), b.mem.digest());
        assert_eq!(a.trace_events(), b.trace_events());
    }
}
