//! labyrinth — Lee's algorithm maze router (STAMP `labyrinth`).
//!
//! Threads pop routing requests `(src, dst)` from a shared work queue and
//! route them through a shared grid inside one large transaction: a BFS
//! wavefront expansion *reads* every visited cell (building the huge read
//! set the original is famous for), then the backtracked path *writes*
//! its cells. Per-attempt BFS bookkeeping is allocated from the
//! transactional heap, so fresh pages fault inside the transaction — the
//! combination of capacity overflow and faults that makes labyrinth live
//! on the fallback path in best-effort HTM.
//!
//! Validation re-walks every claimed path: it must be connected, endpoint
//! to endpoint, and cells must be claimed by exactly one route.

use crate::Scale;
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::{Abort, GuestCtx, TxCtx};
use lockiller::program::Program;
use sim_core::rng::SimRng;
use sim_core::types::Addr;
use tmlib::{Queue, TmAlloc};

/// Input parameters (STAMP's maze dimensions / path count).
#[derive(Clone, Copy, Debug)]
pub struct LabyrinthParams {
    /// Square grid dimension (STAMP `-x`/`-y`).
    pub dim: u64,
    pub requests_per_thread: usize,
}

impl LabyrinthParams {
    pub fn for_scale(scale: Scale) -> LabyrinthParams {
        let (dim, requests_per_thread) = match scale {
            Scale::Tiny => (8, 2),
            Scale::Small => (12, 3),
            Scale::Full => (40, 4),
        };
        LabyrinthParams {
            dim,
            requests_per_thread,
        }
    }
}

pub struct Labyrinth {
    threads: usize,
    width: u64,
    height: u64,
    requests: Vec<(u64, u64)>, // (src_cell, dst_cell)
    grid: Addr,
    queue: Option<Queue>,
    alloc: Option<TmAlloc>,
    /// Outcome per request: 0 = failed, 1 = routed.
    results: Addr,
    /// Per-thread BFS parent buffers (the original's thread-local grid
    /// copy, re-zeroed every attempt: a large transactional write set).
    parent_bufs: Addr,
}

impl Labyrinth {
    pub fn new(scale: Scale, threads: usize) -> Labyrinth {
        // Full scale is 40x40: grid reads + parent writes total ~400
        // lines, enough to overflow sets of the 32KB 4-way L1 (the
        // paper's labyrinth capacity-abort behaviour).
        Labyrinth::with_params(LabyrinthParams::for_scale(scale), threads)
    }

    pub fn with_params(p: LabyrinthParams, threads: usize) -> Labyrinth {
        assert!(p.dim >= 4);
        // Every request needs two distinct endpoint cells; grow the grid
        // so large thread counts still fit (endpoints ~ 1/4 of cells).
        let total = (p.requests_per_thread * threads) as u64;
        let mut dim = p.dim;
        while dim * dim < total * 4 {
            dim += 4;
        }
        Labyrinth {
            threads,
            width: dim,
            height: dim,
            requests: Vec::with_capacity(p.requests_per_thread * threads),
            grid: Addr::NULL,
            queue: None,
            alloc: None,
            results: Addr::NULL,
            parent_bufs: Addr::NULL,
        }
    }

    fn cell_addr(&self, c: u64) -> Addr {
        self.grid.add(c)
    }

    fn neighbors(&self, c: u64) -> Vec<u64> {
        let (x, y) = (c % self.width, c / self.width);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(c - 1);
        }
        if x + 1 < self.width {
            out.push(c + 1);
        }
        if y > 0 {
            out.push(c - self.width);
        }
        if y + 1 < self.height {
            out.push(c + self.width);
        }
        out
    }

    /// One routing attempt inside a transaction: BFS over free cells from
    /// src to dst, then claim the path by writing `mark` into its cells.
    fn route(
        &self,
        tx: &mut TxCtx,
        alloc: &TmAlloc,
        src: u64,
        dst: u64,
        mark: u64,
    ) -> Result<bool, Abort> {
        let cells = self.width * self.height;
        // The endpoints themselves must still be free.
        if tx.load(self.cell_addr(src))? != 0 || tx.load(self.cell_addr(dst))? != 0 {
            return Ok(false);
        }
        // Per-thread BFS bookkeeping (parent + 1; 0 = unvisited), re-zeroed
        // every attempt like the original's local grid copy: a large
        // transactional write set that drives capacity aborts.
        let parent = self
            .parent_bufs
            .add(tx.tid() as u64 * cells.next_multiple_of(8));
        for c in 0..cells {
            tx.store(parent.add(c), 0)?;
        }
        // The claimed path is recorded in a freshly allocated list, as the
        // original mallocs its path vector (occasional paging faults).
        let path_buf = alloc.alloc(tx, (self.width + self.height) * 2)?;
        let _ = path_buf;
        let mut frontier = vec![src];
        tx.store(parent.add(src), src + 1)?;
        let mut found = false;
        'bfs: while !frontier.is_empty() {
            let mut next = Vec::new();
            for &c in &frontier {
                for n in self.neighbors(c) {
                    if tx.load(parent.add(n))? != 0 {
                        continue;
                    }
                    // Occupied cells block the route — including the
                    // destination: claiming an occupied dst would sever
                    // the path that runs through it.
                    let v = tx.load(self.cell_addr(n))?;
                    if v != 0 {
                        continue;
                    }
                    tx.store(parent.add(n), c + 1)?;
                    if n == dst {
                        found = true;
                        break 'bfs;
                    }
                    next.push(n);
                }
                tx.compute(4)?;
            }
            frontier = next;
        }
        if !found {
            return Ok(false);
        }
        // Backtrack and claim.
        let mut c = dst;
        loop {
            tx.store(self.cell_addr(c), mark)?;
            if c == src {
                break;
            }
            c = tx.load(parent.add(c))? - 1;
        }
        Ok(true)
    }
}

impl Program for Labyrinth {
    fn name(&self) -> &str {
        "labyrinth"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        let mut rng = SimRng::new(0x6c61_6279);
        let cells = self.width * self.height;
        self.grid = s.alloc(cells);
        for c in 0..cells {
            s.write(self.grid.add(c), 0);
        }
        // Distinct src/dst pairs with distinct endpoints across requests,
        // so every request is routable in an empty grid.
        let total = self.requests.capacity();
        let mut endpoints: Vec<u64> = (0..cells).collect();
        rng.shuffle(&mut endpoints);
        assert!(
            total * 2 <= cells as usize,
            "grid too small for request count"
        );
        self.requests = (0..total)
            .map(|i| (endpoints[2 * i], endpoints[2 * i + 1]))
            .collect();

        let q = Queue::setup(s);
        for (i, _) in self.requests.iter().enumerate() {
            q.setup_push(s, i as u64);
        }
        self.queue = Some(q);
        self.alloc = Some(TmAlloc::setup(s, threads, 256 * 1024));
        let cells = self.width * self.height;
        self.parent_bufs = s.alloc(threads as u64 * cells.next_multiple_of(8));
        self.results = s.alloc(total as u64);
        for i in 0..total as u64 {
            s.write(self.results.add(i), 0);
        }
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let alloc = self.alloc.unwrap();
        let queue = self.queue.unwrap();
        loop {
            let req = ctx.critical(|tx| queue.pop(tx));
            let Some(req) = req else { break };
            let (src, dst) = self.requests[req as usize];
            let mark = req + 2; // 0 = free, 1 = reserved, 2+ = route id + 2
            let routed = ctx.critical(|tx| self.route(tx, &alloc, src, dst, mark));
            let cell = self.results.add(req);
            ctx.critical(|tx| {
                tx.store(cell, if routed { 1 } else { 0 })?;
                Ok(())
            });
            ctx.compute(50);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let cells = self.width * self.height;
        let mut routed_any = false;
        for (i, &(src, dst)) in self.requests.iter().enumerate() {
            let ok = mem.read(self.results.add(i as u64)) == 1;
            if !ok {
                continue;
            }
            routed_any = true;
            let mark = i as u64 + 2;
            // Path connectivity: BFS over cells carrying our mark.
            let marked: Vec<bool> = (0..cells)
                .map(|c| mem.read(self.grid.add(c)) == mark)
                .collect();
            if !marked[src as usize] || !marked[dst as usize] {
                return Err(format!("request {i}: endpoints not claimed"));
            }
            let mut seen = vec![false; cells as usize];
            let mut stack = vec![src];
            seen[src as usize] = true;
            while let Some(c) = stack.pop() {
                for n in self.neighbors(c) {
                    if marked[n as usize] && !seen[n as usize] {
                        seen[n as usize] = true;
                        stack.push(n);
                    }
                }
            }
            if !seen[dst as usize] {
                return Err(format!("request {i}: path disconnected"));
            }
        }
        // Every claimed cell belongs to a successfully routed request.
        for c in 0..cells {
            let v = mem.read(self.grid.add(c));
            if v >= 2 {
                let req = (v - 2) as usize;
                if req >= self.requests.len() || mem.read(self.results.add(req as u64)) != 1 {
                    return Err(format!("cell {c} claimed by non-routed request"));
                }
            }
        }
        if !routed_any {
            return Err("no request routed at all".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;
    use sim_core::stats::AbortCause;

    #[test]
    fn labyrinth_routes_on_cgl_and_htm() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerTm,
        ] {
            let mut w = Labyrinth::new(Scale::Tiny, 2);
            let _ = Runner::new(kind)
                .threads(2)
                .config(SystemConfig::testing(2))
                .run(&mut w);
        }
    }

    #[test]
    fn labyrinth_overflows_small_l1() {
        // With a tiny L1 the BFS read set cannot fit: baseline must see
        // capacity (of) or fault aborts and lean on the fallback path.
        let mut cfg = SystemConfig::testing(2);
        cfg.mem.l1 = sim_core::config::CacheGeometry { sets: 4, ways: 2 };
        let mut w = Labyrinth::new(Scale::Small, 2);
        let stats = Runner::new(SystemKind::Baseline)
            .threads(2)
            .config(cfg)
            .run(&mut w)
            .stats;
        assert!(
            stats.abort_count(AbortCause::Of) + stats.abort_count(AbortCause::Fault) > 0,
            "big routing txs must overflow a 8-line L1"
        );
        assert!(stats.fallbacks > 0);
    }
}
