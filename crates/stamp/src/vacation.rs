//! vacation — travel reservation system (STAMP `vacation`).
//!
//! A database of three relations (cars, rooms, flights) stored in
//! transactional ordered maps plus a customer table of reservation lists.
//! Client threads execute a task mix: make-reservation (lookup several
//! records per relation, reserve the cheapest available), delete-customer
//! (release everything the customer holds), and update-tables (change
//! prices / add capacity).
//!
//! `vacation+` (high contention) queries a narrower id range with more
//! queries per task, so transactions overlap; `vacation` (low) spreads
//! them out. Validation checks resource conservation: for every record,
//! `total == free + held-by-customers`, and price within bounds.

use crate::Scale;
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use sim_core::rng::SimRng;
use sim_core::types::Addr;
use tmlib::{List, TMap, TmAlloc};

/// Record layout in simulated memory: [total, free, price].
const R_TOTAL: u64 = 0;
const R_FREE: u64 = 1;
const R_PRICE: u64 = 2;
const RECORD_WORDS: u64 = 3;

const NRELATIONS: usize = 3;

/// Input parameters (STAMP's `-n -q -u -r -t` knobs, reduced).
#[derive(Clone, Copy, Debug)]
pub struct VacationParams {
    /// Rows per relation (STAMP `-r`).
    pub relation_size: usize,
    /// Client tasks per thread (STAMP `-t` / threads).
    pub tasks_per_thread: usize,
    /// Records examined per relation per reservation (STAMP `-n`).
    pub queries_per_task: usize,
    /// Percent of the id range tasks touch (STAMP `-q`).
    pub range_pct: u64,
}

impl VacationParams {
    pub fn for_scale(scale: Scale, high: bool) -> VacationParams {
        let (relation_size, tasks_per_thread) = match scale {
            Scale::Tiny => (16, 6),
            Scale::Small => (32, 16),
            Scale::Full => (64, 40),
        };
        let (queries_per_task, range_pct) = if high { (4, 10) } else { (2, 90) };
        VacationParams {
            relation_size,
            tasks_per_thread,
            queries_per_task,
            range_pct,
        }
    }
}

pub struct Vacation {
    threads: usize,
    high: bool,
    relation_size: usize,
    tasks_per_thread: usize,
    queries_per_task: usize,
    /// Fraction (0..100) of the id range tasks touch (STAMP's -q).
    range_pct: u64,
    customers: usize,
    relations: [Option<TMap>; NRELATIONS],
    /// customer id -> reservation list; reservation node value encodes
    /// (relation, record id).
    cust_lists: Vec<Option<List>>,
    alloc: Option<TmAlloc>,
    records_base: Addr,
}

fn res_code(rel: usize, id: u64) -> u64 {
    (rel as u64) << 32 | id
}

fn res_decode(code: u64) -> (usize, u64) {
    ((code >> 32) as usize, code & 0xffff_ffff)
}

impl Vacation {
    pub fn new(scale: Scale, threads: usize, high: bool) -> Vacation {
        // STAMP: low -n2 -q90 -u98; high -n4 -q10/-q60 -u90. The narrow
        // range is what drives contention up.
        Vacation::with_params(VacationParams::for_scale(scale, high), threads, high)
    }

    pub fn with_params(p: VacationParams, threads: usize, high: bool) -> Vacation {
        assert!(p.relation_size >= 2);
        Vacation {
            threads,
            high,
            relation_size: p.relation_size,
            tasks_per_thread: p.tasks_per_thread,
            queries_per_task: p.queries_per_task,
            range_pct: p.range_pct,
            customers: p.relation_size,
            relations: [None; NRELATIONS],
            cust_lists: Vec::new(),
            alloc: None,
            records_base: Addr::NULL,
        }
    }

    fn record_addr(&self, rel: usize, id: u64) -> Addr {
        self.records_base
            .add(((rel * self.relation_size) as u64 + id) * RECORD_WORDS.next_multiple_of(8))
    }
}

impl Program for Vacation {
    fn name(&self) -> &str {
        if self.high {
            "vacation+"
        } else {
            "vacation"
        }
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        let mut rng = SimRng::new(0x7661_6361_7469_6f6e);
        self.alloc = Some(TmAlloc::setup(s, threads, 128 * 1024));
        let stride = RECORD_WORDS.next_multiple_of(8);
        self.records_base = s.alloc((NRELATIONS * self.relation_size) as u64 * stride);
        for rel in 0..NRELATIONS {
            let map = TMap::setup(s);
            for id in 0..self.relation_size as u64 {
                let rec = self.record_addr(rel, id);
                let total = 2 + rng.below(6);
                s.write(rec.add(R_TOTAL), total);
                s.write(rec.add(R_FREE), total);
                s.write(rec.add(R_PRICE), 100 + rng.below(400));
                map.setup_insert(s, id, rec.0);
            }
            self.relations[rel] = Some(map);
        }
        self.cust_lists = (0..self.customers)
            .map(|_| {
                let l = List::setup(s);
                Some(l)
            })
            .collect();
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let alloc = self.alloc.unwrap();
        let range = ((self.relation_size as u64 * self.range_pct) / 100).max(2);
        for _task in 0..self.tasks_per_thread {
            let roll = ctx.rng.below(100);
            if roll < 80 {
                // Make reservation: per relation, query q random records,
                // reserve the cheapest with free capacity.
                let customer = ctx.rng.below(self.customers as u64) as usize;
                let mut ids: Vec<Vec<u64>> = Vec::with_capacity(NRELATIONS);
                for _ in 0..NRELATIONS {
                    ids.push(
                        (0..self.queries_per_task)
                            .map(|_| ctx.rng.below(range))
                            .collect(),
                    );
                }
                let relations = &self.relations;
                let clist = self.cust_lists[customer].unwrap();
                let next_res_key = ctx.rng.next_u64() | 1; // unique list key
                ctx.critical(|tx| {
                    for (rel, rel_ids) in ids.iter().enumerate() {
                        let map = relations[rel].unwrap();
                        let mut best: Option<(u64, Addr)> = None;
                        let mut best_price = u64::MAX;
                        for &id in rel_ids {
                            if let Some(rec) = map.find(tx, id)? {
                                let rec = Addr(rec);
                                let free = tx.load(rec.add(R_FREE))?;
                                let price = tx.load(rec.add(R_PRICE))?;
                                if free > 0 && price < best_price {
                                    best_price = price;
                                    best = Some((id, rec));
                                }
                            }
                            tx.compute(6)?;
                        }
                        if let Some((id, rec)) = best {
                            let free = tx.load(rec.add(R_FREE))?;
                            tx.store(rec.add(R_FREE), free - 1)?;
                            clist.insert(
                                tx,
                                &alloc,
                                next_res_key.wrapping_add(rel as u64),
                                res_code(rel, id),
                            )?;
                        }
                    }
                    Ok(())
                });
            } else if roll < 90 {
                // Delete customer: release all reservations.
                let customer = ctx.rng.below(self.customers as u64) as usize;
                let clist = self.cust_lists[customer].unwrap();
                ctx.critical(|tx| {
                    let held = clist.to_vec(tx)?;
                    for (key, code) in held {
                        let (_rel, id) = res_decode(code);
                        let _ = id;
                        let rec = {
                            let (rel, id) = res_decode(code);
                            let map = self.relations[rel].unwrap();
                            map.find(tx, id)?
                        };
                        if let Some(rec) = rec {
                            let rec = Addr(rec);
                            let free = tx.load(rec.add(R_FREE))?;
                            tx.store(rec.add(R_FREE), free + 1)?;
                        }
                        clist.remove(tx, key)?;
                    }
                    Ok(())
                });
            } else {
                // Update tables: re-price random records.
                let rel = ctx.rng.below(NRELATIONS as u64) as usize;
                let id = ctx.rng.below(range);
                let new_price = 100 + ctx.rng.below(400);
                let map = self.relations[rel].unwrap();
                ctx.critical(|tx| {
                    if let Some(rec) = map.find(tx, id)? {
                        tx.store(Addr(rec).add(R_PRICE), new_price)?;
                    }
                    Ok(())
                });
            }
            ctx.compute(40);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // Conservation: every record's holds (across customer lists) plus
        // free must equal total.
        let mut held = vec![vec![0u64; self.relation_size]; NRELATIONS];
        for clist in self.cust_lists.iter().flatten() {
            // Untimed walk via list snapshot: reuse List layout through a
            // throwaway TxCtx-free reader.
            let mut cur = mem.read(list_head(clist));
            while cur != 0 {
                let code = mem.read(Addr(cur).add(1));
                let (rel, id) = res_decode(code);
                held[rel][id as usize] += 1;
                cur = mem.read(Addr(cur).add(2));
            }
        }
        for (rel, held_rel) in held.iter().enumerate() {
            for id in 0..self.relation_size as u64 {
                let rec = self.record_addr(rel, id);
                let total = mem.read(rec.add(R_TOTAL));
                let free = mem.read(rec.add(R_FREE));
                let h = held_rel[id as usize];
                if free + h != total {
                    return Err(format!(
                        "relation {rel} record {id}: total {total} != free {free} + held {h}"
                    ));
                }
                let price = mem.read(rec.add(R_PRICE));
                if !(100..500).contains(&price) {
                    return Err(format!("relation {rel} record {id}: price {price} torn"));
                }
            }
        }
        Ok(())
    }
}

/// The list header address (List is a transparent handle over it).
fn list_head(l: &List) -> Addr {
    // List's layout: the handle stores the head cell address; expose it
    // via its Debug representation being stable is fragile, so tmlib
    // provides `head_addr` instead.
    l.head_addr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;

    #[test]
    fn reservation_codes_roundtrip() {
        for rel in 0..3 {
            for id in [0u64, 5, 1000] {
                assert_eq!(res_decode(res_code(rel, id)), (rel, id));
            }
        }
    }

    #[test]
    fn vacation_conserves_resources() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerTm,
        ] {
            let mut w = Vacation::new(Scale::Tiny, 2, true);
            let _ = Runner::new(kind)
                .threads(2)
                .config(SystemConfig::testing(2))
                .run(&mut w);
        }
    }

    #[test]
    fn vacation_low_vs_high_contention() {
        let run = |high| {
            let mut w = Vacation::new(Scale::Small, 4, high);
            Runner::new(SystemKind::Baseline)
                .threads(4)
                .config(SystemConfig::testing(4))
                .run(&mut w)
                .into_stats()
        };
        let hi = run(true);
        let lo = run(false);
        assert!(
            hi.commit_rate() <= lo.commit_rate() + 0.05,
            "vacation+ should not commit more easily than vacation ({:.3} vs {:.3})",
            hi.commit_rate(),
            lo.commit_rate()
        );
    }
}
