//! intruder — signature-based network intrusion detection (STAMP
//! `intruder`).
//!
//! Pre-fragmented flows are shuffled into a shared packet queue. Each
//! thread loops: (tx 1) pop a fragment; (tx 2) insert it into the shared
//! reassembly map keyed by flow id, and if the flow is now complete,
//! remove it and hand it to detection (pure compute); (tx 3) record the
//! verdict. Short transactions on hot shared structures (queue head,
//! map) make this the suite's canonical high-contention workload.

use crate::Scale;
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use sim_core::rng::SimRng;
use sim_core::types::Addr;
use tmlib::{Queue, TMap, TmAlloc};

/// Reassembly entry layout: [received_count, needed, payload_acc].
const E_GOT: u64 = 0;
const E_NEED: u64 = 1;
const E_ACC: u64 = 2;
const ENTRY_WORDS: u64 = 3;

/// Input parameters (STAMP's `-a -l -n` knobs, reduced).
#[derive(Clone, Copy, Debug)]
pub struct IntruderParams {
    pub flows_per_thread: usize,
    /// Max fragments per flow (STAMP `-l`).
    pub max_frags: u64,
}

impl IntruderParams {
    pub fn for_scale(scale: Scale) -> IntruderParams {
        let (flows_per_thread, max_frags) = match scale {
            Scale::Tiny => (4, 3),
            Scale::Small => (10, 4),
            Scale::Full => (24, 4),
        };
        IntruderParams {
            flows_per_thread,
            max_frags,
        }
    }
}

pub struct Intruder {
    threads: usize,
    nflows: usize,
    max_frags: u64,
    /// (flow, frag_index, payload) encoded into queue values.
    fragments: Vec<u64>,
    frags_of: Vec<u64>,
    payload_sum: Vec<u64>,
    queue: Option<Queue>,
    map: Option<TMap>,
    alloc: Option<TmAlloc>,
    /// Detection output: one word per flow (payload checksum).
    verdicts: Addr,
}

fn enc(flow: u64, idx: u64, payload: u64) -> u64 {
    flow << 40 | idx << 32 | payload
}

fn dec(v: u64) -> (u64, u64, u64) {
    (v >> 40, (v >> 32) & 0xff, v & 0xffff_ffff)
}

impl Intruder {
    pub fn new(scale: Scale, threads: usize) -> Intruder {
        Intruder::with_params(IntruderParams::for_scale(scale), threads)
    }

    pub fn with_params(p: IntruderParams, threads: usize) -> Intruder {
        assert!(
            p.max_frags >= 1 && p.max_frags < 256,
            "fragment index is 8 bits"
        );
        Intruder {
            threads,
            nflows: p.flows_per_thread * threads,
            max_frags: p.max_frags,
            fragments: Vec::new(),
            frags_of: Vec::new(),
            payload_sum: Vec::new(),
            queue: None,
            map: None,
            alloc: None,
            verdicts: Addr::NULL,
        }
    }
}

impl Intruder {
    /// Diagnostics: dump a flow's residual state (debugging aid).
    pub fn debug_flow(&self, mem: &FlatMem, flow: u64) -> String {
        let snap = self.map.unwrap().snapshot(mem);
        let entry = snap.iter().find(|(k, _)| *k == flow);
        let verdict = mem.read(self.verdicts.add(flow));
        let need = self.frags_of[flow as usize];
        match entry {
            Some(&(_, e)) => {
                let e = Addr(e);
                format!(
                    "flow {flow}: need={need} got={} acc={} verdict={verdict} (entry at word {})",
                    mem.read(e.add(E_GOT)),
                    mem.read(e.add(E_ACC)),
                    e.0
                )
            }
            None => format!("flow {flow}: need={need} no entry, verdict={verdict}"),
        }
    }
}

impl Program for Intruder {
    fn name(&self) -> &str {
        "intruder"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        let mut rng = SimRng::new(0x696e_7472_7564_6572);
        self.frags_of = (0..self.nflows)
            .map(|_| 1 + rng.below(self.max_frags))
            .collect();
        self.payload_sum = vec![0; self.nflows];
        let mut frags = Vec::new();
        for flow in 0..self.nflows {
            for idx in 0..self.frags_of[flow] {
                let payload = rng.below(1 << 16);
                self.payload_sum[flow] += payload;
                frags.push(enc(flow as u64, idx, payload));
            }
        }
        rng.shuffle(&mut frags);
        self.fragments = frags;

        self.alloc = Some(TmAlloc::setup(s, threads, 64 * 1024));
        let q = Queue::setup(s);
        for &f in &self.fragments {
            q.setup_push(s, f);
        }
        self.queue = Some(q);
        self.map = Some(TMap::setup(s));
        self.verdicts = s.alloc(self.nflows as u64);
        for f in 0..self.nflows as u64 {
            s.write(self.verdicts.add(f), 0);
        }
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let alloc = self.alloc.unwrap();
        let queue = self.queue.unwrap();
        let map = self.map.unwrap();
        let frags_needed = &self.frags_of;
        loop {
            // Tx 1: grab a fragment.
            let frag = ctx.critical(|tx| queue.pop(tx));
            let Some(frag) = frag else { break };
            let (flow, _idx, payload) = dec(frag);

            // Tx 2: reassemble; detect completion.
            let need = frags_needed[flow as usize];
            let completed = ctx.critical(|tx| {
                let entry = match map.find(tx, flow)? {
                    Some(e) => Addr(e),
                    None => {
                        let e = alloc.alloc(tx, ENTRY_WORDS)?;
                        tx.store(e.add(E_GOT), 0)?;
                        tx.store(e.add(E_NEED), need)?;
                        tx.store(e.add(E_ACC), 0)?;
                        map.insert(tx, &alloc, flow, e.0)?;
                        e
                    }
                };
                let got = tx.load(entry.add(E_GOT))? + 1;
                tx.store(entry.add(E_GOT), got)?;
                let acc = tx.load(entry.add(E_ACC))? + payload;
                tx.store(entry.add(E_ACC), acc)?;
                if got == tx.load(entry.add(E_NEED))? {
                    map.remove(tx, flow)?;
                    Ok(Some(acc))
                } else {
                    Ok(None)
                }
            });

            if let Some(acc) = completed {
                // Detection: pure computation over the reassembled flow.
                ctx.compute(60 + (acc % 64));
                // Tx 3: record the verdict.
                let cell = self.verdicts.add(flow);
                ctx.critical(|tx| {
                    let prev = tx.load(cell)?;
                    debug_assert_eq!(prev, 0, "flow detected twice");
                    let _ = prev;
                    tx.store(cell, acc)?;
                    Ok(())
                });
            }
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // Every flow detected exactly once with the right checksum; the
        // reassembly map drained.
        for flow in 0..self.nflows {
            let got = mem.read(self.verdicts.add(flow as u64));
            if got != self.payload_sum[flow] {
                return Err(format!(
                    "flow {flow}: verdict {got}, expected {}",
                    self.payload_sum[flow]
                ));
            }
        }
        if !self.map.unwrap().snapshot(mem).is_empty() {
            return Err("reassembly map not drained".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;

    #[test]
    fn frag_encoding_roundtrip() {
        assert_eq!(dec(enc(5, 3, 1234)), (5, 3, 1234));
        assert_eq!(dec(enc(0, 0, 0)), (0, 0, 0));
    }

    #[test]
    fn intruder_detects_all_flows() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerRwil,
        ] {
            let mut w = Intruder::new(Scale::Tiny, 2);
            let _ = Runner::new(kind)
                .threads(2)
                .config(SystemConfig::testing(2))
                .run(&mut w);
        }
    }

    #[test]
    fn intruder_is_high_contention() {
        let mut w = Intruder::new(Scale::Small, 4);
        let stats = Runner::new(SystemKind::Baseline)
            .threads(4)
            .config(SystemConfig::testing(4))
            .run(&mut w)
            .stats;
        assert!(stats.total_aborts() > 0, "queue head must cause conflicts");
    }
}
