//! yada — "yet another Delaunay application": mesh refinement (STAMP
//! `yada`).
//!
//! The original refines a Delaunay triangulation: pop a bad triangle from
//! a shared heap, grow its cavity (an irregular region of neighbouring
//! triangles), retriangulate it — allocating new triangles — and push any
//! new bad ones. We reproduce that *transaction profile* on a simplified
//! mesh structure (documented substitution in DESIGN.md): a pool of
//! elements with adjacency links and a quality flag; a refinement
//! transaction pops a bad element, walks its cavity (large, irregular
//! read set), allocates replacement elements from the transactional heap
//! (fresh pages fault inside the transaction — yada's signature abort
//! cause), rewires adjacency (large write set), and pushes a decaying
//! number of new bad elements.
//!
//! Validation: no bad elements remain; element counts balance; adjacency
//! stays symmetric.

use crate::Scale;
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use sim_core::rng::SimRng;
use sim_core::types::Addr;
use tmlib::{Heap, TmAlloc};

/// Element layout: [bad_flag, generation, n0, n1, n2] (three neighbour
/// slots; 0 = boundary).
const E_BAD: u64 = 0;
const E_GEN: u64 = 1;
const E_NBR: u64 = 2;
const NBRS: u64 = 3;
const ELEM_WORDS: u64 = E_NBR + NBRS;

/// Input parameters (mesh size / initial bad-element fraction / depth).
#[derive(Clone, Copy, Debug)]
pub struct YadaParams {
    pub initial_elems: usize,
    pub initial_bad: usize,
    /// Refinement generations: each bad element spawns two children until
    /// this cap (work decays geometrically, like the original's quality
    /// threshold).
    pub max_generation: u64,
}

impl YadaParams {
    pub fn for_scale(scale: Scale) -> YadaParams {
        let (initial_elems, initial_bad, max_generation) = match scale {
            Scale::Tiny => (24, 4, 1),
            Scale::Small => (64, 10, 2),
            Scale::Full => (160, 24, 2),
        };
        YadaParams {
            initial_elems,
            initial_bad,
            max_generation,
        }
    }
}

pub struct Yada {
    threads: usize,
    initial_elems: usize,
    initial_bad: usize,
    max_generation: u64,
    heap: Option<Heap>,
    alloc: Option<TmAlloc>,
    /// Count of refinements performed (for validation/statistics).
    refinements: Addr,
    /// Initial element pool (setup-allocated).
    elems: Vec<Addr>,
}

impl Yada {
    pub fn new(scale: Scale, threads: usize) -> Yada {
        Yada::with_params(YadaParams::for_scale(scale), threads)
    }

    pub fn with_params(p: YadaParams, threads: usize) -> Yada {
        assert!(p.initial_bad <= p.initial_elems);
        Yada {
            threads,
            initial_elems: p.initial_elems,
            initial_bad: p.initial_bad,
            max_generation: p.max_generation,
            heap: None,
            alloc: None,
            refinements: Addr::NULL,
            elems: Vec::new(),
        }
    }
}

impl Program for Yada {
    fn name(&self) -> &str {
        "yada"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        let mut rng = SimRng::new(0x7961_6461);
        // Build a ring-with-chords mesh: element i neighbours i-1 and i+1
        // plus one random chord; symmetric links.
        self.elems = (0..self.initial_elems)
            .map(|_| s.alloc(ELEM_WORDS))
            .collect();
        let n = self.initial_elems;
        for i in 0..n {
            let e = self.elems[i];
            s.write(e.add(E_BAD), 0);
            s.write(e.add(E_GEN), 0);
            let prev = self.elems[(i + n - 1) % n];
            let next = self.elems[(i + 1) % n];
            s.write(e.add(E_NBR), prev.0);
            s.write(e.add(E_NBR + 1), next.0);
            s.write(e.add(E_NBR + 2), 0);
        }
        // Mark the initial bad elements and push them onto the work heap.
        let heap = Heap::setup(s, (self.initial_elems * 8) as u64);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for &i in order.iter().take(self.initial_bad) {
            s.write(self.elems[i].add(E_BAD), 1);
            heap.setup_push(s, self.elems[i].0);
        }
        self.heap = Some(heap);
        self.alloc = Some(TmAlloc::setup(s, threads, 512 * 1024));
        self.refinements = s.alloc(8);
        s.write(self.refinements, 0);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let heap = self.heap.unwrap();
        let alloc = self.alloc.unwrap();
        let max_gen = self.max_generation;
        let refinements = self.refinements;
        loop {
            let work = ctx.critical(|tx| heap.pop(tx));
            let Some(elem) = work else { break };
            let elem = Addr(elem);
            // Refinement transaction: cavity walk + retriangulation.
            ctx.critical(|tx| {
                // The element may have been fixed by a neighbouring
                // refinement already (yada re-checks after popping).
                if tx.load(elem.add(E_BAD))? == 0 {
                    return Ok(());
                }
                // Cavity: BFS over the adjacency up to depth 2 — an
                // irregular read set of ~10-20 elements.
                let mut cavity = vec![elem];
                let mut frontier = vec![elem];
                for _depth in 0..2 {
                    let mut next = Vec::new();
                    for &e in &frontier {
                        for k in 0..NBRS {
                            let nb = tx.load(e.add(E_NBR + k))?;
                            if nb != 0 && !cavity.contains(&Addr(nb)) {
                                cavity.push(Addr(nb));
                                next.push(Addr(nb));
                            }
                        }
                    }
                    frontier = next;
                }
                tx.compute(40)?; // circumcircle tests etc.

                // Retriangulate: allocate replacements (faults live here),
                // splice them in place of the popped element.
                let gen = tx.load(elem.add(E_GEN))?;
                let n_new = 2u64;
                let mut fresh = Vec::new();
                for _ in 0..n_new {
                    let ne = alloc.alloc_zeroed(tx, ELEM_WORDS)?;
                    tx.store(ne.add(E_GEN), gen + 1)?;
                    fresh.push(ne);
                }
                // Wire the fresh pair to each other and into the cavity.
                tx.store(fresh[0].add(E_NBR), fresh[1].0)?;
                tx.store(fresh[1].add(E_NBR), fresh[0].0)?;
                // Replace `elem` in its neighbours' link slots with the
                // fresh elements (alternating), and clear elem's badness.
                let mut alt = 0usize;
                for k in 0..NBRS {
                    let nb = tx.load(elem.add(E_NBR + k))?;
                    if nb == 0 {
                        continue;
                    }
                    let nb = Addr(nb);
                    for j in 0..NBRS {
                        if tx.load(nb.add(E_NBR + j))? == elem.0 {
                            tx.store(nb.add(E_NBR + j), fresh[alt % 2].0)?;
                            let back = fresh[alt % 2];
                            // Give the fresh element a back-link slot.
                            for m in 0..NBRS {
                                if tx.load(back.add(E_NBR + m))? == 0 {
                                    tx.store(back.add(E_NBR + m), nb.0)?;
                                    break;
                                }
                            }
                            alt += 1;
                        }
                    }
                }
                tx.store(elem.add(E_BAD), 0)?;
                // Unlink elem entirely.
                for k in 0..NBRS {
                    tx.store(elem.add(E_NBR + k), 0)?;
                }
                // New work: fresh elements below the generation cap are
                // bad and go back on the heap (decaying workload).
                if gen < max_gen {
                    for &ne in &fresh {
                        tx.store(ne.add(E_BAD), 1)?;
                        heap.push(tx, ne.0)?;
                    }
                }
                let r = tx.load(refinements)?;
                tx.store(refinements, r + 1)?;
                Ok(())
            });
            ctx.compute(30);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // The heap must be drained and no initial element still bad.
        let refts = mem.read(self.refinements);
        if refts == 0 {
            return Err("no refinement performed".into());
        }
        for (i, &e) in self.elems.iter().enumerate() {
            if mem.read(e.add(E_BAD)) != 0 {
                return Err(format!("initial element {i} still bad"));
            }
        }
        // Work conservation: every refinement of generation <= max spawns
        // 2 children; total refinements = sum over the spawn tree. With
        // max_generation g and b initial bad elements, refinements must
        // be exactly b * (2^(g+1) - 1).
        let want = self.initial_bad as u64 * ((1 << (self.max_generation + 1)) - 1);
        if refts != want {
            return Err(format!("refinements {refts}, expected {want}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;
    use sim_core::stats::AbortCause;

    #[test]
    fn yada_refines_completely() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerTm,
        ] {
            let mut w = Yada::new(Scale::Tiny, 2);
            let _ = Runner::new(kind)
                .threads(2)
                .config(SystemConfig::testing(2))
                .run(&mut w);
        }
    }

    #[test]
    fn yada_faults_inside_transactions() {
        let mut w = Yada::new(Scale::Small, 2);
        let stats = Runner::new(SystemKind::Baseline)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut w)
            .stats;
        assert!(
            stats.abort_count(AbortCause::Fault) > 0,
            "fresh allocation pages must fault inside transactions"
        );
    }
}
