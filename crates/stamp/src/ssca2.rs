//! ssca2 — scalable synthetic compact applications, kernel 1: graph
//! construction (STAMP `ssca2`).
//!
//! Threads take a static partition of a pre-generated directed edge list
//! and append each edge to the target node's adjacency array inside a
//! tiny transaction (read the fill count, write the slot, bump the
//! count). Two threads conflict only when they add edges to the same
//! node — very low contention, very short transactions, exactly ssca2's
//! profile in the STAMP characterization.

use crate::Scale;
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use sim_core::rng::SimRng;
use sim_core::types::Addr;

/// Input parameters (SSCA2 scale / edge factor, reduced).
#[derive(Clone, Copy, Debug)]
pub struct Ssca2Params {
    pub nodes: usize,
    pub edges_per_thread: usize,
}

impl Ssca2Params {
    pub fn for_scale(scale: Scale) -> Ssca2Params {
        let (nodes, edges_per_thread) = match scale {
            Scale::Tiny => (16, 16),
            Scale::Small => (64, 48),
            Scale::Full => (128, 128),
        };
        Ssca2Params {
            nodes,
            edges_per_thread,
        }
    }
}

pub struct Ssca2 {
    threads: usize,
    nodes: usize,
    edges: Vec<(u64, u64)>, // (from, to)
    /// Per-node adjacency: [count, e0, e1, ...] with fixed capacity.
    adj: Addr,
    adj_stride: u64,
    max_degree: u64,
}

impl Ssca2 {
    pub fn new(scale: Scale, threads: usize) -> Ssca2 {
        Ssca2::with_params(Ssca2Params::for_scale(scale), threads)
    }

    pub fn with_params(p: Ssca2Params, threads: usize) -> Ssca2 {
        assert!(p.nodes >= 2);
        Ssca2 {
            threads,
            nodes: p.nodes,
            edges: Vec::with_capacity(p.edges_per_thread * threads),
            adj: Addr::NULL,
            adj_stride: 0,
            max_degree: (p.edges_per_thread * threads) as u64,
        }
    }
}

impl Program for Ssca2 {
    fn name(&self) -> &str {
        "ssca2"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        let mut rng = SimRng::new(0x73_7363_6132); // "ssca2"
        let total = self.edges.capacity();
        self.edges = (0..total)
            .map(|_| (rng.below(self.nodes as u64), rng.below(self.nodes as u64)))
            .collect();
        // Cap per-node capacity at the worst case for the scale.
        self.adj_stride = (1 + self.max_degree + 7) & !7;
        self.adj = s.alloc(self.nodes as u64 * self.adj_stride);
        for n in 0..self.nodes {
            s.write(self.adj.add(n as u64 * self.adj_stride), 0);
        }
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let per = self.edges.len() / self.threads;
        let lo = ctx.tid * per;
        let hi = lo + per;
        for &(from, to) in &self.edges[lo..hi] {
            let node_base = self.adj.add(from * self.adj_stride);
            ctx.critical(|tx| {
                let count = tx.load(node_base)?;
                tx.store(node_base.add(1 + count), to)?;
                tx.store(node_base, count + 1)?;
                Ok(())
            });
            // Inter-transaction work (index computations in the original).
            ctx.compute(12);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // Per-node degree must match the input, and the stored targets
        // must be a permutation of the input targets for that node.
        let mut want: Vec<Vec<u64>> = vec![Vec::new(); self.nodes];
        for &(f, t) in &self.edges {
            want[f as usize].push(t);
        }
        for (n, want_n) in want.iter().enumerate() {
            let base = self.adj.add(n as u64 * self.adj_stride);
            let count = mem.read(base);
            if count != want_n.len() as u64 {
                return Err(format!(
                    "node {n}: degree {count}, expected {}",
                    want_n.len()
                ));
            }
            let mut got: Vec<u64> = (0..count).map(|i| mem.read(base.add(1 + i))).collect();
            got.sort_unstable();
            let mut w = want_n.clone();
            w.sort_unstable();
            if got != w {
                return Err(format!("node {n}: adjacency mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;

    #[test]
    fn ssca2_correct_across_systems() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerRwi,
        ] {
            let mut w = Ssca2::new(Scale::Tiny, 2);
            let _ = Runner::new(kind)
                .threads(2)
                .config(SystemConfig::testing(2))
                .run(&mut w);
        }
    }

    #[test]
    fn ssca2_commit_rate_is_high() {
        // ssca2 is the low-contention extreme: nearly everything commits
        // first try even on the baseline.
        let mut w = Ssca2::new(Scale::Small, 4);
        let stats = Runner::new(SystemKind::Baseline)
            .threads(4)
            .config(SystemConfig::testing(4))
            .run(&mut w)
            .stats;
        assert!(
            stats.commit_rate() > 0.9,
            "ssca2 commit rate unexpectedly low: {:.3}",
            stats.commit_rate()
        );
    }
}
