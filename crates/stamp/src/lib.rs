//! Rust ports of the STAMP benchmark applications the paper evaluates
//! (§IV-A: the unmodified suite minus bayes, with kmeans and vacation in
//! both low- and high-contention configurations).
//!
//! Each port reproduces the original's *transaction structure* — the same
//! shared data structures, critical-section granularity, read/write-set
//! growth, and contention class — on top of the `tmlib` transactional
//! data structures and simulated memory. Inputs are scaled down so one
//! simulation finishes in seconds; scaling is uniform across evaluated
//! systems, so system-vs-system ratios are preserved.
//!
//! All workload arithmetic is integer (fixed-point where the original
//! used floats), so the final memory image is independent of thread
//! interleaving and serves as a serializability oracle via
//! [`lockiller::Program::validate`].

pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod vm;
pub mod yada;

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;

/// The nine workload configurations of the paper's evaluation
/// (kmeans+ / vacation+ are the high-contention variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    Genome,
    Intruder,
    KmeansHigh,
    KmeansLow,
    Labyrinth,
    Ssca2,
    VacationHigh,
    VacationLow,
    Yada,
}

impl WorkloadKind {
    /// All workloads, in the paper's figure order.
    pub const ALL: [WorkloadKind; 9] = [
        WorkloadKind::Genome,
        WorkloadKind::Intruder,
        WorkloadKind::KmeansHigh,
        WorkloadKind::KmeansLow,
        WorkloadKind::Labyrinth,
        WorkloadKind::Ssca2,
        WorkloadKind::VacationHigh,
        WorkloadKind::VacationLow,
        WorkloadKind::Yada,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Genome => "genome",
            WorkloadKind::Intruder => "intruder",
            WorkloadKind::KmeansHigh => "kmeans+",
            WorkloadKind::KmeansLow => "kmeans",
            WorkloadKind::Labyrinth => "labyrinth",
            WorkloadKind::Ssca2 => "ssca2",
            WorkloadKind::VacationHigh => "vacation+",
            WorkloadKind::VacationLow => "vacation",
            WorkloadKind::Yada => "yada",
        }
    }

    pub fn from_name(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL
            .iter()
            .copied()
            .find(|w| w.name().eq_ignore_ascii_case(name))
    }
}

/// Input scale: `Tiny` for unit/integration tests, `Small` for quick
/// sweeps, `Full` for the experiment harness (the EXPERIMENTS.md runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Small,
    Full,
}

impl Scale {
    /// Stable lowercase tag, used in run-cache keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }
}

/// A boxed workload instance implementing [`Program`].
pub struct Workload {
    inner: Box<dyn Program + Send + Sync>,
    kind: WorkloadKind,
}

impl Workload {
    /// Instantiate `kind` at experiment scale, sized for `threads`
    /// simulated threads (per-thread work is kept constant so thread
    /// sweeps measure scaling, as STAMP does).
    pub fn new(kind: WorkloadKind, threads: usize) -> Workload {
        Workload::with_scale(kind, threads, Scale::Full)
    }

    /// Instantiate at a reduced scale (tests / CI).
    pub fn scaled(kind: WorkloadKind, threads: usize) -> Workload {
        Workload::with_scale(kind, threads, Scale::Small)
    }

    pub fn with_scale(kind: WorkloadKind, threads: usize, scale: Scale) -> Workload {
        let inner: Box<dyn Program + Send + Sync> = match kind {
            WorkloadKind::Genome => Box::new(genome::Genome::new(scale, threads)),
            WorkloadKind::Intruder => Box::new(intruder::Intruder::new(scale, threads)),
            WorkloadKind::KmeansHigh => Box::new(kmeans::Kmeans::new(scale, threads, true)),
            WorkloadKind::KmeansLow => Box::new(kmeans::Kmeans::new(scale, threads, false)),
            WorkloadKind::Labyrinth => Box::new(labyrinth::Labyrinth::new(scale, threads)),
            WorkloadKind::Ssca2 => Box::new(ssca2::Ssca2::new(scale, threads)),
            WorkloadKind::VacationHigh => Box::new(vacation::Vacation::new(scale, threads, true)),
            WorkloadKind::VacationLow => Box::new(vacation::Vacation::new(scale, threads, false)),
            WorkloadKind::Yada => Box::new(yada::Yada::new(scale, threads)),
        };
        Workload { inner, kind }
    }

    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }
}

impl Program for Workload {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        self.inner.setup(s, threads);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        self.inner.run(ctx);
    }

    fn guest_exec(&self, env: lockiller::GuestEnv) -> Option<Box<dyn lockiller::GuestExec + '_>> {
        self.inner.guest_exec(env)
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        self.inner.validate(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_name(k.name()), Some(k));
        }
        assert_eq!(
            WorkloadKind::from_name("kmeans+"),
            Some(WorkloadKind::KmeansHigh)
        );
        assert_eq!(WorkloadKind::from_name("bogus"), None);
    }

    #[test]
    fn nine_workloads() {
        assert_eq!(WorkloadKind::ALL.len(), 9);
    }
}

#[cfg(test)]
mod param_tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;

    #[test]
    fn custom_params_run_and_validate() {
        // Exercise the with_params constructors with non-preset values.
        let mut g = genome::Genome::with_params(
            genome::GenomeParams {
                gene_len: 64,
                seg_len: 10,
                oversample: 2,
            },
            2,
        );
        let _ = Runner::new(SystemKind::Baseline)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut g);

        let mut k = kmeans::Kmeans::with_params(
            kmeans::KmeansParams {
                points_per_thread: 10,
                dims: 3,
                clusters: 4,
                rounds: 2,
            },
            2,
        );
        let _ = Runner::new(SystemKind::LockillerTm)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut k);

        let mut v = vacation::Vacation::with_params(
            vacation::VacationParams {
                relation_size: 12,
                tasks_per_thread: 5,
                queries_per_task: 3,
                range_pct: 50,
            },
            2,
            true,
        );
        let _ = Runner::new(SystemKind::LockillerRwil)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut v);

        let mut l = labyrinth::Labyrinth::with_params(
            labyrinth::LabyrinthParams {
                dim: 10,
                requests_per_thread: 2,
            },
            2,
        );
        let _ = Runner::new(SystemKind::Cgl)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut l);

        let mut y = yada::Yada::with_params(
            yada::YadaParams {
                initial_elems: 30,
                initial_bad: 5,
                max_generation: 1,
            },
            2,
        );
        let _ = Runner::new(SystemKind::LockillerTm)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut y);

        let mut s2 = ssca2::Ssca2::with_params(
            ssca2::Ssca2Params {
                nodes: 20,
                edges_per_thread: 15,
            },
            2,
        );
        let _ = Runner::new(SystemKind::LosaTmSafu)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut s2);

        let mut i = intruder::Intruder::with_params(
            intruder::IntruderParams {
                flows_per_thread: 5,
                max_frags: 3,
            },
            2,
        );
        let _ = Runner::new(SystemKind::LockillerRri)
            .threads(2)
            .config(SystemConfig::testing(2))
            .run(&mut i);
    }

    #[test]
    #[should_panic(expected = "seg_len")]
    fn genome_rejects_oversized_segments() {
        let _ = genome::Genome::with_params(
            genome::GenomeParams {
                gene_len: 100,
                seg_len: 31,
                oversample: 1,
            },
            1,
        );
    }
}

#[cfg(test)]
mod setup_tests {
    //! Setup-phase smoke tests: every workload must build its inputs at
    //! every scale and thread count without tripping sizing asserts
    //! (no simulation — host-side setup only).
    use super::*;
    use lockiller::flatmem::SetupCtx;

    #[test]
    fn all_workloads_set_up_at_all_scales_and_threads() {
        for kind in WorkloadKind::ALL {
            for scale in [Scale::Tiny, Scale::Small, Scale::Full] {
                for threads in [1usize, 2, 8, 32] {
                    let mut w = Workload::with_scale(kind, threads, scale);
                    let mut s = SetupCtx::new();
                    w.setup(&mut s, threads);
                    assert!(s.brk() > 8, "{} produced no data", kind.name());
                }
            }
        }
    }
}
