//! kmeans — partition-based clustering (STAMP `kmeans`).
//!
//! Each thread assigns its chunk of points to the nearest center, then a
//! small transaction folds the point into that cluster's accumulator
//! (count + per-dimension sums). Iterations are separated by barriers;
//! centers are recomputed from the accumulators between rounds.
//!
//! The paper's two configurations differ in contention: `kmeans+` (high)
//! uses few clusters so the per-cluster accumulator lines are hammered;
//! `kmeans` (low) uses many. Coordinates are integers, so accumulator
//! sums are order-independent and the final memory image is an exact
//! serializability oracle.

use crate::Scale;
use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use sim_core::rng::SimRng;
use sim_core::types::Addr;

/// Input parameters (STAMP's `-n` clusters / point-set size / rounds).
#[derive(Clone, Copy, Debug)]
pub struct KmeansParams {
    pub points_per_thread: usize,
    pub dims: usize,
    pub clusters: usize,
    pub rounds: usize,
}

impl KmeansParams {
    pub fn for_scale(scale: Scale, threads: usize, high_contention: bool) -> KmeansParams {
        let (points_per_thread, dims) = match scale {
            Scale::Tiny => (8, 2),
            Scale::Small => (24, 4),
            Scale::Full => (64, 4),
        };
        let clusters = if high_contention { 3 } else { 24 };
        let clusters = clusters.min(points_per_thread * threads / 2).max(2);
        let rounds = match scale {
            Scale::Tiny => 1,
            Scale::Small => 2,
            Scale::Full => 3,
        };
        KmeansParams {
            points_per_thread,
            dims,
            clusters,
            rounds,
        }
    }
}

pub struct Kmeans {
    threads: usize,
    npoints: usize,
    dims: usize,
    clusters: usize,
    rounds: usize,
    points: Vec<Vec<i64>>,
    /// Point coordinates in simulated memory (read-only during a round).
    points_base: Addr,
    /// Current centers: clusters x dims.
    centers: Addr,
    /// Accumulators: per cluster [count, sum0, sum1, ...] padded to lines.
    accum: Addr,
    accum_stride: u64,
}

impl Kmeans {
    pub fn new(scale: Scale, threads: usize, high_contention: bool) -> Kmeans {
        // STAMP: high contention = fewer clusters (more accumulator
        // collisions); low contention = many clusters. Initial centers
        // are the first `clusters` points, so clamp to the point count.
        Kmeans::with_params(
            KmeansParams::for_scale(scale, threads, high_contention),
            threads,
        )
    }

    pub fn with_params(p: KmeansParams, threads: usize) -> Kmeans {
        assert!(p.clusters >= 2 && p.clusters <= p.points_per_thread * threads);
        Kmeans {
            threads,
            npoints: p.points_per_thread * threads,
            dims: p.dims,
            clusters: p.clusters,
            rounds: p.rounds,
            points: Vec::new(),
            points_base: Addr::NULL,
            centers: Addr::NULL,
            accum: Addr::NULL,
            accum_stride: 0,
        }
    }

    fn point_addr(&self, i: usize) -> Addr {
        self.points_base.add((i * self.dims) as u64)
    }

    fn center_addr(&self, c: usize, d: usize) -> Addr {
        self.centers.add((c * self.dims + d) as u64)
    }

    fn accum_addr(&self, c: usize) -> Addr {
        self.accum.add(c as u64 * self.accum_stride)
    }

    /// Compile every thread's kernel under the standard
    /// [`lockiller::Runner`] memory layout without running a simulation:
    /// the runner allocates the fallback lock's 8-word block first, then
    /// this program's [`Program::setup`] places points, centers, and
    /// accumulators. Addresses are baked in as constants, so the result
    /// is byte-identical to what `--backend vm` executes — which is what
    /// lets `tmstatic::vmabs` and `tmlint kernel` analyze the physical
    /// footprint offline. Consumes the program.
    pub fn compile_standalone(mut self) -> Vec<guestvm::Kernel> {
        let mut s = SetupCtx::new();
        let _lock = s.alloc(8);
        let threads = self.threads;
        self.setup(&mut s, threads);
        (0..threads).map(|t| self.compile(t)).collect()
    }

    /// Compile thread `tid`'s body to `guestvm` bytecode: a fully
    /// unrolled, op-for-op mirror of [`Kmeans::run`] (addresses are
    /// constants per thread, so every point/cluster iteration becomes
    /// straight-line code with one branch per best-center update and one
    /// per `n > 0` recompute guard). The emitted `GuestOp` stream is
    /// bit-identical to the hand-written body: same loads in the same
    /// order, same `compute(4)` per cluster, same critical-section shape.
    ///
    /// All values in flight are non-negative and far below `i64::MAX`,
    /// so the VM's wrapping-`u64` arithmetic reproduces the hand-written
    /// `i64` math exactly: `(x - cv)^2` survives the round-trip through
    /// two's-complement, and unsigned `<`, `/` agree with signed.
    fn compile(&self, tid: usize) -> guestvm::Kernel {
        use guestvm::{BinOp, Cond, KernelBuilder};
        let dims = self.dims;
        // r0 scratch address; r1..=r{dims} the current point's coords;
        // then best-distance, best-accumulator address, distance, two
        // scratch values, a zero, and a second address register.
        let r_addr: u8 = 0;
        let coord = |d: usize| (1 + d) as u8;
        let rb = (1 + dims) as u8;
        let (r_bd, r_acc, r_dist, r_a, r_b, r_zero, r_caddr) =
            (rb, rb + 1, rb + 2, rb + 3, rb + 4, rb + 5, rb + 6);
        let mut b = KernelBuilder::new(format!("kmeans[{tid}]"), dims + 8);
        let per = self.npoints / self.threads;
        let (lo, hi) = (tid * per, tid * per + per);
        for _round in 0..self.rounds {
            for i in lo..hi {
                for d in 0..dims {
                    b.imm(r_addr, self.point_addr(i).add(d as u64).0)
                        .load(coord(d), r_addr, 0);
                }
                b.imm(r_bd, i64::MAX as u64);
                b.imm(r_acc, self.accum_addr(0).0);
                for c in 0..self.clusters {
                    b.imm(r_dist, 0);
                    for d in 0..dims {
                        b.imm(r_addr, self.center_addr(c, d).0).load(r_b, r_addr, 0);
                        b.bin(BinOp::Sub, r_a, coord(d), r_b);
                        b.bin(BinOp::Mul, r_a, r_a, r_a);
                        b.bin(BinOp::Add, r_dist, r_dist, r_a);
                    }
                    b.compute(4);
                    let skip = b.label();
                    b.br(Cond::Ge, r_dist, r_bd, skip);
                    b.mov(r_bd, r_dist);
                    b.imm(r_acc, self.accum_addr(c).0);
                    b.bind(skip);
                }
                b.crit_begin();
                b.load(r_a, r_acc, 0);
                b.bini(BinOp::Add, r_a, r_a, 1);
                b.store(r_acc, 0, r_a);
                for d in 0..dims {
                    b.load(r_a, r_acc, 1 + d as u64);
                    b.bin(BinOp::Add, r_a, r_a, coord(d));
                    b.store(r_acc, 1 + d as u64, r_a);
                }
                b.crit_end();
            }
            b.barrier();
            let mut c = tid;
            while c < self.clusters {
                b.imm(r_addr, self.accum_addr(c).0);
                b.load(r_b, r_addr, 0); // n
                b.imm(r_zero, 0);
                let skip = b.label();
                b.br(Cond::Eq, r_b, r_zero, skip);
                for d in 0..dims {
                    b.load(r_a, r_addr, 1 + d as u64);
                    b.bin(BinOp::Div, r_a, r_a, r_b);
                    b.imm(r_caddr, self.center_addr(c, d).0);
                    b.store(r_caddr, 0, r_a);
                }
                b.bind(skip);
                b.imm(r_zero, 0);
                for w in 0..(1 + dims as u64) {
                    b.store(r_addr, w, r_zero);
                }
                c += self.threads;
            }
            b.barrier();
        }
        b.halt();
        b.build()
    }
}

impl Program for Kmeans {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(threads, self.threads);
        let mut rng = SimRng::new(0x6b6d_6561_6e73);
        self.points = (0..self.npoints)
            .map(|_| (0..self.dims).map(|_| rng.range(0, 1000) as i64).collect())
            .collect();
        self.points_base = s.alloc((self.npoints * self.dims) as u64);
        for (i, p) in self.points.iter().enumerate() {
            for (d, &v) in p.iter().enumerate() {
                s.write(self.point_addr(i).add(d as u64), v as u64);
            }
        }
        self.centers = s.alloc((self.clusters * self.dims) as u64);
        for c in 0..self.clusters {
            // Initial centers: the first `clusters` points.
            for d in 0..self.dims {
                s.write(self.center_addr(c, d), self.points[c][d] as u64);
            }
        }
        // One accumulator per cluster, line-padded so clusters do not
        // false-share (STAMP pads likewise).
        self.accum_stride = ((1 + self.dims as u64) + 7) & !7;
        self.accum = s.alloc(self.clusters as u64 * self.accum_stride);
        for c in 0..self.clusters {
            for w in 0..(1 + self.dims as u64) {
                s.write(self.accum_addr(c).add(w), 0);
            }
        }
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let per = self.npoints / self.threads;
        let lo = ctx.tid * per;
        let hi = lo + per;
        for _round in 0..self.rounds {
            for i in lo..hi {
                // Assignment: read the point and every center (stable
                // within a round, so non-transactional — as in STAMP).
                let mut coords = Vec::with_capacity(self.dims);
                for d in 0..self.dims {
                    coords.push(ctx.load(self.point_addr(i).add(d as u64)) as i64);
                }
                let mut best = 0usize;
                let mut best_d = i64::MAX;
                for c in 0..self.clusters {
                    let mut dist = 0i64;
                    for (d, &x) in coords.iter().enumerate() {
                        let cv = ctx.load(self.center_addr(c, d)) as i64;
                        let diff = x - cv;
                        dist += diff * diff;
                    }
                    ctx.compute(4);
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                // The transaction: fold the point into the accumulator.
                let acc = self.accum_addr(best);
                let dims = self.dims;
                ctx.critical(|tx| {
                    let n = tx.load(acc)?;
                    tx.store(acc, n + 1)?;
                    for (d, &x) in coords.iter().enumerate().take(dims) {
                        let cell = acc.add(1 + d as u64);
                        let sum = tx.load(cell)? as i64;
                        tx.store(cell, (sum + x) as u64)?;
                    }
                    Ok(())
                });
            }
            ctx.barrier();
            // Center recomputation: thread t owns clusters t, t+T, ...
            let mut c = ctx.tid;
            while c < self.clusters {
                let acc = self.accum_addr(c);
                let n = ctx.load(acc) as i64;
                if n > 0 {
                    for d in 0..self.dims {
                        let sum = ctx.load(acc.add(1 + d as u64)) as i64;
                        ctx.store(self.center_addr(c, d), (sum / n) as u64);
                    }
                }
                // Reset accumulator for the next round.
                for w in 0..(1 + self.dims as u64) {
                    ctx.store(acc.add(w), 0);
                }
                c += self.threads;
            }
            ctx.barrier();
        }
    }

    fn guest_exec(&self, env: lockiller::GuestEnv) -> Option<Box<dyn lockiller::GuestExec + '_>> {
        Some(guestvm::GuestVm::boxed(
            std::sync::Arc::new(self.compile(env.tid)),
            &env,
        ))
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        // After the final round the accumulators were reset; recompute the
        // expected centers by running the same algorithm sequentially.
        let mut centers: Vec<Vec<i64>> =
            (0..self.clusters).map(|c| self.points[c].clone()).collect();
        for _ in 0..self.rounds {
            let mut acc = vec![vec![0i64; self.dims + 1]; self.clusters];
            for p in &self.points {
                let mut best = 0;
                let mut best_d = i64::MAX;
                for (c, center) in centers.iter().enumerate() {
                    let dist: i64 = p.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                acc[best][0] += 1;
                for d in 0..self.dims {
                    acc[best][d + 1] += p[d];
                }
            }
            for (c, a) in acc.iter().enumerate() {
                if a[0] > 0 {
                    for d in 0..self.dims {
                        centers[c][d] = a[d + 1] / a[0];
                    }
                }
            }
        }
        for (c, center) in centers.iter().enumerate() {
            for (d, &want) in center.iter().enumerate() {
                let got = mem.read(self.center_addr(c, d)) as i64;
                if got != want {
                    return Err(format!("center[{c}][{d}] = {got}, expected {want}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::runner::Runner;
    use lockiller::system::SystemKind;
    use sim_core::config::SystemConfig;

    #[test]
    fn kmeans_high_correct_on_cgl_and_htm() {
        for kind in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerTm,
        ] {
            let mut w = Kmeans::new(Scale::Tiny, 2, true);
            let stats = Runner::new(kind)
                .threads(2)
                .config(SystemConfig::testing(2))
                .run(&mut w)
                .stats;
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn kmeans_low_has_less_contention_than_high() {
        let run = |high| {
            let mut w = Kmeans::new(Scale::Small, 4, high);
            Runner::new(SystemKind::Baseline)
                .threads(4)
                .config(SystemConfig::testing(4))
                .run(&mut w)
                .into_stats()
        };
        let hi = run(true);
        let lo = run(false);
        assert!(
            hi.total_aborts() >= lo.total_aborts(),
            "kmeans+ should conflict at least as much as kmeans ({} vs {})",
            hi.total_aborts(),
            lo.total_aborts()
        );
    }
}
