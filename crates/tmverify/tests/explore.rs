//! End-to-end exploration tests: full coverage of clean configs,
//! determinism across worker counts, and the three injected protocol
//! bugs — each must be caught and shrunk to a replayable witness.

use lockiller::SystemKind;
use sim_core::config::FaultInject;
use tmcheck::CheckKind;
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

fn ring(system: SystemKind, cores: usize, lines: u64) -> Explorer {
    let mut ex = Explorer::new(system, ProgSpec::conflict_ring(cores, lines));
    ex.no_safety_net = true;
    ex
}

#[test]
fn clean_two_core_two_line_space_is_fully_covered() {
    let rep = ring(SystemKind::LockillerRwi, 2, 2).explore();
    assert!(
        rep.is_clean(),
        "clean config must verify clean:\n{}",
        rep.render()
    );
    assert!(
        rep.complete(),
        "bounded space must drain:\n{}",
        rep.render()
    );
    assert!(rep.schedules > 1, "tie-breaks must exist to explore");
    assert_eq!(rep.exit_code(), 0);
    assert!(rep.witness.is_none());
}

#[test]
fn exploration_is_deterministic_across_jobs_and_reruns() {
    let mut base = ring(SystemKind::LockillerTm, 3, 2);
    let a = base.explore();
    let b = base.explore();
    base.jobs = 4;
    let c = base.explore();
    for (label, rep) in [("rerun", &b), ("jobs=4", &c)] {
        assert_eq!(a.digest, rep.digest, "{label} digest diverged");
        assert_eq!(a.schedules, rep.schedules, "{label}");
        assert_eq!(a.pruned_sleep, rep.pruned_sleep, "{label}");
        assert_eq!(a.pruned_dedup, rep.pruned_dedup, "{label}");
        assert_eq!(a.redundant, rep.redundant, "{label}");
        assert_eq!(a.max_depth, rep.max_depth, "{label}");
    }
    assert!(a.complete() && a.is_clean(), "{}", a.render());
}

#[test]
fn state_dedup_only_prunes_never_changes_the_verdict() {
    let mut ex = ring(SystemKind::LockillerRwi, 2, 2);
    let with = ex.explore();
    ex.state_dedup = false;
    let without = ex.explore();
    assert_eq!(with.is_clean(), without.is_clean());
    assert_eq!(without.pruned_dedup, 0);
    assert!(
        without.schedules >= with.schedules,
        "dedup must not add schedules: {} < {}",
        without.schedules,
        with.schedules
    );
}

/// Re-run a witness end-to-end the way `tmverify replay` does.
fn reproduces(w: &tmobs::Witness) -> bool {
    let ex = Explorer::from_witness(w).expect("witness must reconstruct");
    ex.replay(&w.decisions)
        .iter()
        .any(|v| v.check.name() == w.violation_kind)
}

#[test]
fn injected_dropped_wakeup_is_caught_with_minimal_witness() {
    let mut ex = ring(SystemKind::LockillerRwi, 2, 2);
    ex.inject = FaultInject {
        drop_wakeups: true,
        ..FaultInject::default()
    };
    let rep = ex.explore();
    assert_eq!(rep.exit_code(), 1, "{}", rep.render());
    assert!(
        rep.space
            .per_kind
            .iter()
            .any(|(k, _)| matches!(k, CheckKind::Liveness | CheckKind::Deadlock)),
        "a dropped wake-up must surface as liveness or deadlock:\n{}",
        rep.render()
    );
    let w = rep.witness.expect("violation must produce a witness");
    assert!(
        reproduces(&w),
        "shrunk witness must replay:\n{}",
        w.render()
    );
    // ddmin must not leave trailing default decisions around.
    assert_ne!(w.decisions.last(), Some(&0));
}

#[test]
fn injected_double_grant_is_caught_with_minimal_witness() {
    // Two transactions with three distinct lines each overflow the tiny
    // (2-line) L1, forcing STL switch requests; the rogue arbiter then
    // grants both.
    let spec = ProgSpec::parse("6/c:L0,L1,L2,S0/c:L3,L4,L5,S3").unwrap();
    let mut ex = Explorer::new(SystemKind::LockillerTm, spec);
    ex.no_safety_net = true;
    ex.tiny_l1 = true;
    ex.inject = FaultInject {
        double_grant: true,
        ..FaultInject::default()
    };
    let rep = ex.explore();
    assert_eq!(rep.exit_code(), 1, "{}", rep.render());
    assert!(
        rep.space
            .per_kind
            .iter()
            .any(|(k, _)| *k == CheckKind::GrantExclusivity),
        "the arbiter bug must trip grant exclusivity:\n{}",
        rep.render()
    );
    let w = rep.witness.expect("violation must produce a witness");
    assert!(
        reproduces(&w),
        "shrunk witness must replay:\n{}",
        w.render()
    );
}

#[test]
fn injected_priority_decay_is_caught_with_minimal_witness() {
    // Two reads per transaction so the decayed priority is re-observed
    // within one attempt.
    let spec = ProgSpec::parse("2/c:L0,L1,S0/c:L0,L1,S1").unwrap();
    let mut ex = Explorer::new(SystemKind::LockillerRwi, spec);
    ex.no_safety_net = true;
    ex.inject = FaultInject {
        prio_decay: true,
        ..FaultInject::default()
    };
    let rep = ex.explore();
    assert_eq!(rep.exit_code(), 1, "{}", rep.render());
    assert!(
        rep.space
            .per_kind
            .iter()
            .any(|(k, _)| *k == CheckKind::Priority),
        "decaying priorities must trip the priority invariant:\n{}",
        rep.render()
    );
    let w = rep.witness.expect("violation must produce a witness");
    assert!(
        reproduces(&w),
        "shrunk witness must replay:\n{}",
        w.render()
    );
}

#[test]
fn regression_corpus_still_reproduces() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable witness");
        let w = tmobs::Witness::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            reproduces(&w),
            "{} no longer reproduces:\n{}",
            path.display(),
            w.render()
        );
        seen += 1;
    }
    assert!(seen >= 3, "corpus must cover the three injected bugs");
}

#[test]
fn random_specs_verify_clean_on_uninjected_systems() {
    let mut rng = proptest::Rng::new(0x7e57);
    for i in 0..4 {
        let spec = ProgSpec::random(&mut rng, 2, 3);
        let mut ex = Explorer::new(SystemKind::LockillerRwi, spec.clone());
        ex.no_safety_net = true;
        ex.max_schedules = 400;
        let rep = ex.explore();
        assert!(
            rep.is_clean(),
            "random spec #{i} {} found a violation on a clean system:\n{}",
            spec.render(),
            rep.render()
        );
    }
}

/// The engine's host-side scope profiler (`Runner::profile`) reads only
/// the host clock: turning it on for every run of an exploration must
/// not move the decision digest or any coverage counter.
#[test]
fn host_profiling_never_moves_an_exploration_digest() {
    let mut ex = ring(SystemKind::LockillerTm, 3, 2);
    let plain = ex.explore();
    ex.profile = true;
    let profiled = ex.explore();
    assert_eq!(plain.digest, profiled.digest, "profiling moved the digest");
    assert_eq!(plain.schedules, profiled.schedules);
    assert_eq!(plain.pruned_sleep, profiled.pruned_sleep);
    assert_eq!(plain.pruned_dedup, profiled.pruned_dedup);
    assert_eq!(plain.redundant, profiled.redundant);
    assert_eq!(plain.max_depth, profiled.max_depth);
    assert_eq!(plain.is_clean(), profiled.is_clean());
}
