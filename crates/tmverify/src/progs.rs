//! Guest programs for exploration: a tiny textual DSL (`ProgSpec`)
//! describing short STAMP-style kernels, plus deterministic random
//! generation for fuzz-style space coverage.
//!
//! Spec grammar (whitespace-free):
//!
//! ```text
//! spec    := lines '/' thread ('/' thread)*
//! thread  := segment (';' segment)*
//! segment := ('c' | 'p') ':' op (',' op)*
//! op      := 'L' line | 'S' line | 'C' count
//! ```
//!
//! `lines` is the number of distinct cache lines in the shared arena;
//! each thread is a sequence of segments, either **c**ritical (executed
//! under [`lockiller::GuestCtx::critical`], i.e. the active system's
//! concurrency control) or **p**lain (direct non-transactional
//! accesses). Ops: `L<i>` loads line `i`, `S<i>` stores a deterministic
//! value to line `i`, `C<n>` computes `n` instructions.
//!
//! Example — the 2-core/2-line hand-off kernel:
//! `2/c:L0,S1/c:L1,S0`.
//!
//! Specs are pure data: the same spec replayed under the same schedule
//! reproduces the run bit-for-bit (guests derive every value from
//! `(tid, op index)`, never from wall clock or host randomness), which
//! is what makes witnesses replayable.

use lockiller::{GuestCtx, Program, SetupCtx};
use sim_core::types::Addr;

/// One guest operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load line `i`.
    Load(u64),
    /// Store a deterministic value to line `i`.
    Store(u64),
    /// `n` non-memory instructions.
    Compute(u64),
}

/// A run of ops, either inside a critical section or plain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    pub critical: bool,
    pub ops: Vec<Op>,
}

/// A parsed guest-program specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgSpec {
    /// Number of distinct cache lines in the shared arena.
    pub lines: u64,
    /// Per-thread op sequences.
    pub threads: Vec<Vec<Segment>>,
}

impl ProgSpec {
    /// Parse the textual form (see module docs for the grammar).
    pub fn parse(s: &str) -> Result<ProgSpec, String> {
        let mut parts = s.split('/');
        let lines: u64 = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or("spec: empty")?
            .parse()
            .map_err(|_| format!("spec: bad line count in {s:?}"))?;
        if lines == 0 {
            return Err("spec: need at least one line".into());
        }
        let mut threads = Vec::new();
        for tspec in parts {
            let mut segs = Vec::new();
            for sspec in tspec.split(';') {
                let (mode, ops_s) = sspec
                    .split_once(':')
                    .ok_or_else(|| format!("spec: segment {sspec:?} lacks 'c:'/'p:'"))?;
                let critical = match mode {
                    "c" => true,
                    "p" => false,
                    _ => return Err(format!("spec: bad segment mode {mode:?}")),
                };
                let mut ops = Vec::new();
                for op_s in ops_s.split(',') {
                    let (kind, num) = op_s.split_at(1.min(op_s.len()));
                    let n: u64 = num.parse().map_err(|_| format!("spec: bad op {op_s:?}"))?;
                    let op = match kind {
                        "L" => Op::Load(n),
                        "S" => Op::Store(n),
                        "C" => Op::Compute(n),
                        _ => return Err(format!("spec: bad op {op_s:?}")),
                    };
                    if let Op::Load(l) | Op::Store(l) = op {
                        if l >= lines {
                            return Err(format!(
                                "spec: op {op_s:?} references line {l} >= {lines}"
                            ));
                        }
                    }
                    ops.push(op);
                }
                segs.push(Segment { critical, ops });
            }
            threads.push(segs);
        }
        if threads.is_empty() {
            return Err("spec: need at least one thread".into());
        }
        Ok(ProgSpec { lines, threads })
    }

    /// Render back to the textual form (`parse(render(x)) == x`).
    pub fn render(&self) -> String {
        let mut out = self.lines.to_string();
        for t in &self.threads {
            out.push('/');
            let segs: Vec<String> = t
                .iter()
                .map(|seg| {
                    let ops: Vec<String> = seg
                        .ops
                        .iter()
                        .map(|op| match op {
                            Op::Load(l) => format!("L{l}"),
                            Op::Store(l) => format!("S{l}"),
                            Op::Compute(n) => format!("C{n}"),
                        })
                        .collect();
                    format!("{}:{}", if seg.critical { 'c' } else { 'p' }, ops.join(","))
                })
                .collect();
            out.push_str(&segs.join(";"));
        }
        out
    }

    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The canonical small conflict kernel: each of `threads` threads
    /// runs one critical section loading its own line and storing its
    /// neighbour's (`c:L(t%lines),S((t+1)%lines)`).
    pub fn conflict_ring(threads: usize, lines: u64) -> ProgSpec {
        assert!(threads >= 1 && lines >= 1);
        let spec_threads = (0..threads as u64)
            .map(|t| {
                vec![Segment {
                    critical: true,
                    ops: vec![Op::Load(t % lines), Op::Store((t + 1) % lines)],
                }]
            })
            .collect();
        ProgSpec {
            lines,
            threads: spec_threads,
        }
    }

    /// Generate a random small spec: `threads` threads, up to
    /// `max_lines` lines, 1–2 segments per thread, 1–4 ops per segment.
    /// Deterministic in `rng`'s seed.
    pub fn random(rng: &mut proptest::Rng, threads: usize, max_lines: u64) -> ProgSpec {
        let lines = 1 + rng.below(max_lines.max(1));
        let spec_threads = (0..threads)
            .map(|_| {
                let segs = 1 + rng.below(2) as usize;
                (0..segs)
                    .map(|_| {
                        let critical = rng.below(4) != 0; // bias to critical
                        let n_ops = 1 + rng.below(4) as usize;
                        let ops = (0..n_ops)
                            .map(|_| match rng.below(5) {
                                0 | 1 => Op::Load(rng.below(lines)),
                                2 | 3 => Op::Store(rng.below(lines)),
                                _ => Op::Compute(1 + rng.below(8)),
                            })
                            .collect();
                        Segment { critical, ops }
                    })
                    .collect()
            })
            .collect();
        ProgSpec {
            lines,
            threads: spec_threads,
        }
    }
}

/// [`Program`] executing a [`ProgSpec`]: the arena is `lines` disjoint
/// cache lines; store values encode `(tid, op index)` so the trace
/// identifies which op wrote what.
pub struct SpecProgram {
    spec: ProgSpec,
    bases: Vec<Addr>,
    name: String,
}

impl SpecProgram {
    pub fn new(spec: ProgSpec) -> SpecProgram {
        let name = spec.render();
        SpecProgram {
            spec,
            bases: Vec::new(),
            name,
        }
    }
}

impl Program for SpecProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&mut self, s: &mut SetupCtx, threads: usize) {
        assert_eq!(
            threads,
            self.spec.num_threads(),
            "runner thread count must match the spec"
        );
        // One 8-word (line-sized, line-aligned) block per spec line.
        self.bases = (0..self.spec.lines).map(|_| s.alloc(8)).collect();
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let segs = &self.spec.threads[ctx.tid];
        let tid = ctx.tid as u64;
        let mut op_no: u64 = 0;
        for seg in segs {
            if seg.critical {
                ctx.critical(|tx| {
                    for (k, op) in (op_no..).zip(seg.ops.iter()) {
                        match *op {
                            Op::Load(l) => {
                                tx.load(self.bases[l as usize])?;
                            }
                            Op::Store(l) => {
                                tx.store(self.bases[l as usize], (tid << 32) | k)?;
                            }
                            Op::Compute(n) => tx.compute(n)?,
                        }
                    }
                    Ok(())
                });
            } else {
                for op in &seg.ops {
                    match *op {
                        Op::Load(l) => {
                            ctx.load(self.bases[l as usize]);
                        }
                        Op::Store(l) => ctx.store(self.bases[l as usize], (tid << 32) | op_no),
                        Op::Compute(n) => ctx.compute(n),
                    }
                    op_no += 1;
                }
                continue;
            }
            op_no += seg.ops.len() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        for s in [
            "2/c:L0,S1/c:L1,S0",
            "4/c:L0,S1;p:L2/c:S0,C5",
            "1/p:C3",
            "8/c:L7,S0/p:S3;c:L3,L4,S4",
        ] {
            let spec = ProgSpec::parse(s).expect(s);
            assert_eq!(spec.render(), s);
            assert_eq!(ProgSpec::parse(&spec.render()).unwrap(), spec);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "2",
            "0/c:L0",
            "2/x:L0",
            "2/c:L5", // line out of range
            "2/c:Q1", // bad op
            "2/c:",   // empty ops
            "nope/c:L0",
        ] {
            assert!(ProgSpec::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn conflict_ring_shape() {
        let spec = ProgSpec::conflict_ring(3, 2);
        assert_eq!(spec.render(), "2/c:L0,S1/c:L1,S0/c:L0,S1");
        assert_eq!(spec.num_threads(), 3);
    }

    #[test]
    fn random_specs_valid_and_deterministic() {
        let mut a = proptest::Rng::new(7);
        let mut b = proptest::Rng::new(7);
        for _ in 0..50 {
            let sa = ProgSpec::random(&mut a, 3, 8);
            let sb = ProgSpec::random(&mut b, 3, 8);
            assert_eq!(sa, sb, "same seed, same spec");
            // Round-trips through the textual form.
            assert_eq!(ProgSpec::parse(&sa.render()).unwrap(), sa);
            assert_eq!(sa.num_threads(), 3);
        }
    }
}
