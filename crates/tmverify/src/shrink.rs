//! ddmin-style minimization of violating decision sequences.
//!
//! A decision vector lists, per nondeterministic pick point, the index
//! of the candidate fired (see `lockiller::sched`); index 0 is the
//! engine's default FIFO order, so a vector of all zeros is the default
//! schedule. Minimization therefore reduces the set of *non-zero*
//! positions: the witness that survives says "deviate from FIFO at
//! exactly these points". Candidates are validated by re-running the
//! simulation (`reproduces` is an oracle for "same violation kind"),
//! and positions dropped from the kept set are forced back to 0.

/// Minimize `decisions` against the `reproduces` oracle.
///
/// Returns the smallest vector found (trailing zeros trimmed) such
/// that `reproduces` still holds; `decisions` itself is returned
/// trimmed if the oracle rejects every reduction. `probe_budget` caps
/// the number of oracle calls (each is a full simulation).
pub fn ddmin(
    decisions: &[usize],
    mut probe_budget: usize,
    mut reproduces: impl FnMut(&[usize]) -> bool,
) -> Vec<usize> {
    let build = |kept: &[usize]| -> Vec<usize> {
        let mut v = vec![0usize; decisions.len()];
        for &p in kept {
            v[p] = decisions[p];
        }
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    };

    // The candidate set: positions deviating from the default schedule.
    let mut kept: Vec<usize> = (0..decisions.len())
        .filter(|&i| decisions[i] != 0)
        .collect();

    // Fast path: the empty deviation (pure FIFO) already reproduces.
    if !kept.is_empty() && probe_budget > 0 {
        probe_budget -= 1;
        if reproduces(&build(&[])) {
            return build(&[]);
        }
    }

    let mut granularity = 2usize;
    while kept.len() >= 2 && probe_budget > 0 {
        let chunk = kept.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < kept.len() && probe_budget > 0 {
            // Try the complement of kept[start..start+chunk].
            let complement: Vec<usize> = kept
                .iter()
                .enumerate()
                .filter(|&(i, _)| i < start || i >= start + chunk)
                .map(|(_, &p)| p)
                .collect();
            probe_budget -= 1;
            if reproduces(&build(&complement)) {
                kept = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start += chunk;
        }
        if !reduced {
            if granularity >= kept.len() {
                break;
            }
            granularity = (granularity * 2).min(kept.len());
        }
    }

    // Final greedy pass: drop single positions.
    let mut i = 0;
    while i < kept.len() && probe_budget > 0 {
        let mut cand = kept.clone();
        cand.remove(i);
        probe_budget -= 1;
        if reproduces(&build(&cand)) {
            kept = cand;
        } else {
            i += 1;
        }
    }

    build(&kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_single_cause() {
        // Violation iff position 7 keeps its non-zero value.
        let decisions = vec![1, 0, 2, 0, 1, 1, 0, 3, 1, 0, 2];
        let out = ddmin(&decisions, 1000, |v| v.get(7) == Some(&3));
        assert_eq!(out, vec![0, 0, 0, 0, 0, 0, 0, 3]);
    }

    #[test]
    fn shrinks_to_pair() {
        let decisions = vec![2, 1, 1, 1, 2, 1, 1, 1];
        let out = ddmin(&decisions, 1000, |v| {
            v.first() == Some(&2) && v.get(4) == Some(&2)
        });
        assert_eq!(out, vec![2, 0, 0, 0, 2]);
    }

    #[test]
    fn default_schedule_violation_shrinks_to_empty() {
        let out = ddmin(&[1, 2, 1], 1000, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn irreducible_stays() {
        let decisions = vec![1, 1];
        let out = ddmin(&decisions, 1000, |v| v == [1, 1]);
        assert_eq!(out, vec![1, 1]);
    }

    #[test]
    fn budget_limits_probes() {
        let mut calls = 0;
        let _ = ddmin(&[1; 64], 5, |_| {
            calls += 1;
            false
        });
        assert!(calls <= 5);
    }
}
