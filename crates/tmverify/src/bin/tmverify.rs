//! Schedule-exploration CLI: exhaustively check small configurations,
//! or replay a recorded witness.
//!
//! ```text
//! tmverify [explore] [--system NAME] [--prog SPEC | --cores N --lines N]
//!          [--inject FAULT]... [--no-safety-net] [--tiny-l1]
//!          [--retries N] [--depth-bound N] [--max-schedules N]
//!          [--max-cycles N] [--jobs N] [--no-state-dedup]
//!          [--backend threads|vm] [--random-prog SEED]
//!          [--out FILE] [--bench-json FILE] [-v]
//! tmverify replay WITNESS.json
//! ```
//!
//! Defaults: the 2-core/2-line conflict-ring kernel (`2/c:L0,S1/c:L1,S0`)
//! on LockillerRwi with the wake-up safety net *disabled* (exploration
//! wants lost wake-ups to surface as deadlocks, not 200k-cycle stalls).
//! `--prog` takes the DSL documented in `tmverify::progs`;
//! `--random-prog SEED` generates a deterministic random kernel instead.
//! Injections: ignore-conflicts, drop-nack, drop-wakeups, double-grant,
//! prio-decay.
//!
//! Exit codes — `explore`: 0 clean and complete, 1 violation found
//! (witness written to `--out`, default `tmverify-witness.json`),
//! 2 budget exhausted before the space was covered (or bad usage).
//! `replay`: 0 witness reproduces its violation, 1 it does not,
//! 2 unreadable witness.

use lockiller::SystemKind;
use tmverify::dpor::{inject_by_name, Explorer, INJECT_NAMES};
use tmverify::progs::ProgSpec;

fn usage() -> ! {
    eprintln!(
        "usage: tmverify [explore] [--system NAME] [--prog SPEC | --cores N --lines N]\n\
         \x20               [--inject FAULT]... [--no-safety-net] [--tiny-l1]\n\
         \x20               [--retries N] [--depth-bound N] [--max-schedules N]\n\
         \x20               [--max-cycles N] [--jobs N] [--no-state-dedup]\n\
         \x20               [--backend threads|vm] [--random-prog SEED]\n\
         \x20               [--out FILE] [--bench-json FILE] [-v]\n\
         \x20      tmverify replay WITNESS.json\n\
         injections: {}",
        INJECT_NAMES.join(", ")
    );
    std::process::exit(2);
}

struct Args {
    explorer: Explorer,
    out: std::path::PathBuf,
    bench_json: Option<std::path::PathBuf>,
    verbose: bool,
}

fn parse_args(mut it: std::env::Args) -> Args {
    let mut system = SystemKind::LockillerRwi;
    let mut prog: Option<String> = None;
    let mut random_seed: Option<u64> = None;
    let mut cores: usize = 2;
    let mut lines: u64 = 2;
    let mut ex = Explorer::new(system, ProgSpec::conflict_ring(cores, lines));
    // Exploration defaults differ from simulation defaults: lost
    // wake-ups should deadlock, not ride the safety-net timeout.
    ex.no_safety_net = true;
    let mut out = std::path::PathBuf::from("tmverify-witness.json");
    let mut bench_json = None;
    let mut verbose = false;
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "explore" => {}
            "--system" | "-s" => {
                let v = val();
                let Some(k) = SystemKind::from_name(&v) else {
                    eprintln!("unknown system {v:?}");
                    usage();
                };
                system = k;
            }
            "--prog" | "-p" => prog = Some(val()),
            "--random-prog" => random_seed = Some(val().parse().unwrap_or_else(|_| usage())),
            "--cores" | "-c" => cores = val().parse().unwrap_or_else(|_| usage()),
            "--lines" | "-l" => lines = val().parse().unwrap_or_else(|_| usage()),
            "--inject" => {
                let v = val();
                if !inject_by_name(&mut ex.inject, &v) {
                    eprintln!("unknown injection {v:?}");
                    usage();
                }
            }
            "--no-safety-net" => ex.no_safety_net = true,
            "--safety-net" => ex.no_safety_net = false,
            "--tiny-l1" => ex.tiny_l1 = true,
            "--retries" => ex.retries = Some(val().parse().unwrap_or_else(|_| usage())),
            "--depth-bound" => ex.depth_bound = val().parse().unwrap_or_else(|_| usage()),
            "--max-schedules" => ex.max_schedules = val().parse().unwrap_or_else(|_| usage()),
            "--max-cycles" => ex.max_cycles = val().parse().unwrap_or_else(|_| usage()),
            "--jobs" | "-j" => ex.jobs = val().parse().unwrap_or_else(|_| usage()),
            "--no-state-dedup" => ex.state_dedup = false,
            "--backend" => {
                let v = val();
                let Some(b) = lockiller::Backend::from_name(&v) else {
                    eprintln!("unknown backend {v:?} (threads|vm)");
                    usage();
                };
                ex.backend = b;
            }
            "--out" | "-o" => out = val().into(),
            "--bench-json" => bench_json = Some(val().into()),
            "-v" | "--verbose" => verbose = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    ex.system = system;
    ex.spec = if let Some(seed) = random_seed {
        ProgSpec::random(&mut proptest::Rng::new(seed), cores, lines.max(1))
    } else if let Some(p) = &prog {
        ProgSpec::parse(p).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage();
        })
    } else {
        ProgSpec::conflict_ring(cores, lines)
    };
    Args {
        explorer: ex,
        out,
        bench_json,
        verbose,
    }
}

fn cmd_replay(mut it: std::env::Args) -> ! {
    let Some(path) = it.next() else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tmverify: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let w = match tmobs::Witness::parse(&text) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("tmverify: {path}: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", w.render());
    let ex = match Explorer::from_witness(&w) {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("tmverify: {path}: {e}");
            std::process::exit(2);
        }
    };
    let violations = ex.replay(&w.decisions);
    let reproduced = violations
        .iter()
        .any(|v| v.check.name() == w.violation_kind);
    if reproduced {
        println!(
            "reproduced: {} violation under the recorded schedule",
            w.violation_kind
        );
        std::process::exit(0);
    }
    if violations.is_empty() {
        println!("NOT reproduced: schedule ran clean");
    } else {
        println!(
            "NOT reproduced: expected {}, observed {}",
            w.violation_kind,
            violations
                .iter()
                .map(|v| v.check.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    std::process::exit(1);
}

fn main() {
    let mut raw = std::env::args();
    let _argv0 = raw.next();
    if let Some("replay") = std::env::args().nth(1).as_deref() {
        raw.next();
        cmd_replay(raw);
    }
    let args = parse_args(raw);
    let ex = &args.explorer;
    println!(
        "tmverify: exploring {} on {} (inject: [{}], safety net {}, dedup {}, jobs {}, \
         backend {})",
        ex.spec.render(),
        ex.system.name(),
        tmverify::dpor::inject_names(&ex.inject).join(", "),
        if ex.no_safety_net { "off" } else { "on" },
        if ex.state_dedup { "on" } else { "off" },
        ex.jobs.max(1),
        ex.backend.name(),
    );
    let rep = ex.explore();
    print!("{}", rep.render());
    if args.verbose {
        println!("{}", rep.to_json());
    }
    if let Some(path) = &args.bench_json {
        if let Err(e) = std::fs::write(path, rep.to_json() + "\n") {
            eprintln!("tmverify: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {}", path.display());
    }
    if let Some(w) = &rep.witness {
        match std::fs::write(&args.out, w.to_json() + "\n") {
            Ok(()) => println!("witness written to {}", args.out.display()),
            Err(e) => eprintln!("tmverify: cannot write {}: {e}", args.out.display()),
        }
    }
    std::process::exit(rep.exit_code());
}
