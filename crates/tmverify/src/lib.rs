//! tmverify — exhaustive schedule exploration for the recovery/HTMLock
//! protocol.
//!
//! The deterministic simulator's only nondeterminism is the order in
//! which same-cycle events dispatch. This crate drives the engine
//! through *every* such ordering of small configurations (2–4 cores, a
//! handful of cache lines, short STAMP-style kernels) via the
//! [`lockiller::Scheduler`] seam, pruning the schedule tree with
//! sleep-set DPOR and state-fingerprint deduplication (see [`dpor`]).
//!
//! Every explored schedule is checked with `tmcheck` (serializability,
//! protocol invariants) plus two whole-space properties: deadlock
//! freedom and TL/STL grant exclusivity. Violating schedules are
//! shrunk ddmin-style ([`shrink`]) to a minimal decision sequence and
//! written as a replayable witness (`tmobs::Witness`) that both
//! `tmverify replay` and `tmtrace witness` understand.
//!
//! Quickstart:
//!
//! ```text
//! cargo run -p tmverify -- --system lockiller-rwi --cores 2 --lines 2
//! ```

pub mod dpor;
pub mod shrink;

/// The guest-program corpus (`ProgSpec` DSL + `SpecProgram`): moved to
/// the `guestvm` crate so kernels compile to the VM backend, re-exported
/// under its historical path for `tmstatic`/`tmlab` and the CLI.
pub use guestvm::spec as progs;

pub use dpor::{ExploreReport, Explorer};
pub use progs::{Op, ProgSpec, Segment, SpecProgram};
pub use shrink::ddmin;
