//! The systematic explorer: sleep-set DPOR over the engine's tie-break
//! decision tree, with fingerprint-based state deduplication.
//!
//! # State-space model
//!
//! A simulation is deterministic except for same-cycle FIFO tie-breaks
//! in the event queue (see `lockiller::sched`). The explorer's search
//! tree therefore has one node per *multi-candidate front* and one edge
//! per candidate; a root-to-leaf path is a decision vector that replays
//! bit-for-bit. Exploration is breadth-ish: a FIFO frontier of work
//! items (forced decision prefix + the sleep set in force at the branch
//! point), each executed as a pure function — the engine, guests and
//! scheduler are rebuilt per run — so batches can run on host threads
//! while all bookkeeping happens sequentially in frontier order, making
//! every count and the report digest independent of `--jobs`.
//!
//! # Reduction soundness
//!
//! Two reductions prune the tree, both keyed on the conflict relation
//! [`lockiller::EvDesc::conflicts`] (events are dependent unless their
//! core/line/bank footprints are provably disjoint):
//!
//! - **Sleep sets** (Godefroid): after exploring candidate `a` at a
//!   node, sibling subtrees need not re-explore schedules that merely
//!   commute `a` with independent events; `a` is put to sleep in the
//!   siblings and a sleeping event wakes only when a dependent event
//!   fires. A node whose every candidate sleeps is fully covered
//!   elsewhere and generates no children. This explores at least one
//!   interleaving per Mazurkiewicz trace — sound for all properties we
//!   check on a per-schedule basis.
//! - **State deduplication**: each choice point is fingerprinted
//!   ([`lockiller::engine::Engine::state_fingerprint`] — controllers,
//!   write buffers, memory digest, pending queue with volatile sequence
//!   tags normalized, and the full memory system; guest positions are
//!   covered by each core's response-history hash, since a
//!   deterministic guest is a pure function of the responses it has
//!   seen). Reaching a fingerprint already explored with an equal-or-
//!   smaller sleep set proves the whole subtree is covered, so no
//!   children are generated there. Dedup is exact for *state*
//!   properties (deadlock-freedom, grant exclusivity); for *history*
//!   properties (the serializability check runs over the whole trace)
//!   it can merge prefixes with different histories, so runs where a
//!   history distinction matters can disable it (`--no-state-dedup`).
//!
//! Coverage is exact when the report says so ([`ExploreReport::complete`]):
//! no budget exhaustion, no depth clipping, no cycle-limited runs.

use crate::progs::{ProgSpec, SpecProgram};
use crate::shrink;
use lockiller::{Backend, EvDesc, RunEnd, Runner, Scheduler, StaticIndependence, SystemKind};
use sim_core::config::{CheckCfg, FaultInject, RejectAction, SystemConfig, SystemConfigBuilder};
use sim_core::fxhash::{FxHashMap, FxHasher};
use sim_core::types::Cycle;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use tmcheck::space::{self, SpaceReport};
use tmcheck::{check_trace, CheckKind, CheckOpts, Violation};
use tmobs::Witness;

/// CLI names of the fault-injection knobs, in `FaultInject` field order.
pub const INJECT_NAMES: [&str; 5] = [
    "ignore-conflicts",
    "drop-nack",
    "drop-wakeups",
    "double-grant",
    "prio-decay",
];

/// Set the injection knob named `name`; false if the name is unknown.
pub fn inject_by_name(fault: &mut FaultInject, name: &str) -> bool {
    match name {
        "ignore-conflicts" => fault.ignore_conflicts = true,
        "drop-nack" => fault.drop_nack = true,
        "drop-wakeups" => fault.drop_wakeups = true,
        "double-grant" => fault.double_grant = true,
        "prio-decay" => fault.prio_decay = true,
        _ => return false,
    }
    true
}

/// CLI names of the active injection knobs.
pub fn inject_names(fault: &FaultInject) -> Vec<String> {
    let flags = [
        fault.ignore_conflicts,
        fault.drop_nack,
        fault.drop_wakeups,
        fault.double_grant,
        fault.prio_decay,
    ];
    INJECT_NAMES
        .iter()
        .zip(flags)
        .filter(|&(_, on)| on)
        .map(|(n, _)| (*n).to_string())
        .collect()
}

/// Explorer configuration + entry point.
#[derive(Clone)]
pub struct Explorer {
    pub system: SystemKind,
    pub spec: ProgSpec,
    pub inject: FaultInject,
    /// Disable the wake-up safety net so lost wake-ups surface as
    /// deadlocks instead of being papered over by the timeout.
    pub no_safety_net: bool,
    /// Shrink the private L1 to 2 lines (1 set x 2 ways) so tiny
    /// transactions can overflow and exercise switchingMode/fallback.
    pub tiny_l1: bool,
    /// HTM retry-budget override (small values reach the fallback path
    /// in fewer schedules).
    pub retries: Option<u32>,
    /// Branch only at the first `depth_bound` choice points; beyond it
    /// the run follows FIFO order (coverage becomes incomplete).
    pub depth_bound: usize,
    /// Stop after merging this many schedules (exit code 2).
    pub max_schedules: u64,
    /// Per-run simulated-cycle bound; runs cut by it are counted in
    /// [`ExploreReport::cycle_limited`] and make coverage incomplete.
    pub max_cycles: Cycle,
    /// Host threads executing runs in parallel. Results are
    /// bit-identical for every value.
    pub jobs: usize,
    /// Enable fingerprint-based state deduplication (see module docs
    /// for the history-property caveat).
    pub state_dedup: bool,
    /// Oracle-probe budget for ddmin witness shrinking.
    pub shrink_budget: usize,
    /// Statically-proven independence facts refining the dynamic
    /// conflict relation (from the `tmstatic` crate). `None` keeps the
    /// exploration bit-identical to the unpruned baseline. Ignored when
    /// fault injection is active — injected faults break the analysis
    /// premises (see [`StaticIndependence`] docs).
    pub prune: Option<StaticIndependence>,
    /// Guest execution core for every explored run. Both backends are
    /// bit-identical (same decisions, fingerprints, and report digest —
    /// asserted by the differential tests); [`Backend::Vm`] avoids two
    /// OS context switches per simulated guest op, which multiplies
    /// across the thousands of runs an exploration executes.
    pub backend: Backend,
    /// Enable host-side self-profiling (`tmprof`) on every explored run.
    /// The profiler only reads the host clock, so exploration results —
    /// including the report digest — are byte-identical either way
    /// (asserted by tests); the per-run profiles themselves are
    /// discarded by the explorer, which only wants the guarantee.
    pub profile: bool,
}

impl Explorer {
    pub fn new(system: SystemKind, spec: ProgSpec) -> Explorer {
        Explorer {
            system,
            spec,
            inject: FaultInject::default(),
            no_safety_net: false,
            tiny_l1: false,
            retries: Some(2),
            depth_bound: 200,
            max_schedules: 20_000,
            max_cycles: 300_000,
            jobs: 1,
            state_dedup: true,
            shrink_budget: 200,
            prune: None,
            backend: Backend::Threads,
            profile: false,
        }
    }

    /// The prune table in force: the configured table, unless fault
    /// injection invalidates its soundness premises.
    fn active_prune(&self) -> Option<&StaticIndependence> {
        if self.inject.any() {
            None
        } else {
            self.prune.as_ref()
        }
    }

    /// The simulator configuration explored (shared by every run). Public
    /// so static analyses (the `tmstatic` crate) reason about exactly the
    /// geometry the explorer simulates.
    pub fn config(&self) -> SystemConfig {
        let cores = self.spec.num_threads().max(2);
        let mut b = SystemConfigBuilder::from_config(SystemConfig::testing(cores));
        if self.tiny_l1 {
            b = b.l1_capacity(128, 2);
        }
        b.check(CheckCfg {
            enabled: true,
            fault: self.inject,
        })
        .build()
        .expect("explorer config is valid")
    }

    /// The per-thread guest kernels the vm backend executes, compiled
    /// under the standard runner arena layout. Public for the same
    /// reason as [`Explorer::config`]: bytecode-level static analyses
    /// must see exactly the code and addresses the exploration runs.
    pub fn kernels(&self) -> Vec<guestvm::Kernel> {
        SpecProgram::compile_all(&self.spec)
    }

    /// A runner for one schedule (pure: no state shared across runs).
    fn runner(&self) -> Runner {
        let mut policy = self.system.policy();
        if self.no_safety_net {
            policy.wakeup_timeout = Cycle::MAX;
        }
        let mut r = Runner::new(self.system)
            .threads(self.spec.num_threads())
            .config(self.config())
            .policy(policy)
            .max_cycles(self.max_cycles)
            .backend(self.backend)
            .seed(0);
        if let Some(n) = self.retries {
            r = r.retries(n);
        }
        if self.profile {
            r = r.profile();
        }
        r
    }

    fn check_opts(&self) -> CheckOpts {
        CheckOpts {
            wait_wakeup: self.system.policy().reject_action == RejectAction::WaitWakeup,
        }
    }

    /// Execute one work item (pure function of `self` + `item`).
    fn execute(&self, item: &WorkItem) -> RunRecord {
        let mut sched =
            RecordingScheduler::new(item, self.depth_bound, self.active_prune().cloned());
        let mut prog = SpecProgram::new(self.spec.clone());
        let mut out = self.runner().run_scheduled(&mut prog, &mut sched);
        let events = out.take_trace_events();
        let mut violations = Vec::new();
        let cycle_limited = matches!(out.end, RunEnd::CycleLimit { .. });
        if let RunEnd::Deadlock { stuck } = &out.end {
            violations.push(space::deadlock_violation(stuck));
        }
        if !cycle_limited {
            // A budget-cut trace is a prefix, so end-of-trace checks
            // (liveness "never woken") would report false positives;
            // Done and Deadlock traces are final.
            violations.extend(check_trace(&events, self.check_opts()).violations);
            if let Some(msg) = &out.stats.swmr_violation {
                violations.push(Violation {
                    check: CheckKind::Swmr,
                    message: msg.clone(),
                });
            }
            if let Some(v) = space::check_grant_exclusivity(&events) {
                violations.push(v);
            }
        }
        RunRecord {
            decisions: sched.decisions,
            choices: sched.choices,
            end: out.end,
            violations,
            trace_len: events.len(),
            redundant: sched.redundant_from.is_some(),
            depth_clipped: sched.depth_clipped,
            cycle_limited,
        }
    }

    /// Re-run one decision vector (no recording, no reduction) and
    /// return its violations; used by the shrinker and `replay`.
    pub fn replay(&self, decisions: &[usize]) -> Vec<Violation> {
        let mut sched = ReplayScheduler {
            forced: decisions.to_vec(),
            depth: 0,
        };
        let mut prog = SpecProgram::new(self.spec.clone());
        let mut out = self.runner().run_scheduled(&mut prog, &mut sched);
        let events = out.take_trace_events();
        let mut violations = Vec::new();
        if let RunEnd::Deadlock { stuck } = &out.end {
            violations.push(space::deadlock_violation(stuck));
        }
        if !matches!(out.end, RunEnd::CycleLimit { .. }) {
            violations.extend(check_trace(&events, self.check_opts()).violations);
            if let Some(msg) = &out.stats.swmr_violation {
                violations.push(Violation {
                    check: CheckKind::Swmr,
                    message: msg.clone(),
                });
            }
            if let Some(v) = space::check_grant_exclusivity(&events) {
                violations.push(v);
            }
        }
        violations
    }

    /// Explore the schedule space and aggregate the verdict.
    pub fn explore(&self) -> ExploreReport {
        let mut frontier: VecDeque<WorkItem> = VecDeque::new();
        frontier.push_back(WorkItem {
            forced: Vec::new(),
            entry_sleep: Vec::new(),
        });
        // fp -> sleep sets (as sorted id vectors) already explored there.
        let mut seen: FxHashMap<u64, Vec<Vec<u64>>> = FxHashMap::default();
        let mut rep = ExploreReport::default();
        let prune = self.active_prune();
        rep.static_prune = prune.is_some();
        let dependent = |a: &EvDesc, b: &EvDesc| match prune {
            Some(t) => t.conflicts(a, b),
            None => a.conflicts(b),
        };
        let mut digest = FxHasher::default();
        let mut first_violation: Option<(u64, Violation, Vec<usize>)> = None;
        let jobs = self.jobs.max(1);

        'outer: while !frontier.is_empty() {
            let batch: Vec<WorkItem> = {
                let n = frontier.len().min(jobs);
                frontier.drain(..n).collect()
            };
            let records: Vec<RunRecord> = if batch.len() == 1 {
                vec![self.execute(&batch[0])]
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = batch
                        .iter()
                        .map(|item| s.spawn(|| self.execute(item)))
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            // Everything below is sequential in frontier order, so the
            // merge is independent of batch boundaries (i.e. of --jobs).
            for rec in records {
                if rep.schedules >= self.max_schedules {
                    rep.budget_exhausted = true;
                    break 'outer;
                }
                let idx = rep.schedules;
                rep.schedules += 1;
                rec.decisions.hash(&mut digest);
                std::mem::discriminant(&rec.end).hash(&mut digest);
                rec.trace_len.hash(&mut digest);
                rec.violations.len().hash(&mut digest);
                rep.max_depth = rep.max_depth.max(rec.decisions.len());
                if rec.redundant {
                    rep.redundant += 1;
                }
                if rec.depth_clipped {
                    rep.depth_clipped += 1;
                }
                if rec.cycle_limited {
                    rep.cycle_limited += 1;
                }
                if rec.violations.is_empty() {
                    rep.space.record_clean(idx);
                } else {
                    rep.space.record(idx, &rec.violations);
                    if first_violation.is_none() {
                        first_violation =
                            Some((idx, rec.violations[0].clone(), rec.decisions.clone()));
                    }
                }
                // Child generation (sleep-set siblings + state dedup).
                for ch in &rec.choices {
                    if self.state_dedup {
                        let mut ids: Vec<u64> = ch.sleep_before.iter().map(|d| d.id).collect();
                        ids.sort_unstable();
                        ids.dedup();
                        let sets = seen.entry(ch.fp).or_default();
                        if sets.iter().any(|s| is_subset(s, &ids)) {
                            // Covered: a previous visit to this state had
                            // an equal-or-smaller sleep set, so both this
                            // node's siblings and every deeper choice of
                            // this run are explored elsewhere.
                            rep.pruned_dedup += 1;
                            break;
                        }
                        sets.push(ids);
                    }
                    let mut explored: Vec<EvDesc> = vec![ch.options[ch.chosen].clone()];
                    for (i, opt) in ch.options.iter().enumerate() {
                        if i == ch.chosen {
                            continue;
                        }
                        if ch.sleep_before.iter().any(|s| s.id == opt.id) {
                            rep.pruned_sleep += 1;
                            continue;
                        }
                        let entry_sleep: Vec<EvDesc> = ch
                            .sleep_before
                            .iter()
                            .chain(explored.iter())
                            .filter(|u| !dependent(u, opt))
                            .cloned()
                            .collect();
                        let mut forced = rec.decisions[..ch.depth].to_vec();
                        forced.push(i);
                        frontier.push_back(WorkItem {
                            forced,
                            entry_sleep,
                        });
                        explored.push(opt.clone());
                    }
                }
                rep.frontier_peak = rep.frontier_peak.max(frontier.len());
            }
        }

        if let Some((idx, viol, decisions)) = first_violation {
            let kind = viol.check;
            let shrunk = shrink::ddmin(&decisions, self.shrink_budget, |cand| {
                self.replay(cand).iter().any(|v| v.check == kind)
            });
            rep.witness = Some(self.witness(&viol, &shrunk));
            let _ = idx;
        }
        rep.digest = digest.finish();
        rep
    }

    /// Package a (shrunk) violating decision vector as a witness.
    pub fn witness(&self, violation: &Violation, decisions: &[usize]) -> Witness {
        Witness {
            version: tmobs::WITNESS_VERSION,
            title: format!(
                "{} on {} ({})",
                violation.check.name(),
                self.system.name(),
                self.spec.render()
            ),
            system: self.system.name().to_string(),
            cores: self.spec.num_threads(),
            lines: self.spec.lines,
            prog: self.spec.render(),
            inject: inject_names(&self.inject),
            no_safety_net: self.no_safety_net,
            tiny_l1: self.tiny_l1,
            retries: self.retries,
            decisions: decisions.to_vec(),
            violation_kind: violation.check.name().to_string(),
            violation_message: violation.message.clone(),
        }
    }

    /// Rebuild an explorer from a witness (for `tmverify replay`).
    pub fn from_witness(w: &Witness) -> Result<Explorer, String> {
        let system = SystemKind::from_name(&w.system)
            .ok_or_else(|| format!("witness: unknown system {:?}", w.system))?;
        let spec = ProgSpec::parse(&w.prog)?;
        if spec.num_threads() != w.cores {
            return Err(format!(
                "witness: cores {} does not match prog threads {}",
                w.cores,
                spec.num_threads()
            ));
        }
        let mut ex = Explorer::new(system, spec);
        for name in &w.inject {
            if !inject_by_name(&mut ex.inject, name) {
                return Err(format!("witness: unknown injection {name:?}"));
            }
        }
        ex.no_safety_net = w.no_safety_net;
        ex.tiny_l1 = w.tiny_l1;
        ex.retries = w.retries;
        Ok(ex)
    }
}

/// `a` subset-of `b`, both sorted+deduped.
fn is_subset(a: &[u64], b: &[u64]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// One frontier entry: replay `forced`, then explore freely with
/// `entry_sleep` active from the branch point on.
struct WorkItem {
    forced: Vec<usize>,
    entry_sleep: Vec<EvDesc>,
}

/// A recorded free-choice point.
struct Choice {
    /// Index among the run's multi-candidate fronts.
    depth: usize,
    /// State fingerprint at the front (before dispatch).
    fp: u64,
    options: Vec<EvDesc>,
    chosen: usize,
    /// Live sleep set just before dispatch.
    sleep_before: Vec<EvDesc>,
}

/// Everything one executed schedule contributes to the merge.
struct RunRecord {
    decisions: Vec<usize>,
    choices: Vec<Choice>,
    #[allow(dead_code)]
    end: RunEnd,
    violations: Vec<Violation>,
    trace_len: usize,
    redundant: bool,
    depth_clipped: bool,
    cycle_limited: bool,
}

/// Replays a forced prefix, then picks the first non-sleeping candidate
/// at every later front, recording choice points for child generation.
struct RecordingScheduler {
    forced: Vec<usize>,
    entry_sleep: Vec<EvDesc>,
    depth_bound: usize,
    depth: usize,
    sleep: Vec<EvDesc>,
    sleep_active: bool,
    decisions: Vec<usize>,
    choices: Vec<Choice>,
    /// First depth where every candidate slept: the rest of this run is
    /// covered by other schedules, so no further choices are recorded.
    redundant_from: Option<usize>,
    depth_clipped: bool,
    /// Static refinement of the wake-up relation: a sleeping event stays
    /// asleep past dispatches proven independent of it.
    prune: Option<StaticIndependence>,
}

impl RecordingScheduler {
    fn new(
        item: &WorkItem,
        depth_bound: usize,
        prune: Option<StaticIndependence>,
    ) -> RecordingScheduler {
        RecordingScheduler {
            forced: item.forced.clone(),
            entry_sleep: item.entry_sleep.clone(),
            depth_bound,
            prune,
            depth: 0,
            sleep: if item.forced.is_empty() {
                item.entry_sleep.clone()
            } else {
                Vec::new()
            },
            sleep_active: item.forced.is_empty(),
            decisions: Vec::new(),
            choices: Vec::new(),
            redundant_from: None,
            depth_clipped: false,
        }
    }

    fn asleep(&self, d: &EvDesc) -> bool {
        self.sleep.iter().any(|s| s.id == d.id)
    }
}

impl Scheduler for RecordingScheduler {
    fn pick(&mut self, _at: Cycle, options: &[EvDesc], fp: u64) -> usize {
        let d = self.depth;
        self.depth += 1;
        let idx = if d < self.forced.len() {
            if d + 1 == self.forced.len() {
                // The branch point: the item's sleep set takes effect in
                // the state this (last forced) decision leads to.
                self.sleep = self.entry_sleep.clone();
                self.sleep_active = true;
            }
            self.forced[d].min(options.len() - 1)
        } else if d >= self.depth_bound {
            self.depth_clipped = true;
            0
        } else if let Some(i) = (0..options.len()).find(|&i| !self.asleep(&options[i])) {
            if self.redundant_from.is_none() {
                self.choices.push(Choice {
                    depth: d,
                    fp,
                    options: options.to_vec(),
                    chosen: i,
                    sleep_before: self.sleep.clone(),
                });
            }
            i
        } else {
            // Every candidate sleeps: this continuation is covered by
            // sibling subtrees; finish the run (results discarded for
            // child generation) on the default candidate.
            if self.redundant_from.is_none() {
                self.redundant_from = Some(d);
            }
            0
        };
        self.decisions.push(idx);
        idx
    }

    fn observe(&mut self, _at: Cycle, ev: &EvDesc) {
        if self.sleep_active && !self.sleep.is_empty() {
            match &self.prune {
                Some(p) => self.sleep.retain(|t| !p.conflicts(t, ev)),
                None => self.sleep.retain(|t| !t.conflicts(ev)),
            }
        }
    }
}

/// Pure replay: forced decisions, FIFO (0) beyond the vector's end.
struct ReplayScheduler {
    forced: Vec<usize>,
    depth: usize,
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, _at: Cycle, options: &[EvDesc], _fp: u64) -> usize {
        let i = self
            .forced
            .get(self.depth)
            .copied()
            .unwrap_or(0)
            .min(options.len() - 1);
        self.depth += 1;
        i
    }
}

/// Aggregate result of one exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Schedules executed and merged.
    pub schedules: u64,
    /// Runs that hit a fully-sleeping front (covered elsewhere).
    pub redundant: u64,
    /// Sibling branches skipped because the candidate slept.
    pub pruned_sleep: u64,
    /// Choice points skipped via state-fingerprint deduplication.
    pub pruned_dedup: u64,
    /// Runs cut by the per-run cycle budget (coverage incomplete).
    pub cycle_limited: u64,
    /// Runs that hit the depth bound (coverage incomplete).
    pub depth_clipped: u64,
    /// Deepest decision vector seen.
    pub max_depth: usize,
    /// Peak frontier length (memory high-water mark).
    pub frontier_peak: usize,
    /// The schedule budget ran out before the frontier drained.
    pub budget_exhausted: bool,
    /// A static independence table was in force during exploration.
    pub static_prune: bool,
    /// Per-schedule property verdicts.
    pub space: SpaceReport,
    /// Shrunk witness for the first violation found, if any.
    pub witness: Option<Witness>,
    /// Order-sensitive digest of every merged run; equal digests mean
    /// bit-identical explorations (asserted across `--jobs` in tests).
    pub digest: u64,
}

impl ExploreReport {
    pub fn is_clean(&self) -> bool {
        self.space.is_clean()
    }

    /// True when the whole bounded space was covered: every schedule ran
    /// to a final state and the frontier drained within budget.
    pub fn complete(&self) -> bool {
        !self.budget_exhausted && self.depth_clipped == 0 && self.cycle_limited == 0
    }

    /// CLI exit code: 0 clean+complete, 1 violation, 2 budget exhausted.
    pub fn exit_code(&self) -> i32 {
        if !self.is_clean() {
            1
        } else if !self.complete() {
            2
        } else {
            0
        }
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = self.space.render();
        out.push_str(&format!(
            "  explored {} schedule(s) ({} redundant), pruned {} sleeping branch(es), \
             {} deduped state(s)\n",
            self.schedules, self.redundant, self.pruned_sleep, self.pruned_dedup
        ));
        out.push_str(&format!(
            "  max depth {}, frontier peak {}, digest {:016x}\n",
            self.max_depth, self.frontier_peak, self.digest
        ));
        if self.complete() {
            out.push_str("  coverage: complete (bounded space fully explored)\n");
        } else {
            out.push_str(&format!(
                "  coverage: INCOMPLETE (budget_exhausted={}, depth_clipped={}, \
                 cycle_limited={})\n",
                self.budget_exhausted, self.depth_clipped, self.cycle_limited
            ));
        }
        out
    }

    /// Machine-readable stats (the `BENCH_verify.json` rows).
    pub fn to_json(&self) -> String {
        let per_kind: Vec<String> = self
            .space
            .per_kind
            .iter()
            .map(|(k, n)| format!("\"{}\": {n}", k.name()))
            .collect();
        format!(
            "{{\"schedules\": {}, \"redundant\": {}, \"pruned_sleep\": {}, \
             \"pruned_dedup\": {}, \"cycle_limited\": {}, \"depth_clipped\": {}, \
             \"max_depth\": {}, \"frontier_peak\": {}, \"budget_exhausted\": {}, \
             \"static_prune\": {}, \"complete\": {}, \"violating\": {}, \
             \"violations\": {{{}}}, \"digest\": \"{:016x}\"}}",
            self.schedules,
            self.redundant,
            self.pruned_sleep,
            self.pruned_dedup,
            self.cycle_limited,
            self.depth_clipped,
            self.max_depth,
            self.frontier_peak,
            self.budget_exhausted,
            self.static_prune,
            self.complete(),
            self.space.violating,
            per_kind.join(", "),
            self.digest
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_check() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2], &[1]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn inject_name_mapping_roundtrip() {
        for name in INJECT_NAMES {
            let mut f = FaultInject::default();
            assert!(inject_by_name(&mut f, name), "{name}");
            assert_eq!(inject_names(&f), vec![name.to_string()]);
        }
        let mut f = FaultInject::default();
        assert!(!inject_by_name(&mut f, "nope"));
        assert!(!f.any());
    }

    #[test]
    fn report_json_parses() {
        let mut rep = ExploreReport {
            schedules: 3,
            ..ExploreReport::default()
        };
        rep.space.record(1, &[space::deadlock_violation(&[0])]);
        let doc = sim_core::json::parse(&rep.to_json()).expect("report json parses");
        assert_eq!(
            doc.get("schedules").and_then(sim_core::json::Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            doc.get("violations")
                .and_then(|v| v.get("deadlock"))
                .and_then(sim_core::json::Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn exit_codes() {
        let mut rep = ExploreReport::default();
        assert_eq!(rep.exit_code(), 0);
        rep.budget_exhausted = true;
        assert_eq!(rep.exit_code(), 2);
        rep.space.record(0, &[space::deadlock_violation(&[1])]);
        assert_eq!(rep.exit_code(), 1);
    }
}
