//! Foundation crate for the LockillerTM reproduction: core identifiers,
//! deterministic discrete-event machinery, system configuration (Table I of
//! the paper), statistics plumbing, and small utility types shared by every
//! other crate in the workspace.
//!
//! Nothing in this crate knows about caches, transactions, or workloads; it
//! is the substrate the CMP simulator is assembled from.

pub mod config;
pub mod event;
pub mod fxhash;
pub mod json;
pub mod latency;
pub mod obs;
pub mod prof;
pub mod rng;
pub mod stats;
pub mod types;

pub use config::{CacheGeometry, ConfigError, MemConfig, PolicyConfig, SystemConfig};
pub use event::EventQueue;
pub use latency::{LatencyHist, LatencyStats, TxnClass, TxnLifecycle};
pub use obs::{Metric, MetricSpec, ObsEvent, ObsHandle, ObsSink, SpanEnd, SpanKind, Track};
pub use prof::{HostProf, ProfNode, ProfPhase, ProfReport};
pub use rng::SimRng;
pub use stats::{AbortCause, Phase, RunStats};
pub use types::{Addr, CoreId, Cycle, LineAddr, WORDS_PER_LINE};
