//! Fundamental simulator types: cycles, core identifiers, and the
//! word-granular address space used by guest programs.
//!
//! The simulated machine is word addressed: one [`Addr`] names one 64-bit
//! word. A cache line holds [`WORDS_PER_LINE`] words (64 bytes, as in
//! Table I of the paper), so the line number of an address is `addr >> 3`.

/// Simulated time, in core clock cycles (2 GHz in the paper's Table I).
pub type Cycle = u64;

/// Number of 64-bit words per 64-byte cache line.
pub const WORDS_PER_LINE: u64 = 8;

/// Log2 of [`WORDS_PER_LINE`], used to derive line numbers from addresses.
pub const LINE_SHIFT: u32 = 3;

/// Identifier of a simulated core / tile (0..num_cores).
pub type CoreId = usize;

/// A word address in the simulated shared address space.
///
/// Guest programs and the transactional data-structure library hand these
/// around like pointers; the coherence substrate only ever sees the derived
/// [`LineAddr`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

/// A cache-line number (an [`Addr`] with the offset bits stripped).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The null address. Word 0 is reserved by every allocator so that a
    /// zero word read from memory is never mistaken for a valid pointer.
    pub const NULL: Addr = Addr(0);

    /// Line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Word offset within the containing line (0..8).
    #[inline]
    pub fn offset_in_line(self) -> u64 {
        self.0 & (WORDS_PER_LINE - 1)
    }

    /// Pointer arithmetic: `self + words`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // a word-offset helper, not element-wise Add
    pub fn add(self, words: u64) -> Addr {
        Addr(self.0 + words)
    }

    /// True for the reserved null word.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl LineAddr {
    /// First word of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }
}

impl core::fmt::Debug for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "w{:#x}", self.0)
    }
}

impl core::fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_address() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(7).line(), LineAddr(0));
        assert_eq!(Addr(8).line(), LineAddr(1));
        assert_eq!(Addr(0x1234).line(), LineAddr(0x1234 >> 3));
    }

    #[test]
    fn offset_within_line() {
        assert_eq!(Addr(0).offset_in_line(), 0);
        assert_eq!(Addr(7).offset_in_line(), 7);
        assert_eq!(Addr(8).offset_in_line(), 0);
        assert_eq!(Addr(13).offset_in_line(), 5);
    }

    #[test]
    fn line_base_roundtrip() {
        for w in [0u64, 1, 7, 8, 9, 1024, 0xdead] {
            let a = Addr(w);
            let base = a.line().base();
            assert!(base.0 <= a.0 && a.0 < base.0 + WORDS_PER_LINE);
            assert_eq!(base.offset_in_line(), 0);
        }
    }

    #[test]
    fn add_walks_words() {
        let a = Addr(5);
        assert_eq!(a.add(3), Addr(8));
        assert_eq!(a.add(3).line(), LineAddr(1));
    }

    #[test]
    fn null_is_reserved() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(1).is_null());
    }
}
