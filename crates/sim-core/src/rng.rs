//! Deterministic pseudo-random number generation for workload input
//! synthesis and randomized decisions inside guest programs.
//!
//! The simulator itself is fully deterministic and never consults an RNG;
//! workloads use [`SimRng`] (xoshiro256**) seeded per run so that every
//! evaluated system sees the *same* input and the same guest-level random
//! choices — a prerequisite for the paper's system-vs-system comparisons.

/// xoshiro256** generator. Small, fast, and high quality; state is seeded
/// via SplitMix64 so that similar seeds diverge immediately.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    /// Uses Lemire's multiply-shift rejection method for lack of bias.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let l = m as u64;
            if l >= bound || l >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derive an independent stream (e.g., one per thread) from this one.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input untouched"
        );
    }

    #[test]
    fn forked_streams_independent() {
        let mut base = SimRng::new(11);
        let mut f1 = base.fork(0);
        let mut f2 = base.fork(1);
        let same = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SimRng::new(13);
        let mut buckets = [0u32; 16];
        let n = 16_000;
        for _ in 0..n {
            buckets[r.below(16) as usize] += 1;
        }
        let expect = n / 16;
        for &b in &buckets {
            assert!((b as i64 - expect as i64).unsigned_abs() < expect as u64 / 4);
        }
    }
}
