//! Per-transaction latency accounting: a deterministic log-bucketed
//! histogram ([`LatencyHist`]), the outcome-class taxonomy
//! ([`TxnClass`]), the per-run collection carried in `RunStats`
//! ([`LatencyStats`]), and the per-core in-flight tracker the engine
//! stamps lifecycle phases with ([`TxnLifecycle`]).
//!
//! ## Bucketing
//!
//! HDR-style: values below `2^SUB_BITS` get exact unit buckets; above
//! that, each power-of-2 octave is split into `2^SUB_BITS` linear
//! sub-buckets, bounding the relative quantile error at
//! `2^-SUB_BITS` (6.25%). Everything is integer arithmetic on `u64`
//! cycle counts — recording, merging, and quantiles are exactly
//! reproducible on any host, which is what lets histograms ride inside
//! `RunStats` through the tmlab cache and the `--jobs` determinism
//! oracle without ever perturbing byte-identical results.
//!
//! ## NaN-freedom
//!
//! Every query on an empty histogram returns 0 (or 0.0 for
//! [`LatencyHist::mean`]), matching the `RunStats` ratio-helper
//! convention: summary tables and JSON exports never contain NaN/Inf.

use crate::fxhash::FxHasher;
use crate::json::Json;
use crate::stats::AbortCause;
use crate::types::Cycle;
use std::hash::{Hash, Hasher};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets (values below `2^SUB_BITS` are exact).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Total addressable buckets for the full `u64` range.
/// msb=63 ⇒ shift=59 ⇒ index `(60 << SUB_BITS) + 15`.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB as usize;

/// Bucket index of a value (monotone, contiguous from 0).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    (((shift as usize) + 1) << SUB_BITS) + (((v >> shift) & (SUB - 1)) as usize)
}

/// Inclusive upper bound of bucket `i` (the histogram's reported
/// quantile value for ranks landing in that bucket).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32 - 1;
    let sub = (i as u64) & (SUB - 1);
    ((SUB + sub) << octave) + (1u64 << octave) - 1
}

/// Deterministic log-bucketed latency histogram with exact merge.
///
/// Storage is allocated lazily on first record, so an untouched
/// histogram costs three words; two histograms compare equal iff they
/// hold the same recorded multiset up to bucket resolution (an empty
/// dense vector and no vector are the same state — `counts` is
/// non-empty iff `count > 0`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LatencyHist {
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Record one value (simulated cycles).
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v` at once (exact-merge building block).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
            self.min = v;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v * n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Exact merge: the result is indistinguishable from having recorded
    /// both histograms' inputs into one (bucket-wise addition; sum, min,
    /// max, and count all combine losslessly).
    pub fn merge(&mut self, other: &LatencyHist) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
            self.min = other.min;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean; 0.0 (never NaN) when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (0.0 ..= 1.0): the inclusive upper edge
    /// of the bucket holding rank `ceil(q * count)`, clamped to the
    /// recorded `[min, max]`. Integer-exact for values below `2^SUB_BITS`;
    /// within one sub-bucket (6.25%) otherwise. 0 when empty — never
    /// NaN/Inf for any input.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without floating-point rounding surprises at q=1.0.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty buckets as `(index, upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, bucket_upper(i), n))
    }

    /// Single-line JSON: exact integers plus a sparse bucket list, so
    /// the encoding is byte-stable for a given recorded multiset.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        let mut first = true;
        for (i, _, n) in self.nonzero_buckets() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{i},{n}]"));
        }
        out.push_str("]}");
        out
    }

    /// Decode a [`LatencyHist::to_json`] object; the round-trip is exact
    /// (including re-encoding byte-identity).
    pub fn from_json_value(v: &Json) -> Result<LatencyHist, String> {
        let num = |key: &str| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(0),
                Some(j) => j
                    .as_f64()
                    .map(|f| f as u64)
                    .ok_or_else(|| format!("latency hist field {key} is not a number")),
            }
        };
        let mut h = LatencyHist {
            count: num("count")?,
            sum: num("sum")?,
            min: num("min")?,
            max: num("max")?,
            counts: Vec::new(),
        };
        if let Some(buckets) = v.get("buckets").and_then(Json::as_arr) {
            if !buckets.is_empty() {
                h.counts = vec![0; NUM_BUCKETS];
                for b in buckets {
                    let pair = b
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or("latency hist bucket is not an [index,count] pair")?;
                    let i = pair[0].as_f64().ok_or("bucket index is not a number")? as usize;
                    let n = pair[1].as_f64().ok_or("bucket count is not a number")? as u64;
                    if i >= NUM_BUCKETS {
                        return Err(format!("bucket index {i} out of range"));
                    }
                    h.counts[i] += n;
                }
            }
        }
        if h.count == 0 {
            // Normalize: an empty hist stores no dense vector and min=0,
            // so decode(encode(h)) == h structurally, not just logically.
            h.counts = Vec::new();
            h.min = 0;
        }
        Ok(h)
    }

    /// Order-insensitive content digest (regression oracle for
    /// bit-determinism tests).
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        (self.count, self.sum, self.min(), self.max).hash(&mut h);
        for (i, _, n) in self.nonzero_buckets() {
            (i, n).hash(&mut h);
        }
        h.finish()
    }
}

/// Outcome class of one completed transaction lifecycle (commit
/// classes) or one aborted attempt (retry classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnClass {
    /// Lifecycle ended in a plain speculative (HTM) commit.
    HtmCommit,
    /// Lifecycle ended in an STL-mode commit after a proactive switch.
    StlCommit,
    /// Lifecycle ended on the lock path (fallback section, TL-mode
    /// HTMLock transaction, or a CGL critical section).
    LockCommit,
    /// One aborted speculative attempt, keyed by its abort cause; the
    /// recorded latency is the attempt's start→abort span (the wasted
    /// work the retry pays for).
    Retry(AbortCause),
}

impl TxnClass {
    pub const COUNT: usize = 3 + AbortCause::ALL.len();

    pub const ALL: [TxnClass; TxnClass::COUNT] = [
        TxnClass::HtmCommit,
        TxnClass::StlCommit,
        TxnClass::LockCommit,
        TxnClass::Retry(AbortCause::Mc),
        TxnClass::Retry(AbortCause::Lock),
        TxnClass::Retry(AbortCause::Mutex),
        TxnClass::Retry(AbortCause::NonTran),
        TxnClass::Retry(AbortCause::Of),
        TxnClass::Retry(AbortCause::Fault),
    ];

    pub fn index(self) -> usize {
        match self {
            TxnClass::HtmCommit => 0,
            TxnClass::StlCommit => 1,
            TxnClass::LockCommit => 2,
            TxnClass::Retry(cause) => 3 + cause.index(),
        }
    }

    /// Stable snake_case name used by JSON exports and summary tables.
    pub fn name(self) -> &'static str {
        match self {
            TxnClass::HtmCommit => "htm_commit",
            TxnClass::StlCommit => "stl_commit",
            TxnClass::LockCommit => "lock_commit",
            TxnClass::Retry(AbortCause::Mc) => "retry_mc",
            TxnClass::Retry(AbortCause::Lock) => "retry_lock",
            TxnClass::Retry(AbortCause::Mutex) => "retry_mutex",
            TxnClass::Retry(AbortCause::NonTran) => "retry_non_tran",
            TxnClass::Retry(AbortCause::Of) => "retry_of",
            TxnClass::Retry(AbortCause::Fault) => "retry_fault",
        }
    }
}

/// Every latency histogram one run collects: per-outcome-class total
/// latencies plus the three lifecycle-phase distributions the paper's
/// lower-bound argument turns on (park/wait, fallback-lock hold,
/// start→first-abort).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Per-class latency, indexed by [`TxnClass::index`]. Commit classes
    /// record the whole lifecycle (first attempt's start → commit,
    /// across every retry); retry classes record each aborted attempt.
    pub classes: [LatencyHist; TxnClass::COUNT],
    /// Park/wait durations (reject → wake-up/retry/timeout/abort).
    pub park: LatencyHist,
    /// Fallback/TL/STL lock hold durations (acquisition → release).
    pub fallback_hold: LatencyHist,
    /// Start → first abort of each lifecycle that aborted at least once.
    pub first_abort: LatencyHist,
}

impl LatencyStats {
    pub fn class(&self, c: TxnClass) -> &LatencyHist {
        &self.classes[c.index()]
    }

    pub fn record_class(&mut self, c: TxnClass, v: Cycle) {
        self.classes[c.index()].record(v);
    }

    /// Exact element-wise merge (see [`LatencyHist::merge`]).
    pub fn merge(&mut self, other: &LatencyStats) {
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.merge(b);
        }
        self.park.merge(&other.park);
        self.fallback_hold.merge(&other.fallback_hold);
        self.first_abort.merge(&other.first_abort);
    }

    /// Single-line JSON object, field order fixed: every class key is
    /// always present (empty classes encode as empty histograms), so the
    /// schema-agnostic diff joins runs on identical paths.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"classes\":{");
        for (i, c) in TxnClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.class(*c).to_json()));
        }
        out.push_str(&format!(
            "}},\"park\":{},\"fallback_hold\":{},\"first_abort\":{}}}",
            self.park.to_json(),
            self.fallback_hold.to_json(),
            self.first_abort.to_json()
        ));
        out
    }

    /// Decode a [`LatencyStats::to_json`] object (exact round-trip;
    /// missing keys decode to empty histograms).
    pub fn from_json_value(v: &Json) -> Result<LatencyStats, String> {
        let mut s = LatencyStats::default();
        if let Some(classes) = v.get("classes") {
            for c in TxnClass::ALL {
                if let Some(h) = classes.get(c.name()) {
                    s.classes[c.index()] = LatencyHist::from_json_value(h)?;
                }
            }
        }
        for (key, slot) in [
            ("park", &mut s.park),
            ("fallback_hold", &mut s.fallback_hold),
            ("first_abort", &mut s.first_abort),
        ] {
            if let Some(h) = v.get(key) {
                *slot = LatencyHist::from_json_value(h)?;
            }
        }
        Ok(s)
    }

    /// Content digest over every histogram (determinism oracle).
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        for c in &self.classes {
            c.digest().hash(&mut h);
        }
        self.park.digest().hash(&mut h);
        self.fallback_hold.digest().hash(&mut h);
        self.first_abort.digest().hash(&mut h);
        h.finish()
    }
}

/// Per-core in-flight lifecycle tracker. The engine owns one per core,
/// *outside* the fingerprinted controller state: lifecycle stamps are
/// volatile accounting, so tmverify state fingerprints (and therefore
/// exploration digests) are unchanged by their presence.
///
/// A lifecycle covers one static atomic section from its first attempt's
/// start to the commit that finally retires it — speculative retries,
/// parks, and a fallback acquisition all extend the same lifecycle.
#[derive(Clone, Debug, Default)]
pub struct TxnLifecycle {
    active: bool,
    /// First attempt's start cycle (total-latency origin).
    first_start: Cycle,
    /// Current attempt's start cycle (retry-latency origin).
    attempt_start: Cycle,
    first_abort_recorded: bool,
    park_since: Option<Cycle>,
    hold_since: Option<Cycle>,
}

impl TxnLifecycle {
    /// A speculative attempt starts (`xbegin`). Continues the current
    /// lifecycle after an abort; starts a fresh one otherwise.
    pub fn begin_attempt(&mut self, now: Cycle) {
        if !self.active {
            self.active = true;
            self.first_start = now;
            self.first_abort_recorded = false;
        }
        self.attempt_start = now;
    }

    /// A lock section is acquired (fallback begin, TL/STL grant).
    /// Starts a lifecycle if none is active (CGL critical sections) and
    /// opens the hold interval.
    pub fn begin_hold(&mut self, now: Cycle) {
        if !self.active {
            self.begin_attempt(now);
        }
        self.hold_since = Some(now);
    }

    /// The core parked (reject → RetryLater / WaitWakeup). Parks are
    /// tracked even outside a lifecycle: non-transactional accesses park
    /// too, and their wait latency is part of the distribution.
    pub fn park(&mut self, now: Cycle) {
        self.park_since = Some(now);
    }

    /// The park ended (wake-up, retry pause, or safety-net timeout);
    /// records the park duration. Idempotent when not parked.
    pub fn unpark(&mut self, now: Cycle, stats: &mut LatencyStats) {
        if let Some(since) = self.park_since.take() {
            stats.park.record(now - since);
        }
    }

    /// One speculative attempt aborted: close any park, record the
    /// attempt's span under its retry class, and stamp start→first-abort
    /// once per lifecycle. The lifecycle stays open for the retry.
    pub fn on_abort(&mut self, now: Cycle, cause: AbortCause, stats: &mut LatencyStats) {
        self.unpark(now, stats);
        if self.active {
            stats.record_class(TxnClass::Retry(cause), now - self.attempt_start);
            if !self.first_abort_recorded {
                self.first_abort_recorded = true;
                stats.first_abort.record(now - self.first_start);
            }
        }
        self.hold_since = None;
    }

    /// The lifecycle retires under `class`: records total start→commit
    /// latency, closes an open lock-hold interval, and resets.
    pub fn commit(&mut self, now: Cycle, class: TxnClass, stats: &mut LatencyStats) {
        self.unpark(now, stats);
        if let Some(since) = self.hold_since.take() {
            stats.fallback_hold.record(now - since);
        }
        if self.active {
            stats.record_class(class, now - self.first_start);
        }
        self.active = false;
        self.first_abort_recorded = false;
    }

    pub fn is_active(&self) -> bool {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        // Exhaustive over the low range, spot checks above.
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1u64..100_000 {
            let i = bucket_index(v);
            assert!(i == prev || i == prev + 1, "gap at {v}: {prev} -> {i}");
            prev = i;
        }
        for shift in 4..63 {
            let v = 1u64 << shift;
            assert!(bucket_index(v) > bucket_index(v - 1));
            assert_eq!(bucket_index(v), bucket_index(v + (1 << (shift - 4)) - 1));
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_upper_is_inclusive_edge() {
        for v in 0u64..10_000 {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper({i}) = {upper} < {v}");
            assert_eq!(bucket_index(upper), i, "upper edge left its bucket at {v}");
            if upper < u64::MAX {
                assert!(bucket_index(upper + 1) == i + 1);
            }
        }
        // Values below 2^SUB_BITS are exact.
        for v in 0..SUB {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_are_exact_below_sub_range() {
        let mut h = LatencyHist::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.p90(), 9);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_error_is_bounded_by_sub_bucket_width() {
        let mut h = LatencyHist::new();
        for v in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        for (q, exact) in [(0.2, 100u64), (0.4, 1_000), (0.6, 10_000), (1.0, 1_000_000)] {
            let got = h.quantile(q);
            assert!(got >= exact, "quantile({q}) = {got} < {exact}");
            let err = (got - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / SUB as f64, "relative error {err} at q={q}");
        }
    }

    #[test]
    fn empty_hist_is_nan_and_inf_free() {
        let h = LatencyHist::new();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn single_value_hist_quantiles() {
        let mut h = LatencyHist::new();
        h.record(777);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 777, "clamped to the only recorded value");
        }
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut all = LatencyHist::new();
        for v in [3u64, 17, 900, 65_000] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 17, 40_000_000] {
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
        assert_eq!(ab.to_json(), all.to_json());
        // Merging an empty histogram is the identity, both ways.
        let empty = LatencyHist::new();
        let mut ae = a.clone();
        ae.merge(&empty);
        assert_eq!(ae, a);
        let mut ea = LatencyHist::new();
        ea.merge(&a);
        assert_eq!(ea, a);
    }

    #[test]
    fn json_round_trip_is_byte_exact() {
        let mut h = LatencyHist::new();
        for v in [0u64, 1, 15, 16, 100, 12_345, 9_999_999] {
            h.record_n(v, v % 5 + 1);
        }
        let doc = h.to_json();
        let back = LatencyHist::from_json_value(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json(), doc);
        // Empty round-trips to the structurally-empty state.
        let e = LatencyHist::new();
        let back = LatencyHist::from_json_value(&json::parse(&e.to_json()).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.to_json(), e.to_json());
    }

    #[test]
    fn txn_class_indices_cover_and_are_unique() {
        let mut seen = [false; TxnClass::COUNT];
        for c in TxnClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut names: Vec<&str> = TxnClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TxnClass::COUNT);
    }

    #[test]
    fn latency_stats_json_round_trip_and_digest() {
        let mut s = LatencyStats::default();
        s.record_class(TxnClass::HtmCommit, 120);
        s.record_class(TxnClass::Retry(AbortCause::Mc), 48);
        s.park.record(32);
        s.fallback_hold.record(500);
        s.first_abort.record(48);
        let doc = s.to_json();
        let back = LatencyStats::from_json_value(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), doc);
        assert_eq!(back.digest(), s.digest());
        let empty = LatencyStats::default();
        assert_ne!(empty.digest(), s.digest());
        let doc = empty.to_json();
        let back = LatencyStats::from_json_value(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn lifecycle_stamps_known_cycles() {
        let mut stats = LatencyStats::default();
        let mut lc = TxnLifecycle::default();
        // Attempt 1: starts at 100, parks 150..180, aborts at 200.
        lc.begin_attempt(100);
        lc.park(150);
        lc.unpark(180, &mut stats);
        lc.on_abort(200, AbortCause::Mc, &mut stats);
        // Attempt 2: starts at 210, commits at 300.
        lc.begin_attempt(210);
        lc.commit(300, TxnClass::HtmCommit, &mut stats);
        assert_eq!(stats.park.count(), 1);
        assert_eq!(stats.park.max(), 30);
        let retry = stats.class(TxnClass::Retry(AbortCause::Mc));
        assert_eq!(retry.count(), 1);
        assert_eq!(retry.max(), 100, "attempt span 100..200");
        assert_eq!(stats.first_abort.max(), 100);
        let htm = stats.class(TxnClass::HtmCommit);
        assert_eq!(htm.count(), 1);
        assert_eq!(htm.max(), 200, "lifecycle span 100..300");
        assert!(!lc.is_active());
        // Lock path: hold 400..460 on a fresh lifecycle.
        lc.begin_hold(400);
        lc.commit(460, TxnClass::LockCommit, &mut stats);
        assert_eq!(stats.fallback_hold.count(), 1);
        assert_eq!(stats.fallback_hold.max(), 60);
        assert_eq!(stats.class(TxnClass::LockCommit).max(), 60);
    }

    #[test]
    fn lifecycle_abort_to_fallback_counts_whole_span() {
        let mut stats = LatencyStats::default();
        let mut lc = TxnLifecycle::default();
        lc.begin_attempt(0);
        lc.on_abort(50, AbortCause::Of, &mut stats);
        // Retry budget exhausted: the guest takes the fallback lock.
        lc.begin_hold(80);
        lc.commit(130, TxnClass::LockCommit, &mut stats);
        let lock = stats.class(TxnClass::LockCommit);
        assert_eq!(lock.max(), 130, "total includes the aborted attempt");
        assert_eq!(stats.fallback_hold.max(), 50, "hold is acquisition-scoped");
    }
}
