//! A small, fast, deterministic hasher (the FxHash multiply-rotate scheme
//! used by rustc) plus map/set aliases.
//!
//! The simulator keys many hot tables by address or line number; SipHash's
//! HashDoS protection is irrelevant here and its cost is not, so every
//! internal table uses these aliases. Determinism also matters: iteration
//! never drives behaviour, but hashing itself must not depend on process
//! randomness for runs to be bit-reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: a very fast non-cryptographic hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Hash a single u64 with the Fx scheme (used by the Bloom signatures).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = hash_u64(0xdead_beef);
        let b = hash_u64(0xdead_beef);
        assert_eq!(a, b);
        assert_ne!(hash_u64(1), hash_u64(2));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distributes_sequential_keys() {
        // Cheap sanity check that sequential integers don't all collide in
        // low bits after hashing.
        let mut low_bits = FxHashSet::default();
        for i in 0..64u64 {
            low_bits.insert(hash_u64(i) & 0x3f);
        }
        assert!(low_bits.len() > 16, "poor dispersion: {}", low_bits.len());
    }

    #[test]
    fn byte_writes_match_padding_rule() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(h1.finish(), h2.finish());
    }
}
