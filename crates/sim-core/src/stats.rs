//! Statistics collected during a simulation run: the execution-time
//! breakdown of Figs. 9/11, the abort-cause taxonomy of Fig. 10, and the
//! commit-rate counters of Fig. 8.
//!
//! [`RunStats`] also round-trips through a compact JSON object
//! ([`RunStats::to_json`] / [`RunStats::from_json`]) so the `tmlab`
//! persistent run cache can store completed simulation points on disk.
//! Every field is an integer (or a list / optional string of them), so
//! the round-trip is exact.

use crate::json::{escape, Json};
use crate::latency::LatencyStats;
use crate::types::{CoreId, Cycle};

/// Execution-time categories, matching the paper's breakdown figures.
///
/// `Htm` and `Aborted` split speculative execution by its eventual outcome;
/// `SwitchLock` is Fig. 11's extra category for transactions that finished
/// in STL mode after a successful proactive switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Speculative transaction cycles that ended in a commit.
    Htm,
    /// Speculative transaction cycles that ended in an abort.
    Aborted,
    /// Lock-transaction cycles (fallback path / CGL critical sections /
    /// TL-mode HTMLock transactions).
    Lock,
    /// Cycles of a transaction that committed in STL mode after a
    /// successful proactive switch (Fig. 11's `switchLock`).
    SwitchLock,
    /// Non-transactional work and barrier waits.
    NonTran,
    /// Spinning on / waiting for the fallback (or CGL) lock.
    WaitLock,
    /// Abort processing and post-reject stalls (rollback).
    Rollback,
}

impl Phase {
    pub const ALL: [Phase; 7] = [
        Phase::Htm,
        Phase::Aborted,
        Phase::Lock,
        Phase::SwitchLock,
        Phase::NonTran,
        Phase::WaitLock,
        Phase::Rollback,
    ];

    pub fn index(self) -> usize {
        match self {
            Phase::Htm => 0,
            Phase::Aborted => 1,
            Phase::Lock => 2,
            Phase::SwitchLock => 3,
            Phase::NonTran => 4,
            Phase::WaitLock => 5,
            Phase::Rollback => 6,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Htm => "htm",
            Phase::Aborted => "aborted",
            Phase::Lock => "lock",
            Phase::SwitchLock => "switchLock",
            Phase::NonTran => "non-tran",
            Phase::WaitLock => "waitlock",
            Phase::Rollback => "rollback",
        }
    }
}

/// Why a transaction aborted — the six categories of Fig. 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Conflict with another HTM transaction.
    Mc,
    /// Conflict with a lock transaction (HTMLock TL/STL mode).
    Lock,
    /// Conflict with the fallback path (the fallback-lock line itself:
    /// lock-subscription aborts).
    Mutex,
    /// Conflict with a non-transactional access (excluding lock/mutex).
    NonTran,
    /// Cache overflow (capacity / associativity, including LLC
    /// back-invalidation).
    Of,
    /// Exception (demand-paging fault inside the transaction).
    Fault,
}

impl AbortCause {
    pub const ALL: [AbortCause; 6] = [
        AbortCause::Mc,
        AbortCause::Lock,
        AbortCause::Mutex,
        AbortCause::NonTran,
        AbortCause::Of,
        AbortCause::Fault,
    ];

    pub fn index(self) -> usize {
        match self {
            AbortCause::Mc => 0,
            AbortCause::Lock => 1,
            AbortCause::Mutex => 2,
            AbortCause::NonTran => 3,
            AbortCause::Of => 4,
            AbortCause::Fault => 5,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            AbortCause::Mc => "mc",
            AbortCause::Lock => "lock",
            AbortCause::Mutex => "mutex",
            AbortCause::NonTran => "non_tran",
            AbortCause::Of => "of",
            AbortCause::Fault => "fault",
        }
    }
}

/// Per-core phase accounting. The engine switches the current phase as the
/// core moves through its program; speculative cycles park in a pending
/// bucket until the transaction's fate (commit/abort) is known.
#[derive(Clone, Debug, Default)]
pub struct PhaseTracker {
    bucket: [Cycle; 7],
    /// Cycles of the in-flight transaction attempt, attributed on outcome.
    pending_spec: Cycle,
}

impl PhaseTracker {
    pub fn add(&mut self, phase: Phase, cycles: Cycle) {
        self.bucket[phase.index()] += cycles;
    }

    /// Accumulate speculative cycles whose outcome is not yet known.
    pub fn add_pending_spec(&mut self, cycles: Cycle) {
        self.pending_spec += cycles;
    }

    /// Resolve the pending speculative cycles into `Htm` (committed) or
    /// `Aborted`, or `SwitchLock` for an STL-mode finish.
    pub fn resolve_spec(&mut self, into: Phase) {
        debug_assert!(matches!(
            into,
            Phase::Htm | Phase::Aborted | Phase::SwitchLock
        ));
        self.bucket[into.index()] += self.pending_spec;
        self.pending_spec = 0;
    }

    pub fn pending(&self) -> Cycle {
        self.pending_spec
    }

    pub fn get(&self, phase: Phase) -> Cycle {
        self.bucket[phase.index()]
    }

    pub fn total(&self) -> Cycle {
        self.bucket.iter().sum::<Cycle>() + self.pending_spec
    }
}

/// `num / den` as f64, 0.0 when the denominator is 0 (never NaN).
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Aggregate statistics for one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Simulated cycles from parallel-region start to last thread exit.
    pub cycles: Cycle,
    /// Number of worker threads simulated.
    pub threads: usize,
    /// Speculative transaction attempts started (xbegin count).
    pub tx_starts: u64,
    /// Committed HTM transactions (speculative commits, incl. STL finishes).
    pub commits: u64,
    /// Commits that finished in STL mode after a proactive switch.
    pub stl_commits: u64,
    /// Critical sections executed on the fallback/CGL lock path.
    pub lock_commits: u64,
    /// Aborts by cause.
    pub aborts: [u64; 6],
    /// Requests rejected by the recovery mechanism (NACKs observed).
    pub rejects: u64,
    /// Requests rejected by the LLC overflow signatures.
    pub sig_rejects: u64,
    /// Wake-up messages delivered.
    pub wakeups: u64,
    /// Parked requests that hit the safety-net timeout (should be 0).
    pub wakeup_timeouts: u64,
    /// Successful proactive switches to STL mode.
    pub switches_granted: u64,
    /// Denied proactive switch attempts.
    pub switches_denied: u64,
    /// Transactions that fell back to the lock path.
    pub fallbacks: u64,
    /// NoC messages sent.
    pub messages: u64,
    /// Total NoC hop traversals.
    pub hops: u64,
    /// Total NoC flit-hop traversals (hops weighted by message size).
    pub flit_hops: u64,
    /// Cycles NoC messages spent queueing behind busy links.
    pub noc_queue_cycles: u64,
    /// Busy (flit-carrying) cycles per directed mesh link, indexed
    /// `node * 4 + direction` (E/W/N/S). Empty if the run recorded no
    /// link-level traffic breakdown.
    pub noc_link_busy: Vec<u64>,
    /// LLC tag hits per bank.
    pub bank_hits: Vec<u64>,
    /// LLC tag misses per bank.
    pub bank_misses: Vec<u64>,
    /// Requests that queued behind a busy directory entry, per bank.
    pub bank_queued: Vec<u64>,
    /// High-water mark of the per-bank directory queue depth.
    pub bank_queue_peak: Vec<u64>,
    /// Trace events dropped because the bounded trace store filled up
    /// (0 on untraced runs and on traced runs that fit the cap).
    pub trace_dropped: u64,
    /// Sum over committed transactions of their read-set size (L1 lines).
    pub rs_lines_sum: u64,
    /// Sum over committed transactions of their write-set size (L1 lines).
    pub ws_lines_sum: u64,
    /// Sum over committed transactions of their duration in cycles
    /// (xbegin to xend, final successful attempt only).
    pub tx_cycles_sum: u64,
    /// Discrete events the engine's main loop popped and dispatched
    /// (simulator self-metric; deterministic for a given spec).
    pub events_processed: u64,
    /// High-water mark of the engine's event-queue depth (self-metric).
    pub event_queue_peak: u64,
    /// Summed per-core phase breakdown.
    pub phases: [Cycle; 7],
    /// Per-core totals (diagnostics).
    pub per_core_cycles: Vec<Cycle>,
    /// Per-transaction latency distributions: per-outcome-class total
    /// latencies plus park/fallback-hold/first-abort phase histograms.
    pub latency: LatencyStats,
    /// First single-writer/multiple-reader violation the live checker
    /// observed, if any (checked mode only): a human-readable description
    /// of the offending line and sharer set. `None` on a correct run.
    pub swmr_violation: Option<String>,
}

impl RunStats {
    pub fn new(threads: usize) -> RunStats {
        RunStats {
            threads,
            per_core_cycles: vec![0; threads],
            ..Default::default()
        }
    }

    pub fn record_abort(&mut self, cause: AbortCause) {
        self.aborts[cause.index()] += 1;
    }

    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Commit rate as defined in the paper's Fig. 8: committed speculative
    /// attempts over all speculative attempts. 0.0 on an empty run — every
    /// ratio helper returns 0.0 rather than NaN when its denominator is 0.
    pub fn commit_rate(&self) -> f64 {
        ratio(self.commits, self.commits + self.total_aborts())
    }

    pub fn phase(&self, p: Phase) -> Cycle {
        self.phases[p.index()]
    }

    pub fn abort_count(&self, c: AbortCause) -> u64 {
        self.aborts[c.index()]
    }

    /// Mean read-set size of committed transactions, in cache lines.
    pub fn avg_read_set(&self) -> f64 {
        ratio(self.rs_lines_sum, self.commits)
    }

    /// Mean write-set size of committed transactions, in cache lines.
    pub fn avg_write_set(&self) -> f64 {
        ratio(self.ws_lines_sum, self.commits)
    }

    /// Mean committed-transaction length in cycles.
    pub fn avg_tx_len(&self) -> f64 {
        ratio(self.tx_cycles_sum, self.commits)
    }

    /// Fraction of aborts attributed to `cause` (Fig. 10's y-axis).
    pub fn abort_fraction(&self, cause: AbortCause) -> f64 {
        ratio(self.aborts[cause.index()], self.total_aborts())
    }

    /// Speculative cycles thrown away by aborts — the forensics layer's
    /// "wasted work" total (its conflict matrix must reconcile with this
    /// exactly).
    pub fn aborted_cycles(&self) -> Cycle {
        self.phase(Phase::Aborted)
    }

    /// Fraction of all attributed cycles that were wasted in aborted
    /// speculation. NaN-free: 0.0 on an empty run.
    pub fn wasted_fraction(&self) -> f64 {
        ratio(self.phase(Phase::Aborted), self.phases.iter().sum())
    }

    /// Mean hops per NoC message.
    pub fn avg_hops_per_msg(&self) -> f64 {
        ratio(self.hops, self.messages)
    }

    /// Utilization of one directed mesh link: busy cycles over run cycles.
    pub fn link_utilization(&self, link: usize) -> f64 {
        let busy = self.noc_link_busy.get(link).copied().unwrap_or(0);
        ratio(busy, self.cycles)
    }

    /// Utilization of the busiest mesh link (the NoC hot spot).
    pub fn max_link_utilization(&self) -> f64 {
        (0..self.noc_link_busy.len())
            .map(|l| self.link_utilization(l))
            .fold(0.0, f64::max)
    }

    /// Aggregate LLC tag hit rate across all banks.
    pub fn llc_hit_rate(&self) -> f64 {
        let hits: u64 = self.bank_hits.iter().sum();
        let misses: u64 = self.bank_misses.iter().sum();
        ratio(hits, hits + misses)
    }

    /// Schema version of the JSON encoding below; bumped whenever a field
    /// is added, removed, or renamed. Persisted caches embed it and
    /// discard entries written under a different schema.
    pub const JSON_SCHEMA: u64 = 2;

    /// Encode as a single-line JSON object (field order fixed).
    pub fn to_json(&self) -> String {
        fn arr(v: &[u64]) -> String {
            let items: Vec<String> = v.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        }
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"cycles\":{},", self.cycles));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str(&format!("\"tx_starts\":{},", self.tx_starts));
        out.push_str(&format!("\"commits\":{},", self.commits));
        out.push_str(&format!("\"stl_commits\":{},", self.stl_commits));
        out.push_str(&format!("\"lock_commits\":{},", self.lock_commits));
        out.push_str(&format!("\"aborts\":{},", arr(&self.aborts)));
        out.push_str(&format!("\"rejects\":{},", self.rejects));
        out.push_str(&format!("\"sig_rejects\":{},", self.sig_rejects));
        out.push_str(&format!("\"wakeups\":{},", self.wakeups));
        out.push_str(&format!("\"wakeup_timeouts\":{},", self.wakeup_timeouts));
        out.push_str(&format!("\"switches_granted\":{},", self.switches_granted));
        out.push_str(&format!("\"switches_denied\":{},", self.switches_denied));
        out.push_str(&format!("\"fallbacks\":{},", self.fallbacks));
        out.push_str(&format!("\"messages\":{},", self.messages));
        out.push_str(&format!("\"hops\":{},", self.hops));
        out.push_str(&format!("\"flit_hops\":{},", self.flit_hops));
        out.push_str(&format!("\"noc_queue_cycles\":{},", self.noc_queue_cycles));
        out.push_str(&format!("\"noc_link_busy\":{},", arr(&self.noc_link_busy)));
        out.push_str(&format!("\"bank_hits\":{},", arr(&self.bank_hits)));
        out.push_str(&format!("\"bank_misses\":{},", arr(&self.bank_misses)));
        out.push_str(&format!("\"bank_queued\":{},", arr(&self.bank_queued)));
        out.push_str(&format!(
            "\"bank_queue_peak\":{},",
            arr(&self.bank_queue_peak)
        ));
        out.push_str(&format!("\"trace_dropped\":{},", self.trace_dropped));
        out.push_str(&format!("\"rs_lines_sum\":{},", self.rs_lines_sum));
        out.push_str(&format!("\"ws_lines_sum\":{},", self.ws_lines_sum));
        out.push_str(&format!("\"tx_cycles_sum\":{},", self.tx_cycles_sum));
        out.push_str(&format!("\"events_processed\":{},", self.events_processed));
        out.push_str(&format!("\"event_queue_peak\":{},", self.event_queue_peak));
        out.push_str(&format!("\"phases\":{},", arr(&self.phases)));
        out.push_str(&format!(
            "\"per_core_cycles\":{},",
            arr(&self.per_core_cycles)
        ));
        out.push_str(&format!("\"latency\":{},", self.latency.to_json()));
        match &self.swmr_violation {
            Some(msg) => out.push_str(&format!("\"swmr_violation\":\"{}\"", escape(msg))),
            None => out.push_str("\"swmr_violation\":null"),
        }
        out.push('}');
        out
    }

    /// Decode a [`RunStats::to_json`] object. Unknown fields are ignored;
    /// missing fields decode to their defaults (schema evolution is
    /// handled one level up by the cache's schema stamp).
    pub fn from_json(s: &str) -> Result<RunStats, String> {
        let v = crate::json::parse(s)?;
        RunStats::from_json_value(&v)
    }

    /// Decode from an already-parsed JSON object (see
    /// [`RunStats::from_json`]).
    pub fn from_json_value(v: &Json) -> Result<RunStats, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("RunStats JSON must be an object".into());
        }
        let num = |key: &str| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(0),
                Some(j) => j
                    .as_f64()
                    .map(|f| f as u64)
                    .ok_or_else(|| format!("field {key} is not a number")),
            }
        };
        let vec = |key: &str| -> Result<Vec<u64>, String> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(j) => j
                    .as_arr()
                    .ok_or_else(|| format!("field {key} is not an array"))?
                    .iter()
                    .map(|e| {
                        e.as_f64()
                            .map(|f| f as u64)
                            .ok_or_else(|| format!("field {key} holds a non-number"))
                    })
                    .collect(),
            }
        };
        let fixed = |key: &str, n: usize| -> Result<Vec<u64>, String> {
            let got = vec(key)?;
            if got.len() == n {
                Ok(got)
            } else if got.is_empty() {
                Ok(vec![0; n])
            } else {
                Err(format!(
                    "field {key} has {} entries, expected {n}",
                    got.len()
                ))
            }
        };
        let mut s = RunStats {
            cycles: num("cycles")?,
            threads: num("threads")? as usize,
            tx_starts: num("tx_starts")?,
            commits: num("commits")?,
            stl_commits: num("stl_commits")?,
            lock_commits: num("lock_commits")?,
            rejects: num("rejects")?,
            sig_rejects: num("sig_rejects")?,
            wakeups: num("wakeups")?,
            wakeup_timeouts: num("wakeup_timeouts")?,
            switches_granted: num("switches_granted")?,
            switches_denied: num("switches_denied")?,
            fallbacks: num("fallbacks")?,
            messages: num("messages")?,
            hops: num("hops")?,
            flit_hops: num("flit_hops")?,
            noc_queue_cycles: num("noc_queue_cycles")?,
            noc_link_busy: vec("noc_link_busy")?,
            bank_hits: vec("bank_hits")?,
            bank_misses: vec("bank_misses")?,
            bank_queued: vec("bank_queued")?,
            bank_queue_peak: vec("bank_queue_peak")?,
            trace_dropped: num("trace_dropped")?,
            rs_lines_sum: num("rs_lines_sum")?,
            ws_lines_sum: num("ws_lines_sum")?,
            tx_cycles_sum: num("tx_cycles_sum")?,
            events_processed: num("events_processed")?,
            event_queue_peak: num("event_queue_peak")?,
            per_core_cycles: vec("per_core_cycles")?,
            latency: match v.get("latency") {
                None => LatencyStats::default(),
                Some(l) => LatencyStats::from_json_value(l)?,
            },
            swmr_violation: match v.get("swmr_violation") {
                None | Some(Json::Null) => None,
                Some(Json::Str(m)) => Some(m.clone()),
                Some(_) => return Err("field swmr_violation is not a string".into()),
            },
            ..RunStats::default()
        };
        let aborts = fixed("aborts", 6)?;
        s.aborts.copy_from_slice(&aborts);
        let phases = fixed("phases", 7)?;
        s.phases.copy_from_slice(&phases);
        Ok(s)
    }

    pub fn merge_core(&mut self, core: CoreId, tracker: &PhaseTracker) {
        for p in Phase::ALL {
            self.phases[p.index()] += tracker.get(p);
        }
        if core < self.per_core_cycles.len() {
            self.per_core_cycles[core] = tracker.total();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_unique() {
        let mut seen = [false; 7];
        for p in Phase::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn abort_cause_indices_unique() {
        let mut seen = [false; 6];
        for c in AbortCause::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }

    #[test]
    fn pending_spec_resolution() {
        let mut t = PhaseTracker::default();
        t.add_pending_spec(100);
        assert_eq!(t.pending(), 100);
        t.resolve_spec(Phase::Aborted);
        assert_eq!(t.get(Phase::Aborted), 100);
        assert_eq!(t.pending(), 0);
        t.add_pending_spec(50);
        t.resolve_spec(Phase::Htm);
        assert_eq!(t.get(Phase::Htm), 50);
        assert_eq!(t.total(), 150);
    }

    #[test]
    fn commit_rate_math() {
        let mut s = RunStats::new(2);
        s.commits = 3;
        s.record_abort(AbortCause::Mc);
        assert!((s.commit_rate() - 0.75).abs() < 1e-12);
        assert!((s.abort_fraction(AbortCause::Mc) - 1.0).abs() < 1e-12);
        assert_eq!(s.abort_fraction(AbortCause::Of), 0.0);
    }

    #[test]
    fn ratio_helpers_are_zero_not_nan_on_empty_runs() {
        let s = RunStats::new(2);
        let values = [
            s.commit_rate(),
            s.abort_fraction(AbortCause::Mc),
            s.avg_read_set(),
            s.avg_write_set(),
            s.avg_tx_len(),
            s.avg_hops_per_msg(),
            s.link_utilization(0),
            s.max_link_utilization(),
            s.llc_hit_rate(),
        ];
        for v in values {
            assert!(!v.is_nan(), "ratio helper returned NaN on empty run");
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn noc_and_llc_ratio_helpers() {
        let mut s = RunStats::new(2);
        s.cycles = 1000;
        s.messages = 4;
        s.hops = 10;
        s.noc_link_busy = vec![0, 500, 250];
        s.bank_hits = vec![3, 1];
        s.bank_misses = vec![1, 3];
        assert!((s.avg_hops_per_msg() - 2.5).abs() < 1e-12);
        assert!((s.link_utilization(1) - 0.5).abs() < 1e-12);
        assert_eq!(s.link_utilization(99), 0.0, "out-of-range link is 0");
        assert!((s.max_link_utilization() - 0.5).abs() < 1e-12);
        assert!((s.llc_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut s = RunStats::new(3);
        s.cycles = 123_456;
        s.tx_starts = 42;
        s.commits = 40;
        s.aborts = [1, 2, 3, 4, 5, 6];
        s.phases = [7, 6, 5, 4, 3, 2, 1];
        s.noc_link_busy = vec![9, 8, 7];
        s.bank_hits = vec![1, 2];
        s.bank_misses = vec![3, 4];
        s.per_core_cycles = vec![10, 20, 30];
        s.events_processed = 9_876;
        s.event_queue_peak = 17;
        s.latency
            .record_class(crate::latency::TxnClass::HtmCommit, 150);
        s.latency
            .record_class(crate::latency::TxnClass::Retry(AbortCause::Mc), 60);
        s.latency.park.record(30);
        s.swmr_violation = Some("line 0x40 \"quoted\"\nsharers {1,2}".to_string());
        let json = s.to_json();
        let back = RunStats::from_json(&json).unwrap();
        assert_eq!(back, s);
        // Re-encoding is byte-identical (the cache's hit guarantee).
        assert_eq!(back.to_json(), json);
        // None round-trips too.
        s.swmr_violation = None;
        assert_eq!(RunStats::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn json_decode_rejects_malformed_fields() {
        assert!(RunStats::from_json("[]").is_err());
        assert!(RunStats::from_json("{\"cycles\":\"x\"}").is_err());
        assert!(RunStats::from_json("{\"aborts\":[1,2]}").is_err());
        assert!(RunStats::from_json("{\"swmr_violation\":5}").is_err());
        // Missing fields default (forward compatibility within a schema).
        let s = RunStats::from_json("{\"cycles\":7}").unwrap();
        assert_eq!(s.cycles, 7);
        assert_eq!(s.commits, 0);
    }

    #[test]
    fn merge_core_accumulates() {
        let mut s = RunStats::new(2);
        let mut t0 = PhaseTracker::default();
        t0.add(Phase::NonTran, 10);
        t0.add(Phase::Lock, 5);
        let mut t1 = PhaseTracker::default();
        t1.add(Phase::NonTran, 7);
        s.merge_core(0, &t0);
        s.merge_core(1, &t1);
        assert_eq!(s.phase(Phase::NonTran), 17);
        assert_eq!(s.phase(Phase::Lock), 5);
        assert_eq!(s.per_core_cycles, vec![15, 7]);
    }
}
