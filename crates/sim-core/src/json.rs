//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser used to validate exported artifacts (the
//! build environment has no serde).

/// Escape a string for embedding in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Objects keep insertion order (duplicate keys:
/// first wins on lookup).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            out.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3.0)
        );
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("nul").is_err());
    }
}
