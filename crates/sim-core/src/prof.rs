//! `tmprof` — host-side, scope-based self-profiling of the simulator.
//!
//! [`HostProf`] measures where *host* wall-clock time goes inside the
//! engine's hot loop: hierarchical phase scopes (event dequeue,
//! per-event-kind dispatch, coherence handling, guest resume, scheduler
//! tie-breaks, response stamping, observability sampling) accumulate
//! into a phase tree keyed by the full scope path. Per phase it records
//! host nanoseconds (total and self), entry counts, and — when the
//! `alloc-count` feature links the `tmprof-alloc` counting allocator —
//! heap allocations and bytes.
//!
//! ## Zero cost when disabled, zero influence when enabled
//!
//! The engine stores an `Option<HostProf>`; every scope site is one
//! `is_some()` branch on the disabled path (the same pattern as
//! [`crate::obs::ObsSink`]). When enabled the profiler only *reads* the
//! host clock and the thread-local allocation counters — it never feeds
//! anything back into the simulation, so simulated cycles, statistics,
//! state fingerprints, and tmverify digests are byte-identical with
//! profiling on or off. Tests assert exactly that.
//!
//! The consuming side (flamegraph / Chrome-trace / JSON exporters)
//! lives in `tmobs::tmprof`; this module owns only what the emitting
//! engine needs, like [`crate::obs`].

use std::time::Instant;

/// One phase scope the engine can enter. The set is closed and small:
/// the profile is a fixed tree, not a sampling stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfPhase {
    /// Whole run (the implicit root).
    Run,
    /// Event-queue pop / front selection.
    Dequeue,
    /// Scheduler tie-break (`Scheduler::pick` on a wide front).
    SchedPick,
    /// Guest `resume`: handing a response to the guest execution core
    /// and receiving its next op (both backends).
    GuestResume,
    /// Dispatch of a `Recv` rendezvous event.
    EvRecv,
    /// Dispatch of a scheduled `Respond` delivery.
    EvRespond,
    /// Dispatch of a NoC message arrival.
    EvNet,
    /// Dispatch of a memory-subsystem notice.
    EvNotice,
    /// Dispatch of a recovery retry.
    EvRetry,
    /// Dispatch of a park-timeout safety net.
    EvParkTimeout,
    /// Coherence / L1 / bank / directory handling (`MemSystem` calls
    /// plus draining its outputs).
    Coherence,
    /// Response stamping: phase attribution, response-history hashing,
    /// latency lifecycle resolution.
    Stamp,
    /// Observability sampling and span emission ticks.
    ObsSample,
}

impl ProfPhase {
    /// Stable name used in every exporter (no `;` — it is the
    /// collapsed-stack path separator).
    pub fn name(self) -> &'static str {
        match self {
            ProfPhase::Run => "run",
            ProfPhase::Dequeue => "dequeue",
            ProfPhase::SchedPick => "sched_pick",
            ProfPhase::GuestResume => "guest_resume",
            ProfPhase::EvRecv => "ev_recv",
            ProfPhase::EvRespond => "ev_respond",
            ProfPhase::EvNet => "ev_net",
            ProfPhase::EvNotice => "ev_notice",
            ProfPhase::EvRetry => "ev_retry",
            ProfPhase::EvParkTimeout => "ev_park_timeout",
            ProfPhase::Coherence => "coherence",
            ProfPhase::Stamp => "stamp",
            ProfPhase::ObsSample => "obs_sample",
        }
    }
}

/// Cumulative `(allocations, bytes)` on this thread — live counters from
/// the `tmprof-alloc` allocator when the `alloc-count` feature is on and
/// the binary registered it, `(0, 0)` otherwise.
#[inline]
fn alloc_counters() -> (u64, u64) {
    #[cfg(feature = "alloc-count")]
    {
        tmprof_alloc::thread_counters()
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        (0, 0)
    }
}

#[derive(Debug)]
struct Node {
    phase: ProfPhase,
    parent: usize,
    /// Children in first-entry order; linear scan — the tree is tiny.
    children: Vec<usize>,
    total_ns: u64,
    self_ns: u64,
    calls: u64,
    allocs: u64,
    alloc_bytes: u64,
}

#[derive(Debug)]
struct Frame {
    node: usize,
    start: Instant,
    /// Host-ns spent in already-closed children of this frame.
    child_ns: u64,
    start_allocs: u64,
    start_bytes: u64,
    child_allocs: u64,
    child_bytes: u64,
}

/// Scope-based hierarchical host profiler. Construct with
/// [`HostProf::start`], bracket phases with [`HostProf::enter`] /
/// [`HostProf::exit`] (strictly nested), then [`HostProf::report`].
#[derive(Debug)]
pub struct HostProf {
    nodes: Vec<Node>,
    stack: Vec<Frame>,
    /// Dispatched-event count and event-queue depth accumulator
    /// ([`HostProf::note_event`]) for mean-depth reporting.
    events: u64,
    q_depth_sum: u64,
}

impl HostProf {
    /// Open the root `run` scope.
    pub fn start() -> HostProf {
        let (a, b) = alloc_counters();
        HostProf {
            nodes: vec![Node {
                phase: ProfPhase::Run,
                parent: usize::MAX,
                children: Vec::new(),
                total_ns: 0,
                self_ns: 0,
                calls: 1,
                allocs: 0,
                alloc_bytes: 0,
            }],
            stack: vec![Frame {
                node: 0,
                start: Instant::now(),
                child_ns: 0,
                start_allocs: a,
                start_bytes: b,
                child_allocs: 0,
                child_bytes: 0,
            }],
            events: 0,
            q_depth_sum: 0,
        }
    }

    /// Enter `phase` as a child of the current scope.
    #[inline]
    pub fn enter(&mut self, phase: ProfPhase) {
        let parent = self.stack.last().expect("profile already finished").node;
        let node = match self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].phase == phase)
        {
            Some(&c) => c,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    phase,
                    parent,
                    children: Vec::new(),
                    total_ns: 0,
                    self_ns: 0,
                    calls: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                });
                self.nodes[parent].children.push(idx);
                idx
            }
        };
        self.nodes[node].calls += 1;
        let (a, b) = alloc_counters();
        self.stack.push(Frame {
            node,
            start: Instant::now(),
            child_ns: 0,
            start_allocs: a,
            start_bytes: b,
            child_allocs: 0,
            child_bytes: 0,
        });
    }

    /// Close the current scope, attributing its elapsed time (minus
    /// already-attributed child time) as self time.
    #[inline]
    pub fn exit(&mut self) {
        let f = self.stack.pop().expect("exit without matching enter");
        assert!(!self.stack.is_empty(), "cannot exit the root scope");
        let elapsed = f.start.elapsed().as_nanos() as u64;
        let (a, b) = alloc_counters();
        let allocs = (a - f.start_allocs).saturating_sub(f.child_allocs);
        let bytes = (b - f.start_bytes).saturating_sub(f.child_bytes);
        let node = &mut self.nodes[f.node];
        node.total_ns += elapsed;
        node.self_ns += elapsed.saturating_sub(f.child_ns);
        node.allocs += allocs;
        node.alloc_bytes += bytes;
        let parent = self.stack.last_mut().expect("checked non-empty");
        parent.child_ns += elapsed;
        parent.child_allocs += a - f.start_allocs;
        parent.child_bytes += b - f.start_bytes;
    }

    /// Record one dispatched event with the instantaneous queue depth
    /// (for events-per-second and mean-depth reporting).
    #[inline]
    pub fn note_event(&mut self, queue_depth: u64) {
        self.events += 1;
        self.q_depth_sum += queue_depth;
    }

    /// Close every open scope (innermost first) and the root, producing
    /// the report. Call exactly once, after the run.
    pub fn report(mut self) -> ProfReport {
        while self.stack.len() > 1 {
            self.exit();
        }
        let f = self.stack.pop().expect("root frame");
        let elapsed = f.start.elapsed().as_nanos() as u64;
        let (a, b) = alloc_counters();
        let root = &mut self.nodes[0];
        root.total_ns = elapsed;
        root.self_ns = elapsed.saturating_sub(f.child_ns);
        root.allocs = (a - f.start_allocs).saturating_sub(f.child_allocs);
        root.alloc_bytes = (b - f.start_bytes).saturating_sub(f.child_bytes);

        // Flatten depth-first so every node appears after its parent and
        // the collapsed-stack export is one pass.
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut order = vec![0usize];
        while let Some(i) = order.pop() {
            let n = &self.nodes[i];
            let path = if n.parent == usize::MAX {
                n.phase.name().to_string()
            } else {
                let parent_path = &out[out
                    .iter()
                    .position(|p: &ProfNode| p.id == n.parent)
                    .expect("parent flattened first")]
                .path;
                format!("{parent_path};{}", n.phase.name())
            };
            out.push(ProfNode {
                id: i,
                path,
                name: n.phase.name(),
                total_ns: n.total_ns,
                self_ns: n.self_ns,
                calls: n.calls,
                allocs: n.allocs,
                alloc_bytes: n.alloc_bytes,
            });
            // Reverse keeps first-entry order after the stack pop.
            for &c in n.children.iter().rev() {
                order.push(c);
            }
        }
        ProfReport {
            nodes: out,
            total_ns: elapsed,
            events: self.events,
            q_depth_sum: self.q_depth_sum,
        }
    }
}

/// One phase in the finished profile, identified by its full
/// `;`-separated scope path (`run;ev_recv;guest_resume`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfNode {
    /// Internal node id (stable within one report; `path` is the key).
    pub id: usize,
    /// Full scope path from the root, `;`-separated.
    pub path: String,
    /// Leaf phase name (last path segment).
    pub name: &'static str,
    /// Host nanoseconds inside this scope, children included.
    pub total_ns: u64,
    /// Host nanoseconds inside this scope, children excluded. Self
    /// times over the whole tree sum exactly to the root total.
    pub self_ns: u64,
    /// Times the scope was entered.
    pub calls: u64,
    /// Heap allocations attributed to this scope (self, not children);
    /// 0 unless the `alloc-count` allocator is registered.
    pub allocs: u64,
    /// Heap bytes attributed to this scope (self, not children).
    pub alloc_bytes: u64,
}

/// A finished host profile: the phase tree in depth-first order (parent
/// before children) plus whole-run event counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfReport {
    pub nodes: Vec<ProfNode>,
    /// Host nanoseconds of the whole profiled region (== root total).
    pub total_ns: u64,
    /// Events dispatched while profiling ([`HostProf::note_event`]).
    pub events: u64,
    /// Sum of instantaneous queue depths over those events.
    pub q_depth_sum: u64,
}

impl ProfReport {
    /// Mean event-queue depth over the dispatched events (0 if none).
    pub fn q_depth_mean(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.q_depth_sum as f64 / self.events as f64
        }
    }

    /// Per-node share of total host time attributed as self time, in
    /// report (depth-first) order. Shares sum to 1.0 when any time was
    /// recorded (self times partition the root total exactly).
    pub fn self_shares(&self) -> Vec<(&str, f64)> {
        let total = self.total_ns.max(1) as f64;
        self.nodes
            .iter()
            .map(|n| (n.path.as_str(), n.self_ns as f64 / total))
            .collect()
    }

    /// Look a node up by its full path.
    pub fn node(&self, path: &str) -> Option<&ProfNode> {
        self.nodes.iter().find(|n| n.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let t = Instant::now();
        while (t.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_scopes_partition_total() {
        let mut p = HostProf::start();
        p.enter(ProfPhase::EvRecv);
        p.enter(ProfPhase::GuestResume);
        spin(50_000);
        p.exit();
        spin(20_000);
        p.exit();
        p.enter(ProfPhase::EvNet);
        p.enter(ProfPhase::Coherence);
        spin(30_000);
        p.exit();
        p.exit();
        let r = p.report();
        // Self times partition the root total exactly.
        let self_sum: u64 = r.nodes.iter().map(|n| n.self_ns).sum();
        assert_eq!(self_sum, r.total_ns);
        // Parent totals cover child totals.
        let recv = r.node("run;ev_recv").unwrap();
        let resume = r.node("run;ev_recv;guest_resume").unwrap();
        assert!(recv.total_ns >= resume.total_ns);
        assert!(resume.self_ns >= 50_000);
        assert_eq!(resume.calls, 1);
        // Depth-first order: parent before child.
        let pi = r
            .nodes
            .iter()
            .position(|n| n.path == "run;ev_recv")
            .unwrap();
        let ci = r
            .nodes
            .iter()
            .position(|n| n.path == "run;ev_recv;guest_resume")
            .unwrap();
        assert!(pi < ci);
        // Shares sum to 1.
        let s: f64 = r.self_shares().iter().map(|(_, v)| v).sum();
        assert!((s - 1.0).abs() < 1e-9, "shares sum to {s}");
    }

    #[test]
    fn repeated_entries_accumulate_calls() {
        let mut p = HostProf::start();
        for _ in 0..10 {
            p.enter(ProfPhase::EvRespond);
            p.enter(ProfPhase::Stamp);
            p.exit();
            p.exit();
        }
        p.note_event(3);
        p.note_event(5);
        let r = p.report();
        assert_eq!(r.node("run;ev_respond").unwrap().calls, 10);
        assert_eq!(r.node("run;ev_respond;stamp").unwrap().calls, 10);
        assert_eq!(r.events, 2);
        assert!((r.q_depth_mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn report_closes_open_scopes() {
        let mut p = HostProf::start();
        p.enter(ProfPhase::EvNotice);
        p.enter(ProfPhase::Coherence);
        let r = p.report();
        assert!(r.node("run;ev_notice;coherence").is_some());
        let self_sum: u64 = r.nodes.iter().map(|n| n.self_ns).sum();
        assert_eq!(self_sum, r.total_ns);
    }

    #[test]
    fn phase_names_have_no_separator() {
        for p in [
            ProfPhase::Run,
            ProfPhase::Dequeue,
            ProfPhase::SchedPick,
            ProfPhase::GuestResume,
            ProfPhase::EvRecv,
            ProfPhase::EvRespond,
            ProfPhase::EvNet,
            ProfPhase::EvNotice,
            ProfPhase::EvRetry,
            ProfPhase::EvParkTimeout,
            ProfPhase::Coherence,
            ProfPhase::Stamp,
            ProfPhase::ObsSample,
        ] {
            assert!(!p.name().contains(';'));
            assert!(!p.name().is_empty());
        }
    }
}
