//! System configuration mirroring Table I of the paper, plus the policy
//! knobs that distinguish the Table II systems.
//!
//! Configurations are assembled through [`SystemConfig::builder`]: a
//! preset base (Table I by default) plus fluent overrides, validated by
//! [`SystemConfigBuilder::build`] into either a `SystemConfig` or a typed
//! [`ConfigError`]. The historical presets remain as shortcuts:
//! [`SystemConfig::table1`] is the "typical" configuration every headline
//! experiment uses; [`SystemConfig::small_cache`] and
//! [`SystemConfig::large_cache`] are the Fig. 13 sensitivity points
//! (8 KB L1 / 1 MB LLC and 128 KB L1 / 32 MB LLC); and
//! [`SystemConfig::testing`] is the scaled-down unit-test system.
//!
//! [`SystemConfig::stable_hash`] gives a process-independent fingerprint
//! of every modelled parameter; the `tmlab` persistent run cache keys
//! simulation results on it (DESIGN.md §13).

use crate::fxhash::FxHasher;
use crate::types::{Cycle, LineAddr};
use std::hash::Hasher;

/// Geometry of one set-associative cache (sizes are per instance: one L1,
/// or one LLC bank).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Geometry for a cache of `bytes` capacity with `ways` associativity
    /// and 64-byte lines. Panics on an invalid geometry; the builder path
    /// ([`CacheGeometry::try_from_capacity`]) reports a typed error
    /// instead.
    pub fn from_capacity(bytes: usize, ways: usize) -> CacheGeometry {
        match CacheGeometry::try_from_capacity(bytes, ways) {
            Ok(g) => g,
            Err(ConfigError::BadCacheGeometry { reason, .. }) => panic!("{reason}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CacheGeometry::from_capacity`].
    pub fn try_from_capacity(bytes: usize, ways: usize) -> Result<CacheGeometry, ConfigError> {
        let bad = |reason: &'static str| ConfigError::BadCacheGeometry {
            bytes,
            ways,
            reason,
        };
        if ways == 0 {
            return Err(bad("associativity must be at least 1"));
        }
        let lines = bytes / 64;
        if lines < ways || !lines.is_multiple_of(ways) {
            return Err(bad("capacity not divisible by ways"));
        }
        let sets = lines / ways;
        if !sets.is_power_of_two() {
            return Err(bad("set count must be a power of two"));
        }
        Ok(CacheGeometry { sets, ways })
    }

    /// Total lines held.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for a line number.
    #[inline]
    pub fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }
}

/// Memory-subsystem parameters (Table I).
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// Private L1 geometry (per core).
    pub l1: CacheGeometry,
    /// Shared LLC geometry **per bank** (one bank per tile).
    pub llc_bank: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_hit: Cycle,
    /// LLC bank access latency in cycles.
    pub llc_hit: Cycle,
    /// Off-chip memory latency in cycles.
    pub mem_latency: Cycle,
    /// Bits per overflow signature (OfRdSig / OfWrSig); Bloom filter size.
    pub signature_bits: usize,
    /// Hash functions per signature.
    pub signature_hashes: usize,
    /// Direct L1-to-L1 responses (§III-A: "assuming L1 nodes can
    /// communicate directly, the response containing reject information
    /// can be sent directly to the requester"): a probed owner answers
    /// the requester in one hop (data or reject) while acknowledging the
    /// directory in parallel. `false` = every response flows through the
    /// home bank (the paper's subordinate-only topology, Fig. 2 ④⑤⑥).
    pub direct_rsp: bool,
}

/// Network-on-chip parameters (Table I: 4x8 mesh, X-Y routing, 16 B flits).
#[derive(Clone, Copy, Debug)]
pub struct NocConfig {
    /// Mesh width (X dimension).
    pub width: usize,
    /// Mesh height (Y dimension).
    pub height: usize,
    /// Per-hop link latency in cycles.
    pub link_latency: Cycle,
    /// Flits in a control message.
    pub control_flits: u32,
    /// Flits in a data message (64 B line + header at 16 B flits = 5).
    pub data_flits: u32,
}

/// How a transaction's priority (the "user-defined data" carried on the
/// bus in the paper's recovery mechanism) is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriorityKind {
    /// No priority: the requester always wins (baseline best-effort HTM).
    RequesterWins,
    /// Instructions committed inside the current transaction attempt
    /// (the paper's insts-based policy).
    InstsBased,
    /// Memory references completed inside the current attempt (the
    /// progression-based policy attributed to LosaTM).
    ProgressionBased,
    /// First-come-first-served among HTM transactions: every HTM
    /// transaction has equal priority (ties broken by core id), used by
    /// the RWL configuration which has recovery but no insts-based
    /// priority.
    Fcfs,
}

/// What a requester does after the recovery mechanism rejects its request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectAction {
    /// Abort the requesting transaction (LockillerTM-RAI).
    SelfAbort,
    /// Re-issue the request after a fixed pause (LockillerTM-RRI).
    RetryLater,
    /// Park the request until the rejecting core sends a wake-up
    /// (LockillerTM-RWI and all HTMLock systems).
    WaitWakeup,
}

/// Policy knobs distinguishing the Table II systems. The `lockiller`
/// crate maps each named system to one of these.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Execute critical sections under a single global lock instead of HTM.
    pub coarse_grained_lock: bool,
    /// Enable the recovery (NACK/reject) mechanism.
    pub recovery: bool,
    /// Priority metric used when `recovery` is on.
    pub priority: PriorityKind,
    /// Requester behaviour on reject.
    pub reject_action: RejectAction,
    /// Enable the HTMLock mechanism (lock transactions run concurrently
    /// with HTM transactions; no lock subscription in HTM read sets).
    pub htmlock: bool,
    /// Enable the switchingMode mechanism (requires `htmlock`).
    pub switching_mode: bool,
    /// HTM retry budget before taking the fallback path (Listing 1's
    /// `TME_MAX_RETRIES`).
    pub max_retries: u32,
    /// Go to the fallback path immediately on capacity/fault aborts
    /// instead of burning the remaining retries.
    pub fallback_on_capacity: bool,
    /// Pause, in cycles, before re-issuing a rejected request under
    /// [`RejectAction::RetryLater`].
    pub retry_pause: Cycle,
    /// Safety-net timeout for parked (WaitWakeup) requests. A correctly
    /// functioning wake-up path never hits this; a stats counter records
    /// if it ever fires so tests can assert it stayed at zero.
    pub wakeup_timeout: Cycle,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            coarse_grained_lock: false,
            recovery: false,
            priority: PriorityKind::RequesterWins,
            reject_action: RejectAction::WaitWakeup,
            htmlock: false,
            switching_mode: false,
            max_retries: 8,
            fallback_on_capacity: true,
            retry_pause: 64,
            wakeup_timeout: 200_000,
        }
    }
}

/// Checked-mode configuration: turns on the tracing and live assertions
/// the `tmcheck` crate consumes, and optionally injects protocol faults
/// so the checkers themselves can be validated.
///
/// All fields default to off; a production run pays nothing for them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckCfg {
    /// Record access-level trace events (per-line reads/writes, NACKs,
    /// wake-ups) in addition to the attempt-level timeline, and run the
    /// SWMR invariant live after every protocol step. A detected SWMR
    /// violation is stored in [`RunStats::swmr_violation`] rather than
    /// panicking, so checked-mode harnesses can report it with context.
    ///
    /// [`RunStats::swmr_violation`]: crate::stats::RunStats::swmr_violation
    pub enabled: bool,
    /// Deliberate protocol mutations, used only to prove the checkers
    /// detect real bugs.
    pub fault: FaultInject,
}

impl CheckCfg {
    /// Checked mode with no injected faults — the configuration CI runs.
    pub fn on() -> CheckCfg {
        CheckCfg {
            enabled: true,
            fault: FaultInject::default(),
        }
    }
}

/// Deliberate protocol mutations for checker validation. Each knob breaks
/// one mechanism the paper's correctness argument depends on; `tmcheck`'s
/// mutation tests assert that every knob produces a detected violation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInject {
    /// Directory ignores read/write conflicts between transactions: a
    /// conflicting requester is served data as if no owner existed, and
    /// the owner keeps its speculative state. Breaks conflict detection →
    /// serializability (DSG cycle).
    pub ignore_conflicts: bool,
    /// A rejecting owner "forgets" to invalidate/downgrade on a lost
    /// arbitration: the loser of HLA arbitration keeps its line instead
    /// of aborting. Breaks single-writer/multiple-reader (SWMR).
    pub drop_nack: bool,
    /// Wake-up messages to parked rejected requesters are silently
    /// dropped. Breaks liveness (parked cores only resume via the
    /// safety-net timeout).
    pub drop_wakeups: bool,
    /// The HLA arbiter grants an STL switch request even while another
    /// core already holds the lock transaction (and tolerates the
    /// resulting mismatched releases). Breaks TL/STL grant exclusivity —
    /// two cores run lock-mode critical sections concurrently.
    pub double_grant: bool,
    /// Conflict-arbitration priorities decay instead of accumulating:
    /// the priority written on each access is `BASE - p` rather than
    /// `p`. Breaks the paper's priority-monotonicity invariant (a
    /// transaction's priority must never decrease while it runs).
    pub prio_decay: bool,
}

impl FaultInject {
    /// True if any mutation knob is set.
    pub fn any(&self) -> bool {
        self.ignore_conflicts
            || self.drop_nack
            || self.drop_wakeups
            || self.double_grant
            || self.prio_decay
    }
}

/// Full system model configuration (Table I + policy).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of cores / tiles.
    pub num_cores: usize,
    pub mem: MemConfig,
    pub noc: NocConfig,
    pub policy: PolicyConfig,
    /// Checked-mode switches (tracing, live invariants, fault injection).
    pub check: CheckCfg,
    /// Cycles charged for processing an abort (register restore etc.).
    pub abort_penalty: Cycle,
    /// Cycles charged for a commit.
    pub commit_penalty: Cycle,
    /// Cycles charged to service a demand-paging fault outside a
    /// transaction (inside an HTM transaction a fault aborts instead).
    pub fault_service: Cycle,
}

impl SystemConfig {
    /// Start a validated configuration build from the Table-I base.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::new()
    }

    /// The paper's Table I configuration: 32 in-order cores, 32 KB 4-way
    /// private L1s, 8 MB 16-way shared LLC, 4x8 mesh, 100-cycle memory.
    /// Shortcut for `SystemConfig::builder().build()`.
    pub fn table1() -> SystemConfig {
        SystemConfig::builder()
            .build()
            .expect("Table-I preset is valid")
    }

    /// Fig. 13 "small cache" point: 8 KB L1, 1 MB LLC.
    pub fn small_cache() -> SystemConfig {
        SystemConfig::builder()
            .l1_capacity(8 * 1024, 4)
            .llc_capacity(1024 * 1024, 16)
            .build()
            .expect("small-cache preset is valid")
    }

    /// Fig. 13 "large cache" point: 128 KB L1, 32 MB LLC.
    pub fn large_cache() -> SystemConfig {
        SystemConfig::builder()
            .l1_capacity(128 * 1024, 4)
            .llc_capacity(32 * 1024 * 1024, 16)
            .build()
            .expect("large-cache preset is valid")
    }

    /// A scaled-down configuration for fast unit/integration tests:
    /// fewer cores and small caches, same protocol behaviour.
    pub fn testing(num_cores: usize) -> SystemConfig {
        assert!((1..=32).contains(&num_cores));
        SystemConfig::builder()
            .num_cores(num_cores)
            .fit_mesh()
            .l1_capacity(4 * 1024, 4)
            .llc_capacity(64 * 1024 / num_cores.next_power_of_two() * num_cores, 8)
            .build()
            .expect("testing preset is valid")
    }

    /// Number of LLC banks (one per tile).
    pub fn num_banks(&self) -> usize {
        self.num_cores
    }

    /// Home LLC bank of a line: lines interleave line-modulo-banks, the
    /// same mapping the engine and the `coherence` bank model use. A
    /// static analysis can therefore compute a program's exact per-bank
    /// footprint from its line set alone.
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.num_banks()
    }

    /// L1 set a line maps to: private L1s index by the raw line number.
    /// Used by the static capacity analysis — more than
    /// [`SystemConfig::speculative_ways`] distinct speculative lines in
    /// one set guarantee a capacity overflow.
    pub fn l1_set_of(&self, line: LineAddr) -> usize {
        self.mem.l1.set_of(line.0)
    }

    /// Set a line occupies within its home LLC bank (banks index by
    /// line-divided-by-banks, mirroring the bank tag array's stride).
    pub fn llc_set_of(&self, line: LineAddr) -> usize {
        self.mem.llc_bank.set_of(line.0 / self.num_banks() as u64)
    }

    /// Speculative lines one L1 set can hold: the associativity. A
    /// transaction whose footprint puts more distinct lines than this
    /// into a single set cannot finish in HTM mode.
    pub fn speculative_ways(&self) -> usize {
        self.mem.l1.ways
    }

    /// Total speculative line capacity of one private L1 (upper bound on
    /// any transaction's combined read/write-set size).
    pub fn speculative_lines(&self) -> usize {
        self.mem.l1.lines()
    }

    /// Conservative distinct-line budget of one overflow Bloom signature:
    /// `bits / (8 * hashes)` keeps the false-positive probability of a
    /// saturating signature below roughly 0.2%, the regime in which
    /// switchingMode spill tracking stays precise. Footprints beyond this
    /// budget make signature aliasing (spurious conflicts) plausible.
    pub fn signature_line_budget(&self) -> usize {
        (self.mem.signature_bits / (8 * self.mem.signature_hashes)).max(1)
    }

    /// Schema version folded into [`SystemConfig::stable_hash`]; bump it
    /// whenever a field is added, removed, or its meaning changes so
    /// stale persisted results can never alias a new configuration.
    pub const HASH_SCHEMA: u64 = 2;

    /// A process-independent 64-bit fingerprint of every modelled
    /// parameter (memory, NoC, policy, checked-mode switches, penalties).
    ///
    /// Two `SystemConfig` values hash equal iff a simulation run cannot
    /// distinguish them; the hash is stable across processes and hosts
    /// (FxHash with a fixed field order, no pointer or RandomState
    /// input), which is what lets the `tmlab` run cache persist results
    /// on disk.
    pub fn stable_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(SystemConfig::HASH_SCHEMA);
        h.write_usize(self.num_cores);
        // MemConfig.
        h.write_usize(self.mem.l1.sets);
        h.write_usize(self.mem.l1.ways);
        h.write_usize(self.mem.llc_bank.sets);
        h.write_usize(self.mem.llc_bank.ways);
        h.write_u64(self.mem.l1_hit);
        h.write_u64(self.mem.llc_hit);
        h.write_u64(self.mem.mem_latency);
        h.write_usize(self.mem.signature_bits);
        h.write_usize(self.mem.signature_hashes);
        h.write_u8(u8::from(self.mem.direct_rsp));
        // NocConfig.
        h.write_usize(self.noc.width);
        h.write_usize(self.noc.height);
        h.write_u64(self.noc.link_latency);
        h.write_u32(self.noc.control_flits);
        h.write_u32(self.noc.data_flits);
        // PolicyConfig.
        h.write_u8(u8::from(self.policy.coarse_grained_lock));
        h.write_u8(u8::from(self.policy.recovery));
        h.write_u8(match self.policy.priority {
            PriorityKind::RequesterWins => 0,
            PriorityKind::InstsBased => 1,
            PriorityKind::ProgressionBased => 2,
            PriorityKind::Fcfs => 3,
        });
        h.write_u8(match self.policy.reject_action {
            RejectAction::SelfAbort => 0,
            RejectAction::RetryLater => 1,
            RejectAction::WaitWakeup => 2,
        });
        h.write_u8(u8::from(self.policy.htmlock));
        h.write_u8(u8::from(self.policy.switching_mode));
        h.write_u32(self.policy.max_retries);
        h.write_u8(u8::from(self.policy.fallback_on_capacity));
        h.write_u64(self.policy.retry_pause);
        h.write_u64(self.policy.wakeup_timeout);
        // CheckCfg (fault injection changes behaviour; tracing does not,
        // but a traced run is still a distinct artifact).
        h.write_u8(u8::from(self.check.enabled));
        h.write_u8(u8::from(self.check.fault.ignore_conflicts));
        h.write_u8(u8::from(self.check.fault.drop_nack));
        h.write_u8(u8::from(self.check.fault.drop_wakeups));
        h.write_u8(u8::from(self.check.fault.double_grant));
        h.write_u8(u8::from(self.check.fault.prio_decay));
        // Penalties.
        h.write_u64(self.abort_penalty);
        h.write_u64(self.commit_penalty);
        h.write_u64(self.fault_service);
        h.finish()
    }
}

/// Typed validation failure from [`SystemConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Core count outside the modelled range.
    BadCoreCount { got: usize, min: usize, max: usize },
    /// The mesh has fewer tiles than cores (every core needs a tile with
    /// its L1 and LLC bank).
    MeshTooSmall {
        cores: usize,
        width: usize,
        height: usize,
    },
    /// A mesh dimension is zero.
    EmptyMesh { width: usize, height: usize },
    /// A cache capacity/associativity pair yields no valid set count.
    BadCacheGeometry {
        bytes: usize,
        ways: usize,
        reason: &'static str,
    },
    /// The total LLC capacity does not split evenly over the banks.
    LlcNotBankable { bytes: usize, banks: usize },
    /// An overflow signature needs at least one bit and one hash.
    BadSignature { bits: usize, hashes: usize },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadCoreCount { got, min, max } => {
                write!(
                    f,
                    "core count {got} outside the modelled range {min}..={max}"
                )
            }
            ConfigError::MeshTooSmall {
                cores,
                width,
                height,
            } => write!(
                f,
                "{width}x{height} mesh has {} tiles but the system has {cores} cores",
                width * height
            ),
            ConfigError::EmptyMesh { width, height } => {
                write!(f, "mesh dimensions {width}x{height} include zero")
            }
            ConfigError::BadCacheGeometry {
                bytes,
                ways,
                reason,
            } => write!(f, "cache of {bytes} bytes / {ways} ways: {reason}"),
            ConfigError::LlcNotBankable { bytes, banks } => {
                write!(f, "LLC of {bytes} bytes does not split over {banks} banks")
            }
            ConfigError::BadSignature { bits, hashes } => {
                write!(
                    f,
                    "overflow signature of {bits} bits / {hashes} hashes is degenerate"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validated [`SystemConfig`] constructor: a preset base
/// (Table I unless another preset is given) plus overrides, checked as a
/// whole by [`SystemConfigBuilder::build`].
///
/// Cache overrides are expressed in capacity terms (`bytes`, `ways`) and
/// converted to set/way geometry at build time, so an invalid size
/// surfaces as a [`ConfigError`] instead of a panic deep in geometry
/// code. The LLC override takes the *total* capacity and splits it over
/// one bank per tile, like the paper's Table I.
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
    l1: Option<(usize, usize)>,
    llc_total: Option<(usize, usize)>,
    fit_mesh: bool,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder::new()
    }
}

impl SystemConfigBuilder {
    /// Builder seeded with the Table-I base configuration.
    pub fn new() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig {
                num_cores: 32,
                mem: MemConfig {
                    l1: CacheGeometry { sets: 128, ways: 4 },
                    // 8 MB shared LLC over 32 banks = 256 KB/bank, 16-way.
                    llc_bank: CacheGeometry {
                        sets: 256,
                        ways: 16,
                    },
                    l1_hit: 2,
                    llc_hit: 12,
                    mem_latency: 100,
                    signature_bits: 1024,
                    signature_hashes: 3,
                    direct_rsp: false,
                },
                noc: NocConfig {
                    width: 4,
                    height: 8,
                    link_latency: 1,
                    control_flits: 1,
                    data_flits: 5,
                },
                policy: PolicyConfig::default(),
                check: CheckCfg::default(),
                abort_penalty: 30,
                commit_penalty: 6,
                fault_service: 300,
            },
            l1: None,
            llc_total: None,
            fit_mesh: false,
        }
    }

    /// Builder seeded with an existing configuration (tweak-and-rebuild).
    pub fn from_config(cfg: SystemConfig) -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg,
            l1: None,
            llc_total: None,
            fit_mesh: false,
        }
    }

    /// Number of cores / tiles (1..=1024 modelled).
    pub fn num_cores(mut self, n: usize) -> Self {
        self.cfg.num_cores = n;
        self
    }

    /// Explicit mesh dimensions. Overrides [`SystemConfigBuilder::fit_mesh`].
    pub fn mesh(mut self, width: usize, height: usize) -> Self {
        self.cfg.noc.width = width;
        self.cfg.noc.height = height;
        self.fit_mesh = false;
        self
    }

    /// Choose the smallest near-square mesh holding every core instead of
    /// the preset's dimensions (what the scaled-down test configs want).
    pub fn fit_mesh(mut self) -> Self {
        self.fit_mesh = true;
        self
    }

    /// Private L1 capacity in bytes with the given associativity.
    pub fn l1_capacity(mut self, bytes: usize, ways: usize) -> Self {
        self.l1 = Some((bytes, ways));
        self
    }

    /// *Total* shared-LLC capacity in bytes with the given associativity;
    /// split over one bank per tile at build time.
    pub fn llc_capacity(mut self, bytes: usize, ways: usize) -> Self {
        self.llc_total = Some((bytes, ways));
        self
    }

    /// L1 hit latency in cycles.
    pub fn l1_hit(mut self, cycles: Cycle) -> Self {
        self.cfg.mem.l1_hit = cycles;
        self
    }

    /// LLC bank access latency in cycles.
    pub fn llc_hit(mut self, cycles: Cycle) -> Self {
        self.cfg.mem.llc_hit = cycles;
        self
    }

    /// Off-chip memory latency in cycles.
    pub fn mem_latency(mut self, cycles: Cycle) -> Self {
        self.cfg.mem.mem_latency = cycles;
        self
    }

    /// Overflow-signature geometry (Bloom bits and hash count).
    pub fn signature(mut self, bits: usize, hashes: usize) -> Self {
        self.cfg.mem.signature_bits = bits;
        self.cfg.mem.signature_hashes = hashes;
        self
    }

    /// Enable direct L1-to-L1 responses (§III-A topology variant).
    pub fn direct_rsp(mut self, on: bool) -> Self {
        self.cfg.mem.direct_rsp = on;
        self
    }

    /// Replace the whole policy block (usually `SystemKind::policy()`).
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Replace the checked-mode switches.
    pub fn check(mut self, check: CheckCfg) -> Self {
        self.cfg.check = check;
        self
    }

    /// Abort-processing penalty in cycles.
    pub fn abort_penalty(mut self, cycles: Cycle) -> Self {
        self.cfg.abort_penalty = cycles;
        self
    }

    /// Commit penalty in cycles.
    pub fn commit_penalty(mut self, cycles: Cycle) -> Self {
        self.cfg.commit_penalty = cycles;
        self
    }

    /// Demand-paging service latency in cycles.
    pub fn fault_service(mut self, cycles: Cycle) -> Self {
        self.cfg.fault_service = cycles;
        self
    }

    /// Validate the assembled configuration: core count in range, mesh
    /// large enough for every tile, cache geometries realizable, LLC
    /// bankable, signatures non-degenerate.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        let mut cfg = self.cfg;
        if cfg.num_cores == 0 || cfg.num_cores > 1024 {
            return Err(ConfigError::BadCoreCount {
                got: cfg.num_cores,
                min: 1,
                max: 1024,
            });
        }
        if self.fit_mesh {
            let (w, h) = fit_mesh_dims(cfg.num_cores);
            cfg.noc.width = w;
            cfg.noc.height = h;
        }
        if cfg.noc.width == 0 || cfg.noc.height == 0 {
            return Err(ConfigError::EmptyMesh {
                width: cfg.noc.width,
                height: cfg.noc.height,
            });
        }
        if cfg.noc.width * cfg.noc.height < cfg.num_cores {
            return Err(ConfigError::MeshTooSmall {
                cores: cfg.num_cores,
                width: cfg.noc.width,
                height: cfg.noc.height,
            });
        }
        if let Some((bytes, ways)) = self.l1 {
            cfg.mem.l1 = CacheGeometry::try_from_capacity(bytes, ways)?;
        }
        if let Some((bytes, ways)) = self.llc_total {
            let banks = cfg.num_cores;
            if bytes == 0 || !bytes.is_multiple_of(banks) {
                return Err(ConfigError::LlcNotBankable { bytes, banks });
            }
            cfg.mem.llc_bank = CacheGeometry::try_from_capacity(bytes / banks, ways)?;
        }
        if cfg.mem.signature_bits == 0
            || !cfg.mem.signature_bits.is_power_of_two()
            || cfg.mem.signature_hashes == 0
        {
            return Err(ConfigError::BadSignature {
                bits: cfg.mem.signature_bits,
                hashes: cfg.mem.signature_hashes,
            });
        }
        Ok(cfg)
    }
}

/// Smallest power-of-two mesh holding `cores` tiles, using exactly the
/// shapes the scaled-down test configurations have always used (2x2,
/// 2x4, 4x4, 4x8) so simulated routes — and therefore cycle counts —
/// stay bit-identical; larger systems keep doubling the longer axis.
fn fit_mesh_dims(cores: usize) -> (usize, usize) {
    let (mut w, mut h) = (2, 2);
    while w * h < cores {
        if h <= w {
            h *= 2;
        } else {
            w *= 2;
        }
    }
    (w, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1();
        assert_eq!(c.num_cores, 32);
        // 32 KB, 4-way, 64 B lines => 128 sets.
        assert_eq!(c.mem.l1.sets, 128);
        assert_eq!(c.mem.l1.ways, 4);
        assert_eq!(c.mem.l1.lines() * 64, 32 * 1024);
        // 8 MB over 32 banks.
        assert_eq!(c.mem.llc_bank.lines() * 64 * 32, 8 * 1024 * 1024);
        assert_eq!(c.mem.llc_bank.ways, 16);
        assert_eq!(c.mem.l1_hit, 2);
        assert_eq!(c.mem.llc_hit, 12);
        assert_eq!(c.mem.mem_latency, 100);
        assert_eq!(c.noc.width * c.noc.height, 32);
        assert_eq!(c.noc.data_flits, 5);
        assert_eq!(c.noc.control_flits, 1);
        assert_eq!(c.noc.link_latency, 1);
    }

    #[test]
    fn cache_geometry_from_capacity() {
        let g = CacheGeometry::from_capacity(32 * 1024, 4);
        assert_eq!(g.sets, 128);
        assert_eq!(g.lines(), 512);
        // Set mapping masks low line bits.
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(127), 127);
        assert_eq!(g.set_of(128), 0);
    }

    #[test]
    fn sensitivity_configs() {
        let s = SystemConfig::small_cache();
        assert_eq!(s.mem.l1.lines() * 64, 8 * 1024);
        assert_eq!(s.mem.llc_bank.lines() * 64 * 32, 1024 * 1024);
        let l = SystemConfig::large_cache();
        assert_eq!(l.mem.l1.lines() * 64, 128 * 1024);
        assert_eq!(l.mem.llc_bank.lines() * 64 * 32, 32 * 1024 * 1024);
    }

    #[test]
    fn testing_config_meshes_fit() {
        for n in [1, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
            let c = SystemConfig::testing(n);
            assert!(
                c.noc.width * c.noc.height >= n,
                "mesh too small for {n} cores"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheGeometry::from_capacity(24 * 1024, 4);
    }

    #[test]
    fn static_analysis_accessors() {
        let c = SystemConfig::testing(4);
        // Bank interleave is line % banks, L1 indexes by raw line number,
        // bank sets stride by the bank count — the same mappings the
        // engine and the coherence bank/L1 models use.
        assert_eq!(c.num_banks(), 4);
        assert_eq!(c.bank_of(LineAddr(6)), 2);
        assert_eq!(c.l1_set_of(LineAddr(6)), c.mem.l1.set_of(6));
        assert_eq!(c.llc_set_of(LineAddr(6)), c.mem.llc_bank.set_of(6 / 4));
        assert_eq!(c.speculative_ways(), c.mem.l1.ways);
        assert_eq!(c.speculative_lines(), c.mem.l1.sets * c.mem.l1.ways);
        // Table-I signature: 1024 bits, 3 hashes -> 42-line budget.
        assert_eq!(SystemConfig::table1().signature_line_budget(), 42);
        // Degenerate geometries still give a usable (>= 1) budget.
        let tiny = SystemConfig::builder().signature(8, 4).build().unwrap();
        assert_eq!(tiny.signature_line_budget(), 1);
    }

    #[test]
    fn builder_matches_presets() {
        // The presets are now builder shortcuts; spot-check the builder
        // reproduces the historical values field-for-field.
        let b = SystemConfig::builder().build().unwrap();
        let t = SystemConfig::table1();
        assert_eq!(b.stable_hash(), t.stable_hash());
        assert_eq!(b.mem.l1.sets, 128);
        let s = SystemConfig::builder()
            .l1_capacity(8 * 1024, 4)
            .llc_capacity(1024 * 1024, 16)
            .build()
            .unwrap();
        assert_eq!(s.stable_hash(), SystemConfig::small_cache().stable_hash());
        for n in [1, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
            let legacy = SystemConfig::testing(n);
            assert!(legacy.noc.width * legacy.noc.height >= n);
        }
    }

    #[test]
    fn builder_reports_typed_errors() {
        assert_eq!(
            SystemConfig::builder().num_cores(0).build().unwrap_err(),
            ConfigError::BadCoreCount {
                got: 0,
                min: 1,
                max: 1024
            }
        );
        assert_eq!(
            SystemConfig::builder().mesh(2, 2).build().unwrap_err(),
            ConfigError::MeshTooSmall {
                cores: 32,
                width: 2,
                height: 2
            }
        );
        assert_eq!(
            SystemConfig::builder().mesh(0, 8).build().unwrap_err(),
            ConfigError::EmptyMesh {
                width: 0,
                height: 8
            }
        );
        assert!(matches!(
            SystemConfig::builder().l1_capacity(24 * 1024, 4).build(),
            Err(ConfigError::BadCacheGeometry { .. })
        ));
        assert!(matches!(
            SystemConfig::builder().llc_capacity(1000, 16).build(),
            Err(ConfigError::LlcNotBankable { .. })
        ));
        assert!(matches!(
            SystemConfig::builder().signature(0, 3).build(),
            Err(ConfigError::BadSignature { .. })
        ));
        // Errors are Display + Error.
        let e = SystemConfig::builder().num_cores(0).build().unwrap_err();
        assert!(e.to_string().contains("core count"));
    }

    #[test]
    fn builder_from_config_tweaks() {
        let base = SystemConfig::table1();
        let tweaked = SystemConfigBuilder::from_config(base.clone())
            .mem_latency(200)
            .build()
            .unwrap();
        assert_eq!(tweaked.mem.mem_latency, 200);
        assert_ne!(tweaked.stable_hash(), base.stable_hash());
    }

    #[test]
    fn stable_hash_distinguishes_all_layers() {
        let base = SystemConfig::table1();
        let mut cfgs = vec![base.clone()];
        cfgs.push(SystemConfig::small_cache());
        cfgs.push(SystemConfig::large_cache());
        cfgs.push(SystemConfig::testing(4));
        let mut c = base.clone();
        c.policy.max_retries += 1;
        cfgs.push(c);
        let mut c = base.clone();
        c.check.fault.drop_nack = true;
        cfgs.push(c);
        let mut c = base.clone();
        c.check.fault.double_grant = true;
        cfgs.push(c);
        let mut c = base.clone();
        c.check.fault.prio_decay = true;
        cfgs.push(c);
        let mut c = base.clone();
        c.abort_penalty += 1;
        cfgs.push(c);
        let mut c = base.clone();
        c.noc.link_latency += 1;
        cfgs.push(c);
        let hashes: Vec<u64> = cfgs.iter().map(SystemConfig::stable_hash).collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "configs {i} and {j} collide");
            }
        }
        // Deterministic across calls (and, by construction, processes).
        assert_eq!(base.stable_hash(), SystemConfig::table1().stable_hash());
    }
}
