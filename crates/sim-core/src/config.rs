//! System configuration mirroring Table I of the paper, plus the policy
//! knobs that distinguish the Table II systems.
//!
//! [`SystemConfig::table1`] is the "typical" configuration every headline
//! experiment uses; [`SystemConfig::small_cache`] and
//! [`SystemConfig::large_cache`] are the Fig. 13 sensitivity points
//! (8 KB L1 / 1 MB LLC and 128 KB L1 / 32 MB LLC).

use crate::types::Cycle;

/// Geometry of one set-associative cache (sizes are per instance: one L1,
/// or one LLC bank).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Geometry for a cache of `bytes` capacity with `ways` associativity
    /// and 64-byte lines.
    pub fn from_capacity(bytes: usize, ways: usize) -> CacheGeometry {
        let lines = bytes / 64;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "capacity not divisible by ways"
        );
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry { sets, ways }
    }

    /// Total lines held.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for a line number.
    #[inline]
    pub fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }
}

/// Memory-subsystem parameters (Table I).
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// Private L1 geometry (per core).
    pub l1: CacheGeometry,
    /// Shared LLC geometry **per bank** (one bank per tile).
    pub llc_bank: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_hit: Cycle,
    /// LLC bank access latency in cycles.
    pub llc_hit: Cycle,
    /// Off-chip memory latency in cycles.
    pub mem_latency: Cycle,
    /// Bits per overflow signature (OfRdSig / OfWrSig); Bloom filter size.
    pub signature_bits: usize,
    /// Hash functions per signature.
    pub signature_hashes: usize,
    /// Direct L1-to-L1 responses (§III-A: "assuming L1 nodes can
    /// communicate directly, the response containing reject information
    /// can be sent directly to the requester"): a probed owner answers
    /// the requester in one hop (data or reject) while acknowledging the
    /// directory in parallel. `false` = every response flows through the
    /// home bank (the paper's subordinate-only topology, Fig. 2 ④⑤⑥).
    pub direct_rsp: bool,
}

/// Network-on-chip parameters (Table I: 4x8 mesh, X-Y routing, 16 B flits).
#[derive(Clone, Copy, Debug)]
pub struct NocConfig {
    /// Mesh width (X dimension).
    pub width: usize,
    /// Mesh height (Y dimension).
    pub height: usize,
    /// Per-hop link latency in cycles.
    pub link_latency: Cycle,
    /// Flits in a control message.
    pub control_flits: u32,
    /// Flits in a data message (64 B line + header at 16 B flits = 5).
    pub data_flits: u32,
}

/// How a transaction's priority (the "user-defined data" carried on the
/// bus in the paper's recovery mechanism) is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriorityKind {
    /// No priority: the requester always wins (baseline best-effort HTM).
    RequesterWins,
    /// Instructions committed inside the current transaction attempt
    /// (the paper's insts-based policy).
    InstsBased,
    /// Memory references completed inside the current attempt (the
    /// progression-based policy attributed to LosaTM).
    ProgressionBased,
    /// First-come-first-served among HTM transactions: every HTM
    /// transaction has equal priority (ties broken by core id), used by
    /// the RWL configuration which has recovery but no insts-based
    /// priority.
    Fcfs,
}

/// What a requester does after the recovery mechanism rejects its request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectAction {
    /// Abort the requesting transaction (LockillerTM-RAI).
    SelfAbort,
    /// Re-issue the request after a fixed pause (LockillerTM-RRI).
    RetryLater,
    /// Park the request until the rejecting core sends a wake-up
    /// (LockillerTM-RWI and all HTMLock systems).
    WaitWakeup,
}

/// Policy knobs distinguishing the Table II systems. The `lockiller`
/// crate maps each named system to one of these.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Execute critical sections under a single global lock instead of HTM.
    pub coarse_grained_lock: bool,
    /// Enable the recovery (NACK/reject) mechanism.
    pub recovery: bool,
    /// Priority metric used when `recovery` is on.
    pub priority: PriorityKind,
    /// Requester behaviour on reject.
    pub reject_action: RejectAction,
    /// Enable the HTMLock mechanism (lock transactions run concurrently
    /// with HTM transactions; no lock subscription in HTM read sets).
    pub htmlock: bool,
    /// Enable the switchingMode mechanism (requires `htmlock`).
    pub switching_mode: bool,
    /// HTM retry budget before taking the fallback path (Listing 1's
    /// `TME_MAX_RETRIES`).
    pub max_retries: u32,
    /// Go to the fallback path immediately on capacity/fault aborts
    /// instead of burning the remaining retries.
    pub fallback_on_capacity: bool,
    /// Pause, in cycles, before re-issuing a rejected request under
    /// [`RejectAction::RetryLater`].
    pub retry_pause: Cycle,
    /// Safety-net timeout for parked (WaitWakeup) requests. A correctly
    /// functioning wake-up path never hits this; a stats counter records
    /// if it ever fires so tests can assert it stayed at zero.
    pub wakeup_timeout: Cycle,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            coarse_grained_lock: false,
            recovery: false,
            priority: PriorityKind::RequesterWins,
            reject_action: RejectAction::WaitWakeup,
            htmlock: false,
            switching_mode: false,
            max_retries: 8,
            fallback_on_capacity: true,
            retry_pause: 64,
            wakeup_timeout: 200_000,
        }
    }
}

/// Checked-mode configuration: turns on the tracing and live assertions
/// the `tmcheck` crate consumes, and optionally injects protocol faults
/// so the checkers themselves can be validated.
///
/// All fields default to off; a production run pays nothing for them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckCfg {
    /// Record access-level trace events (per-line reads/writes, NACKs,
    /// wake-ups) in addition to the attempt-level timeline, and run the
    /// SWMR invariant live after every protocol step. A detected SWMR
    /// violation is stored in [`RunStats::swmr_violation`] rather than
    /// panicking, so checked-mode harnesses can report it with context.
    ///
    /// [`RunStats::swmr_violation`]: crate::stats::RunStats::swmr_violation
    pub enabled: bool,
    /// Deliberate protocol mutations, used only to prove the checkers
    /// detect real bugs.
    pub fault: FaultInject,
}

impl CheckCfg {
    /// Checked mode with no injected faults — the configuration CI runs.
    pub fn on() -> CheckCfg {
        CheckCfg {
            enabled: true,
            fault: FaultInject::default(),
        }
    }
}

/// Deliberate protocol mutations for checker validation. Each knob breaks
/// one mechanism the paper's correctness argument depends on; `tmcheck`'s
/// mutation tests assert that every knob produces a detected violation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInject {
    /// Directory ignores read/write conflicts between transactions: a
    /// conflicting requester is served data as if no owner existed, and
    /// the owner keeps its speculative state. Breaks conflict detection →
    /// serializability (DSG cycle).
    pub ignore_conflicts: bool,
    /// A rejecting owner "forgets" to invalidate/downgrade on a lost
    /// arbitration: the loser of HLA arbitration keeps its line instead
    /// of aborting. Breaks single-writer/multiple-reader (SWMR).
    pub drop_nack: bool,
    /// Wake-up messages to parked rejected requesters are silently
    /// dropped. Breaks liveness (parked cores only resume via the
    /// safety-net timeout).
    pub drop_wakeups: bool,
}

impl FaultInject {
    /// True if any mutation knob is set.
    pub fn any(&self) -> bool {
        self.ignore_conflicts || self.drop_nack || self.drop_wakeups
    }
}

/// Full system model configuration (Table I + policy).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of cores / tiles.
    pub num_cores: usize,
    pub mem: MemConfig,
    pub noc: NocConfig,
    pub policy: PolicyConfig,
    /// Checked-mode switches (tracing, live invariants, fault injection).
    pub check: CheckCfg,
    /// Cycles charged for processing an abort (register restore etc.).
    pub abort_penalty: Cycle,
    /// Cycles charged for a commit.
    pub commit_penalty: Cycle,
    /// Cycles charged to service a demand-paging fault outside a
    /// transaction (inside an HTM transaction a fault aborts instead).
    pub fault_service: Cycle,
}

impl SystemConfig {
    /// The paper's Table I configuration: 32 in-order cores, 32 KB 4-way
    /// private L1s, 8 MB 16-way shared LLC, 4x8 mesh, 100-cycle memory.
    pub fn table1() -> SystemConfig {
        SystemConfig {
            num_cores: 32,
            mem: MemConfig {
                l1: CacheGeometry::from_capacity(32 * 1024, 4),
                // 8 MB shared LLC split over 32 banks = 256 KB/bank, 16-way.
                llc_bank: CacheGeometry::from_capacity(8 * 1024 * 1024 / 32, 16),
                l1_hit: 2,
                llc_hit: 12,
                mem_latency: 100,
                signature_bits: 1024,
                signature_hashes: 3,
                direct_rsp: false,
            },
            noc: NocConfig {
                width: 4,
                height: 8,
                link_latency: 1,
                control_flits: 1,
                data_flits: 5,
            },
            policy: PolicyConfig::default(),
            check: CheckCfg::default(),
            abort_penalty: 30,
            commit_penalty: 6,
            fault_service: 300,
        }
    }

    /// Fig. 13 "small cache" point: 8 KB L1, 1 MB LLC.
    pub fn small_cache() -> SystemConfig {
        let mut c = SystemConfig::table1();
        c.mem.l1 = CacheGeometry::from_capacity(8 * 1024, 4);
        c.mem.llc_bank = CacheGeometry::from_capacity(1024 * 1024 / 32, 16);
        c
    }

    /// Fig. 13 "large cache" point: 128 KB L1, 32 MB LLC.
    pub fn large_cache() -> SystemConfig {
        let mut c = SystemConfig::table1();
        c.mem.l1 = CacheGeometry::from_capacity(128 * 1024, 4);
        c.mem.llc_bank = CacheGeometry::from_capacity(32 * 1024 * 1024 / 32, 16);
        c
    }

    /// A scaled-down configuration for fast unit/integration tests:
    /// fewer cores and small caches, same protocol behaviour.
    pub fn testing(num_cores: usize) -> SystemConfig {
        let mut c = SystemConfig::table1();
        assert!((1..=32).contains(&num_cores));
        c.num_cores = num_cores;
        // Keep the mesh large enough to hold every core.
        if num_cores <= 4 {
            c.noc.width = 2;
            c.noc.height = 2;
        } else if num_cores <= 8 {
            c.noc.width = 2;
            c.noc.height = 4;
        } else if num_cores <= 16 {
            c.noc.width = 4;
            c.noc.height = 4;
        }
        c.mem.l1 = CacheGeometry::from_capacity(4 * 1024, 4);
        c.mem.llc_bank = CacheGeometry::from_capacity(64 * 1024 / num_cores.next_power_of_two(), 8);
        c
    }

    /// Number of LLC banks (one per tile).
    pub fn num_banks(&self) -> usize {
        self.num_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1();
        assert_eq!(c.num_cores, 32);
        // 32 KB, 4-way, 64 B lines => 128 sets.
        assert_eq!(c.mem.l1.sets, 128);
        assert_eq!(c.mem.l1.ways, 4);
        assert_eq!(c.mem.l1.lines() * 64, 32 * 1024);
        // 8 MB over 32 banks.
        assert_eq!(c.mem.llc_bank.lines() * 64 * 32, 8 * 1024 * 1024);
        assert_eq!(c.mem.llc_bank.ways, 16);
        assert_eq!(c.mem.l1_hit, 2);
        assert_eq!(c.mem.llc_hit, 12);
        assert_eq!(c.mem.mem_latency, 100);
        assert_eq!(c.noc.width * c.noc.height, 32);
        assert_eq!(c.noc.data_flits, 5);
        assert_eq!(c.noc.control_flits, 1);
        assert_eq!(c.noc.link_latency, 1);
    }

    #[test]
    fn cache_geometry_from_capacity() {
        let g = CacheGeometry::from_capacity(32 * 1024, 4);
        assert_eq!(g.sets, 128);
        assert_eq!(g.lines(), 512);
        // Set mapping masks low line bits.
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(127), 127);
        assert_eq!(g.set_of(128), 0);
    }

    #[test]
    fn sensitivity_configs() {
        let s = SystemConfig::small_cache();
        assert_eq!(s.mem.l1.lines() * 64, 8 * 1024);
        assert_eq!(s.mem.llc_bank.lines() * 64 * 32, 1024 * 1024);
        let l = SystemConfig::large_cache();
        assert_eq!(l.mem.l1.lines() * 64, 128 * 1024);
        assert_eq!(l.mem.llc_bank.lines() * 64 * 32, 32 * 1024 * 1024);
    }

    #[test]
    fn testing_config_meshes_fit() {
        for n in [1, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
            let c = SystemConfig::testing(n);
            assert!(
                c.noc.width * c.noc.height >= n,
                "mesh too small for {n} cores"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheGeometry::from_capacity(24 * 1024, 4);
    }
}
