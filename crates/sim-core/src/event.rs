//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(cycle, sequence number)`: two events scheduled
//! for the same cycle fire in the order they were scheduled. That rule is
//! what makes whole-system simulation bit-reproducible, so the experiment
//! harness and the test suite can assert on exact cycle counts.

use crate::types::Cycle;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue with deterministic same-cycle ordering.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulated time: the cycle of the most recently popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedule `payload` to fire at absolute cycle `at`.
    ///
    /// Scheduling in the past is a simulator bug; panics in that case.
    pub fn schedule_at(&mut self, at: Cycle, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedule `payload` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(1, 1u32);
        q.schedule_at(4, 4u32);
        assert_eq!(q.pop(), Some((1, 1)));
        q.schedule_at(2, 2u32);
        q.schedule_at(3, 3u32);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((4, 4)));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(1));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
