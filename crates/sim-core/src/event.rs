//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(cycle, sequence number)`: two events scheduled
//! for the same cycle fire in the order they were scheduled. That rule is
//! what makes whole-system simulation bit-reproducible, so the experiment
//! harness and the test suite can assert on exact cycle counts.

use crate::types::Cycle;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue with deterministic same-cycle ordering.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulated time: the cycle of the most recently popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedule `payload` to fire at absolute cycle `at`.
    ///
    /// Scheduling in the past is a simulator bug; panics in that case.
    pub fn schedule_at(&mut self, at: Cycle, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({at} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedule `payload` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of events pending at the earliest cycle (the "front").
    ///
    /// Same-cycle events fire in schedule order by default; when the
    /// front is wider than one event, that FIFO tie-break is the only
    /// nondeterminism in the simulation, so a schedule explorer need
    /// only consider alternative orders of the front.
    pub fn front_len(&self) -> usize {
        let Some(at) = self.peek_time() else { return 0 };
        self.heap.iter().filter(|e| e.at == at).count()
    }

    /// Clones of the front events in schedule (seq) order.
    pub fn front_snapshot(&self) -> Vec<E>
    where
        E: Clone,
    {
        let Some(at) = self.peek_time() else {
            return Vec::new();
        };
        let mut front: Vec<&Entry<E>> = self.heap.iter().filter(|e| e.at == at).collect();
        front.sort_by_key(|e| e.seq);
        front.into_iter().map(|e| e.payload.clone()).collect()
    }

    /// Pop the `n`-th front event (0-based, schedule order), advancing
    /// time to the front cycle. The other front events keep their
    /// original sequence numbers, so the residual FIFO order among them
    /// is preserved. `n` out of range picks the last front event.
    pub fn pop_nth_front(&mut self, n: usize) -> Option<(Cycle, E)> {
        let at = self.peek_time()?;
        let mut front = Vec::new();
        while self.heap.peek().is_some_and(|e| e.at == at) {
            front.push(self.heap.pop().expect("peeked entry"));
        }
        front.sort_by_key(|e| e.seq);
        let chosen = front.remove(n.min(front.len() - 1));
        for rest in front {
            self.heap.push(rest);
        }
        self.now = at;
        Some((at, chosen.payload))
    }

    /// Visit every pending event in deterministic `(cycle, seq)` order
    /// (used for state fingerprinting).
    pub fn for_each_sorted(&self, mut f: impl FnMut(Cycle, &E)) {
        let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        for e in entries {
            f(e.at, &e.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(1, 1u32);
        q.schedule_at(4, 4u32);
        assert_eq!(q.pop(), Some((1, 1)));
        q.schedule_at(2, 2u32);
        q.schedule_at(3, 3u32);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((4, 4)));
    }

    #[test]
    fn front_enumeration_and_nth_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "a");
        q.schedule_at(5, "b");
        q.schedule_at(5, "c");
        q.schedule_at(9, "late");
        assert_eq!(q.front_len(), 3);
        assert_eq!(q.front_snapshot(), vec!["a", "b", "c"]);
        // Pop the middle front event; the rest stay FIFO.
        assert_eq!(q.pop_nth_front(1), Some((5, "b")));
        assert_eq!(q.now(), 5);
        assert_eq!(q.front_snapshot(), vec!["a", "c"]);
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.front_len(), 1);
        assert_eq!(q.pop_nth_front(7), Some((9, "late")));
        assert_eq!(q.front_len(), 0);
        assert_eq!(q.pop_nth_front(0), None);
    }

    #[test]
    fn sorted_visit_matches_pop_order() {
        let mut q = EventQueue::new();
        q.schedule_at(4, 40u32);
        q.schedule_at(2, 20u32);
        q.schedule_at(2, 21u32);
        let mut seen = Vec::new();
        q.for_each_sorted(|at, e| seen.push((at, *e)));
        assert_eq!(seen, vec![(2, 20), (2, 21), (4, 40)]);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(1));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
