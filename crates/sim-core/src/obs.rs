//! Observability primitives shared by every layer of the simulator.
//!
//! The `tmobs` crate owns the recorder, metrics registry, and exporters;
//! this module owns only what the *emitting* layers need: the
//! [`ObsSink`] trait, the event vocabulary ([`ObsEvent`], [`SpanKind`],
//! [`Metric`]), and the cloneable [`ObsHandle`] the engine threads
//! through the stack. Keeping the trait here (like [`crate::stats`])
//! lets `lockiller`, `coherence`, and `noc` emit without depending on
//! the observability crate.
//!
//! ## Zero cost when disabled
//!
//! The engine stores an `Option<ObsHandle>`; every emission site is
//! guarded by one `is_some()` branch, and no event values are even
//! constructed on the disabled path. An uninstrumented run therefore
//! executes the exact same simulation: sinks are write-only observers
//! and can never feed back into timing or protocol decisions.

use crate::stats::AbortCause;
use crate::types::{CoreId, Cycle, LineAddr};
use std::sync::{Arc, Mutex};

/// Where a span lives in the exported trace: one track per core plus
/// shared LLC and NoC tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Track {
    /// Per-core track (txn attempts, lock sections, park intervals).
    Core(CoreId),
    /// The LLC / HLA-arbiter track (authorization grants).
    Llc,
    /// The NoC track (utilization counters).
    Noc,
}

/// Kinds of simulated-time spans the engine emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Speculative transaction attempt (`xbegin` .. commit/abort/switch).
    Txn,
    /// TL-mode lock transaction (`hlbegin` .. `hlend`).
    TlLock,
    /// STL continuation after a granted proactive switch (.. `hlend`).
    StlLock,
    /// Fallback-path critical section.
    Fallback,
    /// Recovery park: reject .. wake-up/retry/timeout.
    Park,
    /// LLC authorization (HLA) arbitration: request .. grant/deny.
    HlaArb,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Txn => "txn",
            SpanKind::TlLock => "tl-lock",
            SpanKind::StlLock => "stl-lock",
            SpanKind::Fallback => "fallback",
            SpanKind::Park => "park",
            SpanKind::HlaArb => "hla-arb",
        }
    }
}

/// How a span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanEnd {
    /// Transaction committed (HTM commit, or STL finish at `hlend`).
    Commit,
    /// Transaction aborted with this cause.
    Abort(AbortCause),
    /// Txn converted into an STL lock transaction (proactive switch).
    Switched,
    /// HLA arbitration granted.
    Granted,
    /// HLA arbitration denied.
    Denied,
    /// Park ended by a wake-up message.
    Woken,
    /// Park ended by the RetryLater pause elapsing.
    Retried,
    /// Park ended by the wake-up safety-net timeout.
    Timeout,
    /// Ordinary close (lock/fallback sections) or end-of-run truncation.
    End,
}

impl SpanEnd {
    pub fn name(self) -> &'static str {
        match self {
            SpanEnd::Commit => "commit",
            SpanEnd::Abort(_) => "abort",
            SpanEnd::Switched => "switched",
            SpanEnd::Granted => "granted",
            SpanEnd::Denied => "denied",
            SpanEnd::Woken => "woken",
            SpanEnd::Retried => "retried",
            SpanEnd::Timeout => "timeout",
            SpanEnd::End => "end",
        }
    }
}

/// How a detected conflict was resolved by the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictResolution {
    /// The victim's transaction was aborted (requester-wins outcome);
    /// the cause is what [`crate::stats::RunStats`] records for it.
    Abort(AbortCause),
    /// The victim's request was NACKed by the line owner (recovery
    /// systems: the requester must retry, park, or self-abort).
    Nack,
    /// The victim's request was rejected by the LLC overflow signatures
    /// of a lock-mode transaction.
    SigReject,
}

impl ConflictResolution {
    pub fn name(self) -> &'static str {
        match self {
            ConflictResolution::Abort(_) => "abort",
            ConflictResolution::Nack => "nack",
            ConflictResolution::SigReject => "sig_reject",
        }
    }
}

/// The rejected requester's follow-up, per the paper's reject-action
/// taxonomy (Lockiller-RAI / -RRI / -RWI).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Requester-abort-itself: the NACKed transaction aborts locally.
    Rai,
    /// Requester-retry-it: park for a fixed pause, then reissue.
    Rri,
    /// Requester-wait-it: park until a wake-up (or safety-net timeout).
    Rwi,
    /// No follow-up decision (the victim was aborted outright).
    None,
}

impl RecoveryAction {
    pub fn name(self) -> &'static str {
        match self {
            RecoveryAction::Rai => "rai",
            RecoveryAction::Rri => "rri",
            RecoveryAction::Rwi => "rwi",
            RecoveryAction::None => "-",
        }
    }
}

/// One conflict edge: `attacker` kept (or took) the cache line,
/// `victim` lost the round. For an `Abort` resolution the attacker is
/// the requester and the victim the aborted owner; for `Nack` /
/// `SigReject` the attacker is the owner that rejected the `victim`'s
/// request. Priorities are the raw arbitration inputs (`u64::MAX` is
/// the lock-mode sentinel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictEdge {
    pub attacker: CoreId,
    pub victim: CoreId,
    pub line: LineAddr,
    pub attacker_prio: u64,
    pub victim_prio: u64,
    pub resolution: ConflictResolution,
    /// The rejected requester's follow-up; [`RecoveryAction::None`] for
    /// `Abort` resolutions.
    pub action: RecoveryAction,
}

/// One time-series metric. Indexed variants form families (one series
/// per LLC bank / NoC link).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Metric {
    /// Cores currently executing a speculative (HTM) transaction.
    TxRunning,
    /// Cores currently parked by the recovery mechanism.
    Parked,
    /// Cores inside a lock section (TL/STL lock transaction or fallback).
    LockHeld,
    /// Cumulative speculative commits.
    Commits,
    /// Cumulative aborts (all causes).
    Aborts,
    /// Cumulative fallback-path entries.
    Fallbacks,
    /// Cumulative discrete events the engine's main loop has dispatched
    /// (simulator self-metric).
    EventsProcessed,
    /// Instantaneous depth of the engine's event queue (self-metric).
    EventQueueDepth,
    /// Requests queued behind busy directory entries at this LLC bank.
    BankQueueDepth(u16),
    /// Directory entries with a request in flight at this LLC bank.
    BankBusy(u16),
    /// Cumulative NoC messages injected.
    NocMessages,
    /// Cumulative cycles messages spent queueing behind busy links.
    NocQueueCycles,
    /// Cumulative busy (flit-carrying) cycles of one directed mesh link;
    /// the index is `node * 4 + direction` (E/W/N/S).
    LinkBusy(u16),
}

impl Metric {
    /// Canonical dotted metric name used by every exporter.
    pub fn name(self) -> String {
        match self {
            Metric::TxRunning => "engine.tx_running".into(),
            Metric::Parked => "engine.parked".into(),
            Metric::LockHeld => "engine.lock_held".into(),
            Metric::Commits => "engine.commits".into(),
            Metric::Aborts => "engine.aborts".into(),
            Metric::Fallbacks => "engine.fallbacks".into(),
            Metric::EventsProcessed => "engine.events_processed".into(),
            Metric::EventQueueDepth => "engine.event_queue_depth".into(),
            Metric::BankQueueDepth(b) => format!("llc.bank{b}.queue_depth"),
            Metric::BankBusy(b) => format!("llc.bank{b}.busy"),
            Metric::NocMessages => "noc.messages".into(),
            Metric::NocQueueCycles => "noc.queue_cycles".into(),
            Metric::LinkBusy(l) => {
                let dir = ["E", "W", "N", "S"][(l % 4) as usize];
                format!("noc.link{}{dir}.busy", l / 4)
            }
        }
    }

    /// Monotone cumulative counters (vs instantaneous gauges). Exporters
    /// may difference consecutive samples of counters to show rates.
    pub fn is_counter(self) -> bool {
        matches!(
            self,
            Metric::Commits
                | Metric::Aborts
                | Metric::Fallbacks
                | Metric::EventsProcessed
                | Metric::NocMessages
                | Metric::NocQueueCycles
                | Metric::LinkBusy(_)
        )
    }
}

/// Static registration record for one metric, contributed by the crate
/// that owns the signal (`lockiller::engine`, `coherence::memsys`,
/// `noc::mesh`) and collected into the `tmobs` registry.
#[derive(Clone, Debug)]
pub struct MetricSpec {
    pub metric: Metric,
    /// Canonical name (matches [`Metric::name`]).
    pub name: String,
    pub unit: &'static str,
    pub help: &'static str,
}

impl MetricSpec {
    pub fn new(metric: Metric, unit: &'static str, help: &'static str) -> MetricSpec {
        MetricSpec {
            name: metric.name(),
            metric,
            unit,
            help,
        }
    }
}

/// One observability event, stamped with the simulated cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// A span opened. `core` identifies the actor (for per-core tracks it
    /// equals the track core; for the LLC track it is the requester).
    SpanBegin {
        cycle: Cycle,
        track: Track,
        kind: SpanKind,
        core: CoreId,
    },
    /// The matching span closed.
    SpanEnd {
        cycle: Cycle,
        track: Track,
        kind: SpanKind,
        core: CoreId,
        end: SpanEnd,
    },
    /// A periodic metric sample.
    Sample {
        cycle: Cycle,
        metric: Metric,
        value: u64,
    },
    /// A conflict edge resolved by the coherence protocol (forensics).
    Conflict { cycle: Cycle, edge: ConflictEdge },
}

/// Write-only sink for observability events. Implementations must not
/// influence the simulation in any way; the engine only ever hands them
/// data.
pub trait ObsSink: Send {
    fn event(&mut self, ev: ObsEvent);
    /// Called once when the simulation finishes, with the final cycle, so
    /// sinks can close still-open spans.
    fn finish(&mut self, _cycle: Cycle) {}
}

/// A sink that discards everything (useful as a stand-in in tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn event(&mut self, _ev: ObsEvent) {}
}

/// Cloneable handle to a shared sink plus the sampling policy. The
/// engine samples gauges/counters every `sample_every` simulated cycles.
#[derive(Clone)]
pub struct ObsHandle {
    sink: Arc<Mutex<dyn ObsSink>>,
    sample_every: Cycle,
}

impl ObsHandle {
    /// Default sampling interval: fine enough to resolve STAMP phase
    /// structure, coarse enough to keep artifacts small.
    pub const DEFAULT_SAMPLE_EVERY: Cycle = 2_000;

    pub fn new(sink: Arc<Mutex<dyn ObsSink>>, sample_every: Cycle) -> ObsHandle {
        ObsHandle {
            sink,
            sample_every: sample_every.max(1),
        }
    }

    pub fn sample_every(&self) -> Cycle {
        self.sample_every
    }

    pub fn emit(&self, ev: ObsEvent) {
        self.sink.lock().expect("obs sink poisoned").event(ev);
    }

    pub fn finish(&self, cycle: Cycle) {
        self.sink.lock().expect("obs sink poisoned").finish(cycle);
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("sample_every", &self.sample_every)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_unique_and_stable() {
        let metrics = [
            Metric::TxRunning,
            Metric::Parked,
            Metric::LockHeld,
            Metric::Commits,
            Metric::Aborts,
            Metric::Fallbacks,
            Metric::EventsProcessed,
            Metric::EventQueueDepth,
            Metric::BankQueueDepth(0),
            Metric::BankQueueDepth(3),
            Metric::BankBusy(0),
            Metric::NocMessages,
            Metric::NocQueueCycles,
            Metric::LinkBusy(0),
            Metric::LinkBusy(5),
        ];
        let mut names: Vec<String> = metrics.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), metrics.len());
        assert_eq!(Metric::LinkBusy(5).name(), "noc.link1W.busy");
        assert_eq!(Metric::BankQueueDepth(3).name(), "llc.bank3.queue_depth");
    }

    #[test]
    fn handle_routes_events_to_sink() {
        #[derive(Default)]
        struct Counting(u64, Option<Cycle>);
        impl ObsSink for Counting {
            fn event(&mut self, _ev: ObsEvent) {
                self.0 += 1;
            }
            fn finish(&mut self, cycle: Cycle) {
                self.1 = Some(cycle);
            }
        }
        let sink = Arc::new(Mutex::new(Counting::default()));
        let h = ObsHandle::new(sink.clone(), 100);
        h.emit(ObsEvent::Sample {
            cycle: 1,
            metric: Metric::Commits,
            value: 2,
        });
        h.finish(7);
        let s = sink.lock().unwrap();
        assert_eq!(s.0, 1);
        assert_eq!(s.1, Some(7));
    }

    #[test]
    fn conflict_vocabulary_names_are_stable() {
        // ObsEvent must stay Copy: emission sites pass events by value.
        fn assert_copy<T: Copy>() {}
        assert_copy::<ObsEvent>();
        assert_eq!(ConflictResolution::Nack.name(), "nack");
        assert_eq!(ConflictResolution::SigReject.name(), "sig_reject");
        assert_eq!(ConflictResolution::Abort(AbortCause::Mc).name(), "abort");
        assert_eq!(RecoveryAction::Rai.name(), "rai");
        assert_eq!(RecoveryAction::Rri.name(), "rri");
        assert_eq!(RecoveryAction::Rwi.name(), "rwi");
        assert_eq!(RecoveryAction::None.name(), "-");
        let e = ConflictEdge {
            attacker: 1,
            victim: 2,
            line: LineAddr(0x40),
            attacker_prio: 7,
            victim_prio: 3,
            resolution: ConflictResolution::Nack,
            action: RecoveryAction::Rwi,
        };
        assert_eq!(e, e);
    }

    #[test]
    fn sample_every_clamped_to_one() {
        let h = ObsHandle::new(Arc::new(Mutex::new(NullSink)), 0);
        assert_eq!(h.sample_every(), 1);
    }
}
