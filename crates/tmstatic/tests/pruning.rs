//! DPOR pruning integration: the static independence table must only
//! ever *remove* schedules, never change a verdict — and where it
//! proves nothing, exploration must stay bit-identical to the unpruned
//! baseline (digest equality is the regression oracle).

use lockiller::SystemKind;
use tmstatic::Analysis;
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

fn explorer(system: SystemKind, prog: &str) -> Explorer {
    let spec = ProgSpec::parse(prog).expect("test specs are valid");
    let mut ex = Explorer::new(system, spec);
    ex.no_safety_net = true;
    ex
}

fn with_table(ex: &Explorer) -> Explorer {
    let a = Analysis::new(ex.system, ex.spec.clone(), ex.config());
    let table = a
        .independence()
        .expect("premises must hold for these kernels");
    let mut pruned = ex.clone();
    pruned.prune = Some(table);
    pruned
}

#[test]
fn empty_table_is_bit_identical() {
    // A default (empty) table refines nothing: every exploration count
    // and the order-sensitive digest must match the unpruned run.
    let base = explorer(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
    let mut pruned = base.clone();
    pruned.prune = Some(lockiller::StaticIndependence::default());
    let (a, b) = (base.explore(), pruned.explore());
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.schedules, b.schedules);
    assert!(b.static_prune && !a.static_prune);
}

#[test]
fn ring_table_proves_nothing_and_stays_identical() {
    // Every ring thread aborts/parks, so the analysis marks no core
    // pure: the table is present but can never refine a pair.
    let base = explorer(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
    let pruned = with_table(&base);
    assert_eq!(pruned.prune.as_ref().unwrap().pure, 0);
    let (a, b) = (base.explore(), pruned.explore());
    assert_eq!(a.digest, b.digest, "no pure cores => no behavior change");
    assert_eq!(a.schedules, b.schedules);
    assert!(a.is_clean() && a.complete());
}

#[test]
fn disjoint_htmlock_kernel_prunes_strictly_with_same_verdict() {
    // Three conflict-free threads on LockillerTm (HTMLock: no lock
    // subscription) are all pure with disjoint bank footprints, so
    // commit-class global events stop generating backtrack points.
    let base = explorer(SystemKind::LockillerTm, "3/c:L0,S0/c:L1,S1/c:L2,S2");
    let pruned = with_table(&base);
    assert_eq!(pruned.prune.as_ref().unwrap().pure, 0b111);
    let (a, b) = (base.explore(), pruned.explore());
    assert!(a.is_clean() && a.complete(), "{}", a.render());
    assert!(b.is_clean() && b.complete(), "{}", b.render());
    assert!(
        b.schedules < a.schedules,
        "static pruning must strictly reduce the disjoint kernel: {} !< {}",
        b.schedules,
        a.schedules
    );
}

#[test]
fn pruned_exploration_is_deterministic_across_jobs() {
    let mut pruned = with_table(&explorer(
        SystemKind::LockillerTm,
        "3/c:L0,S0/c:L1,S1/c:L2,S2",
    ));
    let a = pruned.explore();
    pruned.jobs = 4;
    let b = pruned.explore();
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.schedules, b.schedules);
}

#[test]
fn injection_disables_the_table() {
    // Fault injection voids the analysis premises; the explorer must
    // ignore the table and report the same space as the unpruned run.
    let mut base = explorer(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
    base.inject.drop_wakeups = true;
    let mut pruned = base.clone();
    pruned.prune = Some(lockiller::StaticIndependence {
        bank_foot: vec![0b01, 0b10],
        pure: 0b11, // a deliberately wrong table: must not be consulted
    });
    let (a, b) = (base.explore(), pruned.explore());
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.schedules, b.schedules);
    assert!(!b.static_prune, "injection must disable static pruning");
    assert_eq!(a.is_clean(), b.is_clean());
}

#[test]
fn corpus_witnesses_unaffected_by_analysis_premises() {
    // Every corpus witness kernel still gets an Analysis without
    // panicking, and witnesses replay regardless of what it computes
    // (replay never consults the table).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../tmverify/tests/corpus");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable witness");
        let w = tmobs::Witness::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let ex = Explorer::from_witness(&w).expect("witness reconstructs");
        let _ = Analysis::new(ex.system, ex.spec.clone(), ex.config());
        assert!(
            ex.replay(&w.decisions)
                .iter()
                .any(|v| v.check.name() == w.violation_kind),
            "{} stopped reproducing",
            path.display()
        );
        seen += 1;
    }
    assert!(seen >= 3);
}

// ---------------------------------------------------------------------
// VM-backend pruning: tables derived from the *bytecode* (vmabs) must
// satisfy the same contract — strict schedule reduction where purity is
// proven, bit-identical exploration where the table is vacuous, and no
// divergence between backends with or without a table installed.
// ---------------------------------------------------------------------

/// The bytecode-derived table for `ex`'s own kernels and geometry.
fn vm_table(ex: &Explorer) -> Option<lockiller::StaticIndependence> {
    tmstatic::VmAnalysis::new(ex.system, ex.config(), &ex.kernels()).independence()
}

#[test]
fn vm_backend_prunes_strictly_from_bytecode_table() {
    let mut base = explorer(SystemKind::LockillerTm, "3/c:L0,S0/c:L1,S1/c:L2,S2");
    base.backend = lockiller::Backend::Vm;
    let table = vm_table(&base).expect("disjoint kernels prove the premises");
    assert_eq!(table.pure, 0b111);
    assert!(table.can_refine_any());
    let mut pruned = base.clone();
    pruned.prune = Some(table);
    let (a, b) = (base.explore(), pruned.explore());
    assert!(a.is_clean() && a.complete(), "{}", a.render());
    assert!(b.is_clean() && b.complete(), "{}", b.render());
    assert!(b.static_prune);
    assert!(
        b.schedules < a.schedules,
        "bytecode table must strictly reduce the vm-backend exploration: {} !< {}",
        b.schedules,
        a.schedules
    );
}

#[test]
fn vacuous_bytecode_table_keeps_vm_exploration_bit_identical() {
    // Ring kernels: every thread aborts/parks, so vmabs proves no core
    // pure — installing the table must not change a single run.
    let mut base = explorer(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
    base.backend = lockiller::Backend::Vm;
    let table = vm_table(&base).expect("ring premises hold");
    assert!(!table.can_refine_any(), "ring threads are impure");
    let mut pruned = base.clone();
    pruned.prune = Some(table);
    let (a, b) = (base.explore(), pruned.explore());
    assert_eq!(a.digest, b.digest, "vacuous table must be bit-identical");
    assert_eq!(a.schedules, b.schedules);
}

#[test]
fn backends_agree_on_digests_with_and_without_pruning() {
    // The guestvm contract: both backends run the same ops, so the
    // exploration digests must agree backend-to-backend — pruned and
    // unpruned alike. (The spec- and bytecode-derived tables are
    // themselves equal; vm_consistency.rs pins that.)
    for prog in ["3/c:L0,S0/c:L1,S1/c:L2,S2", "2/c:L0,S1/c:L1,S0"] {
        let threads_ex = explorer(SystemKind::LockillerTm, prog);
        let mut vm_ex = threads_ex.clone();
        vm_ex.backend = lockiller::Backend::Vm;
        let (t, v) = (threads_ex.explore(), vm_ex.explore());
        assert_eq!(t.digest, v.digest, "{prog}: unpruned backends diverge");
        assert_eq!(t.schedules, v.schedules);

        let table = vm_table(&vm_ex).expect("premises hold for these kernels");
        let mut tp = threads_ex.clone();
        tp.prune = Some(table.clone());
        let mut vp = vm_ex.clone();
        vp.prune = Some(table);
        let (t, v) = (tp.explore(), vp.explore());
        assert_eq!(t.digest, v.digest, "{prog}: pruned backends diverge");
        assert_eq!(t.schedules, v.schedules);
    }
}
