//! DPOR pruning integration: the static independence table must only
//! ever *remove* schedules, never change a verdict — and where it
//! proves nothing, exploration must stay bit-identical to the unpruned
//! baseline (digest equality is the regression oracle).

use lockiller::SystemKind;
use tmstatic::Analysis;
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

fn explorer(system: SystemKind, prog: &str) -> Explorer {
    let spec = ProgSpec::parse(prog).expect("test specs are valid");
    let mut ex = Explorer::new(system, spec);
    ex.no_safety_net = true;
    ex
}

fn with_table(ex: &Explorer) -> Explorer {
    let a = Analysis::new(ex.system, ex.spec.clone(), ex.config());
    let table = a
        .independence()
        .expect("premises must hold for these kernels");
    let mut pruned = ex.clone();
    pruned.prune = Some(table);
    pruned
}

#[test]
fn empty_table_is_bit_identical() {
    // A default (empty) table refines nothing: every exploration count
    // and the order-sensitive digest must match the unpruned run.
    let base = explorer(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
    let mut pruned = base.clone();
    pruned.prune = Some(lockiller::StaticIndependence::default());
    let (a, b) = (base.explore(), pruned.explore());
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.schedules, b.schedules);
    assert!(b.static_prune && !a.static_prune);
}

#[test]
fn ring_table_proves_nothing_and_stays_identical() {
    // Every ring thread aborts/parks, so the analysis marks no core
    // pure: the table is present but can never refine a pair.
    let base = explorer(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
    let pruned = with_table(&base);
    assert_eq!(pruned.prune.as_ref().unwrap().pure, 0);
    let (a, b) = (base.explore(), pruned.explore());
    assert_eq!(a.digest, b.digest, "no pure cores => no behavior change");
    assert_eq!(a.schedules, b.schedules);
    assert!(a.is_clean() && a.complete());
}

#[test]
fn disjoint_htmlock_kernel_prunes_strictly_with_same_verdict() {
    // Three conflict-free threads on LockillerTm (HTMLock: no lock
    // subscription) are all pure with disjoint bank footprints, so
    // commit-class global events stop generating backtrack points.
    let base = explorer(SystemKind::LockillerTm, "3/c:L0,S0/c:L1,S1/c:L2,S2");
    let pruned = with_table(&base);
    assert_eq!(pruned.prune.as_ref().unwrap().pure, 0b111);
    let (a, b) = (base.explore(), pruned.explore());
    assert!(a.is_clean() && a.complete(), "{}", a.render());
    assert!(b.is_clean() && b.complete(), "{}", b.render());
    assert!(
        b.schedules < a.schedules,
        "static pruning must strictly reduce the disjoint kernel: {} !< {}",
        b.schedules,
        a.schedules
    );
}

#[test]
fn pruned_exploration_is_deterministic_across_jobs() {
    let mut pruned = with_table(&explorer(
        SystemKind::LockillerTm,
        "3/c:L0,S0/c:L1,S1/c:L2,S2",
    ));
    let a = pruned.explore();
    pruned.jobs = 4;
    let b = pruned.explore();
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.schedules, b.schedules);
}

#[test]
fn injection_disables_the_table() {
    // Fault injection voids the analysis premises; the explorer must
    // ignore the table and report the same space as the unpruned run.
    let mut base = explorer(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
    base.inject.drop_wakeups = true;
    let mut pruned = base.clone();
    pruned.prune = Some(lockiller::StaticIndependence {
        bank_foot: vec![0b01, 0b10],
        pure: 0b11, // a deliberately wrong table: must not be consulted
    });
    let (a, b) = (base.explore(), pruned.explore());
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.schedules, b.schedules);
    assert!(!b.static_prune, "injection must disable static pruning");
    assert_eq!(a.is_clean(), b.is_clean());
}

#[test]
fn corpus_witnesses_unaffected_by_analysis_premises() {
    // Every corpus witness kernel still gets an Analysis without
    // panicking, and witnesses replay regardless of what it computes
    // (replay never consults the table).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../tmverify/tests/corpus");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable witness");
        let w = tmobs::Witness::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let ex = Explorer::from_witness(&w).expect("witness reconstructs");
        let _ = Analysis::new(ex.system, ex.spec.clone(), ex.config());
        assert!(
            ex.replay(&w.decisions)
                .iter()
                .any(|v| v.check.name() == w.violation_kind),
            "{} stopped reproducing",
            path.display()
        );
        seen += 1;
    }
    assert!(seen >= 3);
}
