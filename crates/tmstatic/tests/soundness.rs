//! Soundness property: the static may-conflict relation must
//! over-approximate the dynamic one. Every `ConflictEdge` the memory
//! system records during a real run — on the injected-bug corpus
//! kernels and on batches of deterministically generated random specs —
//! must be predicted by [`Analysis::may_conflict`]. A miss is a bug in
//! `tmstatic`, never in the simulator.
//!
//! This doubles as the layout cross-check: if
//! `SpecProgram::LOCK_LINE`/`data_line` ever drifted from the runner's
//! real arena layout, dynamic edges would land on physical lines the
//! analysis maps to nothing and the prediction would fail.

use lockiller::{Runner, SystemKind};
use tmobs::Recorder;
use tmstatic::Analysis;
use tmverify::progs::{ProgSpec, SpecProgram};
use tmverify::Explorer;

/// Run `spec` to completion under the explorer's geometry with conflict
/// recording armed; assert every recorded edge is statically predicted.
fn assert_sound(system: SystemKind, spec: &ProgSpec, tiny_l1: bool, label: &str) -> usize {
    let mut ex = Explorer::new(system, spec.clone());
    ex.tiny_l1 = tiny_l1;
    let cfg = ex.config();
    let analysis = Analysis::new(system, spec.clone(), cfg.clone());

    let (handle, rec) = Recorder::shared(500);
    let mut prog = SpecProgram::new(spec.clone());
    let out = Runner::new(system)
        .threads(spec.num_threads())
        .config(cfg)
        .retries(2)
        .seed(0)
        .obs(handle)
        .run(&mut prog);
    assert!(
        out.end.is_done(),
        "{label}: run must complete for the recording to be total"
    );
    let rec = std::mem::take(&mut *rec.lock().unwrap());
    for ev in rec.conflicts() {
        let e = &ev.edge;
        assert!(
            analysis.may_conflict(e.attacker, e.victim, e.line),
            "{label}: dynamic conflict not statically predicted: \
             attacker {} victim {} line L{} ({:?} at cycle {})",
            e.attacker,
            e.victim,
            e.line.0,
            e.resolution,
            ev.cycle,
        );
    }
    rec.conflicts().len()
}

#[test]
fn corpus_kernels_are_statically_predicted() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../tmverify/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 3, "corpus must cover the injected bugs");
    let mut edges = 0;
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable witness");
        let w = tmobs::Witness::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let system = SystemKind::from_name(&w.system).expect("witness system exists");
        let spec = ProgSpec::parse(&w.prog).expect("witness prog parses");
        edges += assert_sound(system, &spec, w.tiny_l1, &w.prog);
    }
    assert!(edges > 0, "the corpus kernels must actually conflict");
}

#[test]
fn ring_kernels_are_statically_predicted_across_systems() {
    let mut edges = 0;
    for system in [
        SystemKind::Cgl,
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ] {
        for (threads, lines) in [(2, 2), (3, 2), (3, 3)] {
            let spec = ProgSpec::conflict_ring(threads, lines);
            edges += assert_sound(system, &spec, false, &format!("{} ring", system.name()));
        }
    }
    assert!(edges > 0);
}

#[test]
fn overflowing_kernel_with_signatures_is_statically_predicted() {
    // Tiny L1 forces both transactions to overflow and switch to STL
    // mode on LockillerTm: conflict edges can come from Bloom-signature
    // matches (including false positives on disjoint line sets), which
    // the static relation must cover.
    let spec = ProgSpec::parse("6/c:L0,L1,L2,S0/c:L3,L4,L5,S3").unwrap();
    assert_sound(SystemKind::LockillerTm, &spec, true, "overflow kernel");
    assert_sound(
        SystemKind::LockillerRwi,
        &spec,
        true,
        "overflow kernel (subscribing)",
    );
}

#[test]
fn random_specs_are_statically_predicted() {
    let mut edges = 0;
    for seed in 0..8u64 {
        let mut rng = proptest::Rng::new(0x50DA + seed);
        let spec = ProgSpec::random(&mut rng, 2 + (seed as usize % 2), 3);
        for system in [SystemKind::LockillerRwi, SystemKind::LockillerTm] {
            edges += assert_sound(
                system,
                &spec,
                false,
                &format!("random #{seed} {}", spec.render()),
            );
        }
    }
    assert!(edges > 0, "random batch must exercise some conflicts");
}
