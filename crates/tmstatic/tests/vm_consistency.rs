//! Consistency between the two analysis layers: for every `ProgSpec`,
//! running the bytecode abstract interpreter over
//! `SpecProgram::compile_all` must *agree with* the spec-level
//! [`Analysis`] — same footprints (spec lines mapped through
//! `data_line`), same per-thread verdicts, same pruning table. The
//! compiler is a straight-line translator, so nothing may be lost
//! (unsound) or invented (imprecise) in either direction; a divergence
//! names the spec, thread, and set so the offending translation is
//! immediately identifiable.

use lockiller::SystemKind;
use sim_core::types::LineAddr;
use std::collections::BTreeSet;
use tmstatic::{Analysis, VmAnalysis};
use tmverify::progs::{ProgSpec, SpecProgram};
use tmverify::Explorer;

fn phys(spec_lines: &BTreeSet<u64>) -> BTreeSet<LineAddr> {
    spec_lines
        .iter()
        .map(|&l| SpecProgram::data_line(l))
        .collect()
}

/// Assert full agreement between the spec-level and bytecode-level
/// analyses of `spec` under `system`.
fn assert_consistent(system: SystemKind, spec: &ProgSpec, tiny_l1: bool) {
    let mut ex = Explorer::new(system, spec.clone());
    ex.tiny_l1 = tiny_l1;
    let cfg = ex.config();
    let sa = Analysis::new(system, spec.clone(), cfg.clone());
    let kernels = SpecProgram::compile_all(spec);
    let va = VmAnalysis::new(system, cfg, &kernels);
    let label = format!("{} on {}", spec.render(), system.name());

    assert_eq!(sa.threads.len(), va.threads.len(), "{label}: thread count");
    for (t, (st, vt)) in sa.threads.iter().zip(&va.threads).enumerate() {
        // Footprints: compiled kernels are straight-line with constant
        // addresses, so the abstract sets must be *exactly* the spec
        // sets pushed through the arena layout — no widening allowed.
        for (name, spec_set, vm_set) in [
            ("crit_reads", &st.crit_reads, &vt.abs.crit_reads),
            ("crit_writes", &st.crit_writes, &vt.abs.crit_writes),
            ("plain_reads", &st.plain_reads, &vt.abs.plain_reads),
            ("plain_writes", &st.plain_writes, &vt.abs.plain_writes),
        ] {
            let vm_lines = vm_set.lines().unwrap_or_else(|| {
                panic!("{label}: thread {t} {name} widened on a straight-line kernel")
            });
            assert_eq!(
                &phys(spec_set),
                vm_lines,
                "{label}: thread {t} {name} diverges between spec and bytecode"
            );
        }
        // Per-region footprints against the corresponding critical
        // segments, in program order.
        let crit_segs: Vec<_> = sa.spec.threads[t]
            .iter()
            .enumerate()
            .filter(|(_, seg)| seg.critical)
            .collect();
        assert_eq!(
            crit_segs.len(),
            vt.abs.regions.len(),
            "{label}: thread {t} critical-region count"
        );
        for ((s, _), (j, region)) in crit_segs.iter().zip(vt.abs.regions.iter().enumerate()) {
            let sf = &sa.threads[t].segs[*s];
            assert_eq!(
                phys(&sf.reads),
                region.reads.lines().cloned().unwrap(),
                "{label}: thread {t} segment {s} (region {j}) reads"
            );
            assert_eq!(
                phys(&sf.writes),
                region.writes.lines().cloned().unwrap(),
                "{label}: thread {t} segment {s} (region {j}) writes"
            );
        }
        // Derived verdicts: every analysis layer must agree.
        for (name, a, b) in [
            ("has_critical", st.has_critical, vt.has_critical),
            ("overflow", st.overflow, vt.overflow),
            ("overflow_unknown", false, vt.overflow_unknown),
            ("tx_abort", st.tx_abort, vt.tx_abort),
            ("parks", st.parks, vt.parks),
            ("fallback", st.fallback, vt.fallback),
            ("lock_read", st.lock_read, vt.lock_read),
            ("lock_write", st.lock_write, vt.lock_write),
            ("pure", st.pure, vt.pure),
        ] {
            assert_eq!(a, b, "{label}: thread {t} verdict {name} diverges");
        }
    }

    // The pruning tables must be identical (or identically absent).
    match (sa.independence(), va.independence()) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.bank_foot, b.bank_foot, "{label}: table bank_foot");
            assert_eq!(a.pure, b.pure, "{label}: table pure mask");
        }
        (a, b) => panic!(
            "{label}: table availability diverges (spec: {}, bytecode: {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

const SYSTEMS: [SystemKind; 5] = [
    SystemKind::Cgl,
    SystemKind::Baseline,
    SystemKind::LockillerRwi,
    SystemKind::LockillerRwil,
    SystemKind::LockillerTm,
];

#[test]
fn corpus_witness_specs_agree() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../tmverify/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 3);
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable witness");
        let w = tmobs::Witness::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let system = SystemKind::from_name(&w.system).expect("witness system exists");
        let spec = ProgSpec::parse(&w.prog).expect("witness prog parses");
        assert_consistent(system, &spec, w.tiny_l1);
    }
}

#[test]
fn characteristic_specs_agree_across_all_systems() {
    for system in SYSTEMS {
        for prog in [
            "2/c:L0,S1/p:L1",            // mixed-access demo
            "2/c:L0,S1/c:L1,S0",         // hand-off ring
            "3/c:L0,S0/c:L1,S1/c:L2,S2", // disjoint (prunable)
            "2/p:C5,L0/p:S0,C2",         // plain-only
        ] {
            let spec = ProgSpec::parse(prog).expect("test spec parses");
            assert_consistent(system, &spec, false);
        }
    }
}

#[test]
fn overflow_spec_agrees_under_tiny_l1() {
    let spec = ProgSpec::parse("6/c:L0,L1,L2,S0/c:L3,L4,L5,S3").unwrap();
    for system in [SystemKind::LockillerTm, SystemKind::LockillerRwi] {
        assert_consistent(system, &spec, true);
        assert_consistent(system, &spec, false);
    }
}

#[test]
fn random_specs_agree() {
    for seed in 0..10u64 {
        let mut rng = proptest::Rng::new(0xC0 + seed);
        let spec = ProgSpec::random(&mut rng, 2 + (seed as usize % 3), 4);
        for system in SYSTEMS {
            assert_consistent(system, &spec, false);
        }
    }
}
