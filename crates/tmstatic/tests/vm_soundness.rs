//! Soundness property for the bytecode abstract interpreter: every
//! dynamically observed line access and every recorded conflict edge
//! must be inside the abstract footprint [`VmAnalysis`] computed from
//! the kernels alone — on **both** execution backends, which the
//! `guestvm` contract requires to be op-identical.
//!
//! Covered corpora: the injected-bug witness specs (compiled to
//! bytecode), the STAMP VM workloads (kmeans both contention modes,
//! IntruderFlow with its data-dependent loops — the Top-degradation
//! stress case), and batches of deterministically generated random
//! kernels exercising computed addresses and counted loops that no
//! `ProgSpec` can express.

use guestvm::{run_on_ctx, BinOp, Cond, GuestVm, Kernel, KernelBuilder};
use lockiller::{
    Backend, GuestCtx, GuestEnv, GuestExec, Program, Runner, SetupCtx, SystemKind, TraceKind,
};
use sim_core::config::{CheckCfg, SystemConfig, SystemConfigBuilder};
use std::sync::Arc;
use tmobs::Recorder;
use tmstatic::VmAnalysis;
use tmverify::progs::{ProgSpec, SpecProgram};
use tmverify::Explorer;

/// Checked-mode geometry matching `Explorer::config` for `threads`.
fn checked_cfg(threads: usize, tiny_l1: bool) -> SystemConfig {
    let mut b = SystemConfigBuilder::from_config(SystemConfig::testing(threads.max(2)));
    if tiny_l1 {
        b = b.l1_capacity(128, 2);
    }
    b.check(CheckCfg {
        enabled: true,
        fault: Default::default(),
    })
    .build()
    .expect("test config is valid")
}

/// Run `prog` with tracing + conflict recording on `backend`; assert
/// every traced access and conflict edge lands inside the abstract
/// footprint of `kernels`.
fn assert_vm_sound<P: Program>(
    system: SystemKind,
    cfg: SystemConfig,
    kernels: &[Kernel],
    prog: &mut P,
    backend: Backend,
    label: &str,
) -> usize {
    let threads = kernels.len();
    let analysis = VmAnalysis::new(system, cfg.clone(), kernels);
    let (handle, rec) = Recorder::shared(500);
    let out = Runner::new(system)
        .threads(threads)
        .config(cfg)
        .backend(backend)
        .retries(2)
        .seed(0)
        .tracing()
        .obs(handle)
        .run(prog);

    // Touched-line soundness: every traced data access by core c must
    // be a member of the abstract phys-line set of c.
    let mut accesses = 0usize;
    for ev in out.trace_events() {
        let (line, wrote) = match ev.kind {
            TraceKind::Read { line, .. } => (line, false),
            TraceKind::Write { line, .. } => (line, true),
            _ => continue,
        };
        let core = ev.core;
        if core >= threads {
            continue;
        }
        accesses += 1;
        assert!(
            analysis.phys_lines(core).contains(line),
            "{label} [{}]: core {core} {} line L{} outside the abstract footprint",
            backend.name(),
            if wrote { "wrote" } else { "read" },
            line.0,
        );
    }
    assert!(accesses > 0, "{label}: the run must actually touch memory");

    // Conflict-edge soundness: the static may-conflict relation must
    // predict every recorded edge.
    let rec = std::mem::take(&mut *rec.lock().unwrap());
    let mut edges = 0usize;
    for ev in rec.conflicts() {
        let e = &ev.edge;
        edges += 1;
        assert!(
            analysis.may_conflict(e.attacker, e.victim, e.line),
            "{label} [{}]: dynamic conflict not statically predicted: \
             attacker {} victim {} line L{} ({:?} at cycle {})",
            backend.name(),
            e.attacker,
            e.victim,
            e.line.0,
            e.resolution,
            ev.cycle,
        );
    }
    edges
}

#[test]
fn corpus_specs_compiled_to_bytecode_are_sound_on_both_backends() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../tmverify/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 3, "corpus must cover the injected bugs");
    let mut edges = 0;
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable witness");
        let w = tmobs::Witness::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let system = SystemKind::from_name(&w.system).expect("witness system exists");
        let spec = ProgSpec::parse(&w.prog).expect("witness prog parses");
        let kernels = SpecProgram::compile_all(&spec);
        let mut ex = Explorer::new(system, spec.clone());
        ex.tiny_l1 = w.tiny_l1;
        for backend in [Backend::Threads, Backend::Vm] {
            edges += assert_vm_sound(
                system,
                ex.config(),
                &kernels,
                &mut SpecProgram::new(spec.clone()),
                backend,
                &w.prog,
            );
        }
    }
    assert!(edges > 0, "the corpus kernels must actually conflict");
}

#[test]
fn stamp_kernels_are_sound_on_both_backends() {
    use stamp::kmeans::Kmeans;
    use stamp::vm::IntruderFlow;
    use stamp::Scale;

    let threads = 2;
    for system in [SystemKind::LockillerTm, SystemKind::LockillerRwi] {
        for high in [true, false] {
            // Construction is deterministic, so a second instance
            // yields byte-identical kernels to the one being run.
            let kernels = Kmeans::new(Scale::Tiny, threads, high).compile_standalone();
            for backend in [Backend::Threads, Backend::Vm] {
                assert_vm_sound(
                    system,
                    checked_cfg(threads, false),
                    &kernels,
                    &mut Kmeans::new(Scale::Tiny, threads, high),
                    backend,
                    &format!("kmeans hc={high}"),
                );
            }
        }
        // IntruderFlow pops a shared queue via CAS and walks
        // data-dependent indices: its footprint widens to Top, which
        // must still be sound (Top contains every traced line).
        let kernels = IntruderFlow::new(Scale::Tiny, threads).compile_standalone();
        let a = VmAnalysis::new(system, checked_cfg(threads, false), &kernels);
        assert!(
            a.threads.iter().any(|t| t.abs.touched().is_top()),
            "IntruderFlow must exercise the Top degradation path"
        );
        assert!(a.independence().is_none());
        for backend in [Backend::Threads, Backend::Vm] {
            assert_vm_sound(
                system,
                checked_cfg(threads, false),
                &kernels,
                &mut IntruderFlow::new(Scale::Tiny, threads),
                backend,
                "intruder-flow",
            );
        }
    }
}

/// Test-local program running one arbitrary kernel per thread on either
/// backend (`run_on_ctx` host interpretation vs the resumable VM).
struct KernelProg {
    kernels: Vec<Arc<Kernel>>,
}

impl Program for KernelProg {
    fn name(&self) -> &str {
        "random-kernels"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        // Back the fixed window the generated kernels address: 16 data
        // lines right after the runner's lock allocation, zeroed.
        let base = s.alloc(16 * 8);
        for w in 0..16 * 8 {
            s.write(base.add(w), 0);
        }
    }

    fn run(&self, ctx: &mut GuestCtx) {
        run_on_ctx(&self.kernels[ctx.tid], ctx);
    }

    fn guest_exec(&self, env: GuestEnv) -> Option<Box<dyn GuestExec + '_>> {
        Some(GuestVm::boxed(Arc::clone(&self.kernels[env.tid]), &env))
    }
}

/// Deterministic random kernel touching words inside the 16-line window
/// starting at word 16 (`data_line(0)`..`data_line(15)`), using the
/// address-arithmetic and loop shapes `ProgSpec` cannot express.
fn random_kernel(rng: &mut proptest::Rng, tid: usize) -> Kernel {
    let word = |l: u64, off: u64| 16 + l * 8 + off;
    let mut b = KernelBuilder::new(format!("rand[{tid}]"), 6);
    // A counted strided loop: for i in 0..n { touch [base + i*stride] }.
    let n = 2 + rng.below(4); // 2..=5 iterations
    let stride = [4, 8, 16][rng.below(3) as usize];
    let base = word(rng.below(4), 0);
    let (head, done) = (b.label(), b.label());
    b.imm(0, 0).imm(1, n).imm(4, 0xbeef ^ tid as u64);
    b.bind(head);
    b.br(Cond::Ge, 0, 1, done);
    b.bini(BinOp::Mul, 2, 0, stride);
    b.bini(BinOp::Add, 2, 2, base);
    if rng.below(2) == 0 {
        b.load(3, 2, 0);
    } else {
        b.store(2, 0, 4);
    }
    b.bini(BinOp::Add, 0, 0, 1);
    b.jmp(head);
    b.bind(done);
    // A critical section over a shared hot line (every thread stores
    // line 8, guaranteeing cross-thread conflicts) plus 0-1 more.
    b.crit_begin();
    b.imm(2, word(8, 0)).store(2, 0, 4);
    for _ in 0..rng.below(2) {
        let l = 9 + rng.below(3);
        b.imm(2, word(l, rng.below(8)));
        if rng.below(2) == 0 {
            b.load(3, 2, 0);
        } else {
            b.store(2, 0, 4);
        }
    }
    b.crit_end();
    // A plain tail access, sometimes via CAS.
    b.imm(2, word(12 + rng.below(4), 0));
    if rng.below(3) == 0 {
        b.imm(4, 0).imm(5, 1 + tid as u64);
        b.cas(3, 2, 4, 5);
    } else {
        b.load(3, 2, 0);
    }
    b.halt();
    let k = b.build();
    k.validate().expect("generated kernels are well-formed");
    k
}

#[test]
fn random_kernels_are_sound_on_both_backends() {
    let mut edges = 0;
    for seed in 0..6u64 {
        let mut rng = proptest::Rng::new(0xab5_0000 + seed);
        let threads = 2 + (seed as usize % 2);
        let kernels: Vec<Kernel> = (0..threads).map(|t| random_kernel(&mut rng, t)).collect();
        for system in [SystemKind::LockillerTm, SystemKind::LockillerRwi] {
            for backend in [Backend::Threads, Backend::Vm] {
                edges += assert_vm_sound(
                    system,
                    checked_cfg(threads, false),
                    &kernels,
                    &mut KernelProg {
                        kernels: kernels.iter().cloned().map(Arc::new).collect(),
                    },
                    backend,
                    &format!("random seed={seed}"),
                );
            }
        }
    }
    assert!(edges > 0, "random kernels must produce some conflicts");
}
