//! Golden-file tests for the `tmlint --json` diagnostic schema.
//!
//! The JSON emitted per diagnostic is a machine interface (CI baselines
//! are diffed line-by-line against it), so its exact shape — key order,
//! rule names, severities, line lists — is pinned here. To bless a
//! deliberate change, regenerate with:
//!
//! ```text
//! tmlint --prog SPEC [--system NAME] [--tiny-l1] --json > tests/golden/NAME.jsonl
//! ```

use lockiller::SystemKind;
use tmstatic::{lint, Analysis};
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

fn lint_json(system: SystemKind, prog: &str, tiny_l1: bool) -> String {
    let spec = ProgSpec::parse(prog).expect("golden specs parse");
    let mut ex = Explorer::new(system, spec.clone());
    ex.tiny_l1 = tiny_l1;
    let analysis = Analysis::new(system, spec, ex.config());
    let mut out = String::new();
    for d in lint(&analysis) {
        out.push_str(&d.to_json());
        out.push('\n');
    }
    out
}

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn mixed_access_race_diagnostics_match_golden() {
    let got = lint_json(SystemKind::LockillerRwi, "2/c:L0,S1/p:L1", false);
    assert_eq!(got, golden("mixed_access.jsonl"));
    assert!(got.contains(r#""rule": "mixed-access-race""#));
    assert!(got.contains(r#""severity": "error""#));
}

#[test]
fn capacity_overflow_diagnostics_match_golden() {
    let got = lint_json(
        SystemKind::LockillerTm,
        "6/c:L0,L1,L2,S0/c:L3,L4,L5,S3",
        true,
    );
    assert_eq!(got, golden("capacity_overflow.jsonl"));
    // One warning per overflowing critical segment, both attributed.
    assert_eq!(got.matches(r#""rule": "capacity-overflow""#).count(), 2);
}

#[test]
fn handoff_cycle_diagnostics_match_golden() {
    let got = lint_json(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0", false);
    assert_eq!(got, golden("handoff_cycle.jsonl"));
    assert!(got.contains(r#""rule": "handoff-cycle""#));
}

#[test]
fn race_free_corpus_kernels_raise_no_errors() {
    // Acceptance: zero false positives (error severity) on the
    // conflict-ring kernels the verify corpus is built from.
    for system in [SystemKind::LockillerRwi, SystemKind::LockillerTm] {
        for (threads, lines) in [(2, 2), (3, 3), (4, 2)] {
            let spec = ProgSpec::conflict_ring(threads, lines);
            let ex = Explorer::new(system, spec.clone());
            let analysis = Analysis::new(system, spec, ex.config());
            let errors: Vec<_> = lint(&analysis)
                .into_iter()
                .filter(|d| d.severity == tmstatic::Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "{} ring {threads}x{lines}: false positives {errors:?}",
                system.name()
            );
        }
    }
}
