//! Static lint CLI for `ProgSpec` kernels and compiled VM bytecode.
//!
//! ```text
//! tmlint --prog SPEC [--system NAME] [--tiny-l1] [--json]
//!        [--baseline FILE] [--table]
//! tmlint kernel (--prog SPEC | --stamp NAME) [--threads N]
//!        [--system NAME] [--tiny-l1] [--json] [--baseline FILE] [--table]
//! ```
//!
//! The default mode analyzes the spec DSL directly (`tmstatic::lint`).
//! The `kernel` mode compiles to guest bytecode first and runs the
//! abstract interpreter (`tmstatic::vmabs`) over what `tmverify
//! --backend vm` would actually execute — `--prog` compiles the spec
//! under the standard runner arena layout, `--stamp` takes a STAMP VM
//! workload by name (`kmeans`, `kmeans-low`, `intruder-flow`). Both
//! modes share the simulator geometry `tmverify` explores (`--tiny-l1`
//! matches the explorer's shrunk L1), the stable one-JSON-object-per-
//! line schema, and the `--baseline` diff protocol; in kernel mode the
//! position fields are (thread, critical-region ordinal, instruction
//! pc) and `lines` are physical line numbers (see `tmstatic::vmlint`).
//! `--table` reports the DPOR pruning table the analysis would hand the
//! explorer.
//!
//! `--baseline FILE` compares against a checked-in baseline (the
//! `--json` output of a blessed run): only diagnostics *not* present in
//! the baseline count. CI uses this to fail on new diagnostics without
//! re-litigating known ones.
//!
//! Exit codes: 0 no (new) error-severity diagnostics, 1 at least one
//! (new) error, 2 bad usage or unreadable input.

use lockiller::SystemKind;
use tmstatic::{lint, lint_kernels, Analysis, Diag, Severity, VmAnalysis};
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

fn usage() -> ! {
    eprintln!(
        "usage: tmlint --prog SPEC [--system NAME] [--tiny-l1] [--json]\n\
         \x20             [--baseline FILE] [--table]\n\
         \x20      tmlint kernel (--prog SPEC | --stamp NAME) [--threads N]\n\
         \x20             [--system NAME] [--tiny-l1] [--json] [--baseline FILE] [--table]"
    );
    std::process::exit(2);
}

struct Opts {
    kernel_mode: bool,
    prog: Option<String>,
    stamp: Option<String>,
    threads: usize,
    system: SystemKind,
    tiny_l1: bool,
    json: bool,
    table: bool,
    baseline: Option<std::path::PathBuf>,
}

fn parse_args() -> Opts {
    let mut it = std::env::args().skip(1).peekable();
    let kernel_mode = it.peek().is_some_and(|a| a == "kernel");
    if kernel_mode {
        it.next();
    }
    let mut o = Opts {
        kernel_mode,
        prog: None,
        stamp: None,
        threads: 2,
        system: SystemKind::LockillerRwi,
        tiny_l1: false,
        json: false,
        table: false,
        baseline: None,
    };
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--prog" | "-p" => o.prog = Some(val()),
            "--stamp" if kernel_mode => o.stamp = Some(val()),
            "--threads" if kernel_mode => {
                let v = val();
                let Ok(n) = v.parse::<usize>() else {
                    eprintln!("tmlint: bad --threads {v:?}");
                    usage();
                };
                o.threads = n.max(1);
            }
            "--system" | "-s" => {
                let v = val();
                let Some(k) = SystemKind::from_name(&v) else {
                    eprintln!("tmlint: unknown system {v:?}");
                    usage();
                };
                o.system = k;
            }
            "--tiny-l1" => o.tiny_l1 = true,
            "--json" => o.json = true,
            "--table" => o.table = true,
            "--baseline" => o.baseline = Some(val().into()),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("tmlint: unknown argument {other:?}");
                usage();
            }
        }
    }
    o
}

/// Report diagnostics against the optional baseline; returns the exit
/// code. Shared verbatim by both modes so the JSON / baseline / exit
/// contract cannot drift between them.
fn report(diags: &[Diag], o: &Opts, subject: &str) -> i32 {
    let known: Vec<String> = match &o.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(str::to_string).collect(),
            Err(e) => {
                eprintln!("tmlint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        None => Vec::new(),
    };
    let mut new_errors = 0usize;
    let mut new_any = 0usize;
    for d in diags {
        let row = d.to_json();
        let is_new = !known.contains(&row);
        if is_new {
            new_any += 1;
            if d.severity == Severity::Error {
                new_errors += 1;
            }
        }
        if o.json {
            println!("{row}");
        } else {
            let tag = if o.baseline.is_some() && !is_new {
                " (baseline)"
            } else {
                ""
            };
            println!("{}{tag}", d.render());
        }
    }
    if !o.json {
        eprintln!(
            "tmlint: {} diagnostic(s){} on {} ({})",
            diags.len(),
            if o.baseline.is_some() {
                format!(", {new_any} new vs baseline")
            } else {
                String::new()
            },
            subject,
            o.system.name(),
        );
    }
    i32::from(new_errors > 0)
}

fn print_table(t: Option<lockiller::StaticIndependence>) {
    match t {
        Some(t) => {
            let foot: Vec<String> = t.bank_foot.iter().map(|f| format!("{f:#b}")).collect();
            eprintln!(
                "tmlint: pruning table: pure={:#b} bank_foot=[{}]",
                t.pure,
                foot.join(", ")
            );
        }
        None => eprintln!("tmlint: pruning table unavailable (premises not provable)"),
    }
}

/// Explorer-identical geometry for `threads` simulated threads.
fn geometry(threads: usize, tiny_l1: bool) -> sim_core::config::SystemConfig {
    // Reuse Explorer::config so kernel mode can never drift from what
    // `tmverify --backend vm` simulates; the spec itself is irrelevant
    // beyond its thread count.
    let mut ex = Explorer::new(
        SystemKind::LockillerRwi,
        ProgSpec::parse(&format!("{threads}/p:C1")).expect("trivial spec"),
    );
    ex.tiny_l1 = tiny_l1;
    ex.config()
}

fn main() {
    let o = parse_args();
    if o.kernel_mode {
        let (kernels, subject) = match (&o.prog, &o.stamp) {
            (Some(p), None) => {
                let spec = match ProgSpec::parse(p) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("tmlint: {e}");
                        std::process::exit(2);
                    }
                };
                let subject = format!("kernels of {}", spec.render());
                (tmverify::progs::SpecProgram::compile_all(&spec), subject)
            }
            (None, Some(name)) => {
                let kernels = match name.as_str() {
                    "kmeans" => stamp::kmeans::Kmeans::new(stamp::Scale::Tiny, o.threads, true)
                        .compile_standalone(),
                    "kmeans-low" => {
                        stamp::kmeans::Kmeans::new(stamp::Scale::Tiny, o.threads, false)
                            .compile_standalone()
                    }
                    "intruder-flow" => stamp::vm::IntruderFlow::new(stamp::Scale::Tiny, o.threads)
                        .compile_standalone(),
                    other => {
                        eprintln!("tmlint: unknown stamp workload {other:?}");
                        usage();
                    }
                };
                (kernels, format!("stamp {name} x{}", o.threads))
            }
            _ => {
                eprintln!("tmlint: kernel mode needs exactly one of --prog / --stamp");
                usage();
            }
        };
        let cfg = geometry(kernels.len(), o.tiny_l1);
        let a = VmAnalysis::new(o.system, cfg, &kernels);
        let diags = lint_kernels(&a);
        let code = report(&diags, &o, &subject);
        if o.table {
            print_table(a.independence());
        }
        std::process::exit(code);
    }

    let Some(prog) = o.prog.clone() else {
        eprintln!("tmlint: --prog is required");
        usage();
    };
    let spec = match ProgSpec::parse(&prog) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tmlint: {e}");
            std::process::exit(2);
        }
    };
    let mut ex = Explorer::new(o.system, spec.clone());
    ex.tiny_l1 = o.tiny_l1;
    let analysis = Analysis::new(o.system, spec, ex.config());
    let diags = lint(&analysis);
    let code = report(&diags, &o, &analysis.spec.render());
    if o.table {
        print_table(analysis.independence());
    }
    std::process::exit(code);
}
