//! Static lint CLI for `ProgSpec` kernels.
//!
//! ```text
//! tmlint --prog SPEC [--system NAME] [--tiny-l1] [--json]
//!        [--baseline FILE] [--table]
//! ```
//!
//! Analyzes the kernel under the same simulator geometry `tmverify`
//! would explore (`--tiny-l1` matches the explorer's shrunk L1) and
//! prints the diagnostics — human-readable by default, one stable JSON
//! object per line with `--json` (schema documented in
//! `tmstatic::lint`). `--table` additionally reports the DPOR pruning
//! table the analysis would hand the explorer.
//!
//! `--baseline FILE` compares against a checked-in baseline (the
//! `--json` output of a blessed run): only diagnostics *not* present in
//! the baseline count. CI uses this to fail on new diagnostics without
//! re-litigating known ones.
//!
//! Exit codes: 0 no (new) error-severity diagnostics, 1 at least one
//! (new) error, 2 bad usage or unreadable input.

use lockiller::SystemKind;
use tmstatic::{lint, Analysis, Severity};
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

fn usage() -> ! {
    eprintln!(
        "usage: tmlint --prog SPEC [--system NAME] [--tiny-l1] [--json]\n\
         \x20             [--baseline FILE] [--table]"
    );
    std::process::exit(2);
}

fn main() {
    let mut it = std::env::args().skip(1);
    let mut prog: Option<String> = None;
    let mut system = SystemKind::LockillerRwi;
    let mut tiny_l1 = false;
    let mut json = false;
    let mut table = false;
    let mut baseline: Option<std::path::PathBuf> = None;
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--prog" | "-p" => prog = Some(val()),
            "--system" | "-s" => {
                let v = val();
                let Some(k) = SystemKind::from_name(&v) else {
                    eprintln!("tmlint: unknown system {v:?}");
                    usage();
                };
                system = k;
            }
            "--tiny-l1" => tiny_l1 = true,
            "--json" => json = true,
            "--table" => table = true,
            "--baseline" => baseline = Some(val().into()),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("tmlint: unknown argument {other:?}");
                usage();
            }
        }
    }
    let Some(prog) = prog else {
        eprintln!("tmlint: --prog is required");
        usage();
    };
    let spec = match ProgSpec::parse(&prog) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tmlint: {e}");
            std::process::exit(2);
        }
    };
    let mut ex = Explorer::new(system, spec.clone());
    ex.tiny_l1 = tiny_l1;
    let analysis = Analysis::new(system, spec, ex.config());
    let diags = lint(&analysis);

    let known: Vec<String> = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(str::to_string).collect(),
            Err(e) => {
                eprintln!("tmlint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        None => Vec::new(),
    };
    let mut new_errors = 0usize;
    let mut new_any = 0usize;
    for d in &diags {
        let row = d.to_json();
        let is_new = !known.contains(&row);
        if is_new {
            new_any += 1;
            if d.severity == Severity::Error {
                new_errors += 1;
            }
        }
        if json {
            println!("{row}");
        } else {
            let tag = if baseline.is_some() && !is_new {
                " (baseline)"
            } else {
                ""
            };
            println!("{}{tag}", d.render());
        }
    }
    if table {
        match analysis.independence() {
            Some(t) => {
                let foot: Vec<String> = t.bank_foot.iter().map(|f| format!("{f:#b}")).collect();
                eprintln!(
                    "tmlint: pruning table: pure={:#b} bank_foot=[{}]",
                    t.pure,
                    foot.join(", ")
                );
            }
            None => eprintln!("tmlint: pruning table unavailable (premises not provable)"),
        }
    }
    if !json {
        eprintln!(
            "tmlint: {} diagnostic(s){} on {} ({})",
            diags.len(),
            if baseline.is_some() {
                format!(", {new_any} new vs baseline")
            } else {
                String::new()
            },
            analysis.spec.render(),
            analysis.system.name(),
        );
    }
    std::process::exit(i32::from(new_errors > 0));
}
