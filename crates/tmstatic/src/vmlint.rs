//! Lint rules over a [`VmAnalysis`] — the bytecode-level counterpart
//! of [`lint`](crate::lint).
//!
//! Reuses the [`Diag`] type and its **stable** JSON schema, with the
//! position fields reinterpreted for kernels: `thread` is the simulated
//! thread (kernel index), `segment` is the critical-region ordinal
//! within that kernel (`null` for plain code), `op` is the offending
//! **instruction pc**, and `lines` are *physical* cache-line numbers
//! (the spec-level lints report spec line indices; kernels have no
//! spec to index into).
//!
//! Every rule reports **proven facts only**: where the abstract
//! footprint widened to Top the lint stays silent rather than guessing
//! — the conservative direction for diagnostics (no false alarms). The
//! pruning side inverts the polarity: [`VmAnalysis::independence`]
//! degrades Top to *no table* (no missed conflicts). Between the two,
//! widening can cost precision but never soundness.

use crate::lint::{Diag, Severity};
use crate::vmabs::{AbsLines, LoopBound, VmAnalysis};
use sim_core::types::LineAddr;
use std::collections::BTreeSet;

/// Run every kernel rule; deterministic order (rule, thread, pc).
pub fn lint_kernels(a: &VmAnalysis) -> Vec<Diag> {
    let mut out = Vec::new();
    mixed_access_race(a, &mut out);
    capacity_overflow(a, &mut out);
    rollback_unsafe_store(a, &mut out);
    unreachable_instruction(a, &mut out);
    unbounded_loop(a, &mut out);
    dead_store(a, &mut out);
    out
}

/// Ordinal of the critical region beginning at `begin` within thread
/// `t`'s kernel (regions are sorted by begin pc).
fn region_ordinal(a: &VmAnalysis, t: usize, begin: usize) -> Option<usize> {
    a.threads[t]
        .abs
        .regions
        .iter()
        .position(|r| r.begin == begin)
}

fn line_nums(s: &BTreeSet<LineAddr>) -> Vec<u64> {
    s.iter().map(|l| l.0).collect()
}

/// (a) Mixed-access race: a plain access in one kernel provably
/// overlaps a line another kernel provably writes inside a critical
/// region — the HyTM fast/slow-path hazard, now visible through
/// computed addresses.
fn mixed_access_race(a: &VmAnalysis, out: &mut Vec<Diag>) {
    for (t, f) in a.threads.iter().enumerate() {
        for op in f.abs.ops.iter().filter(|o| o.crit.is_none()) {
            let Some(op_lines) = op.lines.lines() else {
                continue; // widened: nothing proven
            };
            for (u, g) in a.threads.iter().enumerate() {
                if u == t {
                    continue;
                }
                let Some(w) = g.abs.crit_writes.lines() else {
                    continue;
                };
                let hit: BTreeSet<LineAddr> = op_lines.intersection(w).copied().collect();
                if hit.is_empty() {
                    continue;
                }
                let verb = if op.is_write { "store" } else { "load" };
                let shown = hit.first().unwrap().0;
                out.push(Diag {
                    rule: "mixed-access-race",
                    severity: Severity::Error,
                    thread: Some(t),
                    segment: None,
                    op: Some(op.pc),
                    lines: line_nums(&hit),
                    message: format!(
                        "plain {verb} at pc {} of phys line {shown} races with a \
                         critical write on thread {u}",
                        op.pc
                    ),
                });
                break; // one diagnostic per op, like the spec lint
            }
        }
    }
}

/// (b) Capacity overflow: a critical region's proven footprint maps
/// more lines to one L1 set than the speculative ways — overflow is
/// guaranteed on every HTM attempt.
fn capacity_overflow(a: &VmAnalysis, out: &mut Vec<Diag>) {
    if !a.system.uses_htm() {
        return;
    }
    let ways = a.cfg.speculative_ways();
    let subscribes = !a.system.policy().htmlock;
    for (t, f) in a.threads.iter().enumerate() {
        for (s, region) in f.abs.regions.iter().enumerate() {
            let Some(mut phys) = region.lines() else {
                continue; // widened region: overflow unprovable
            };
            if subscribes {
                phys.insert(guestvm::spec::SpecProgram::LOCK_LINE);
            }
            let mut per_set: std::collections::BTreeMap<usize, usize> =
                std::collections::BTreeMap::new();
            for &line in &phys {
                *per_set.entry(a.cfg.l1_set_of(line)).or_default() += 1;
            }
            let Some((&set, &n)) = per_set.iter().find(|&(_, &n)| n > ways) else {
                continue;
            };
            out.push(Diag {
                rule: "capacity-overflow",
                severity: Severity::Warn,
                thread: Some(t),
                segment: Some(s),
                op: Some(region.begin),
                lines: line_nums(&phys),
                message: format!(
                    "critical region maps {n} lines to L1 set {set} \
                     (associativity {ways}): speculative overflow is guaranteed"
                ),
            });
        }
    }
}

/// (c) Rollback-unsafe store: a store pc reachable both inside and
/// outside a critical region. An abort restores the `CritBegin`
/// register snapshot and re-executes from there, so the plain-context
/// incarnation of the store can be resurrected with rolled-back
/// operands. `Kernel::validate` rejects this shape; the lint diagnoses
/// hand-built kernels that bypass it.
fn rollback_unsafe_store(a: &VmAnalysis, out: &mut Vec<Diag>) {
    for (t, f) in a.threads.iter().enumerate() {
        for pc in f.abs.rollback_unsafe() {
            let lines: Vec<u64> = f
                .abs
                .ops
                .iter()
                .filter(|o| o.pc == pc)
                .filter_map(|o| o.lines.lines())
                .flat_map(line_nums)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            out.push(Diag {
                rule: "rollback-unsafe-store",
                severity: Severity::Error,
                thread: Some(t),
                segment: None,
                op: Some(pc),
                lines,
                message: format!(
                    "store at pc {pc} is reachable both inside and outside a \
                     critical region: an abort rollback can resurrect it with \
                     stale registers"
                ),
            });
        }
    }
}

/// (d) Unreachable instruction: never visited by the abstract fixpoint
/// (which over-approximates reachability, so this is a proof).
fn unreachable_instruction(a: &VmAnalysis, out: &mut Vec<Diag>) {
    for (t, f) in a.threads.iter().enumerate() {
        for (pc, &r) in f.abs.reachable.iter().enumerate() {
            if !r {
                out.push(Diag {
                    rule: "unreachable-instruction",
                    severity: Severity::Warn,
                    thread: Some(t),
                    segment: None,
                    op: Some(pc),
                    lines: vec![],
                    message: format!("instruction at pc {pc} can never execute"),
                });
            }
        }
    }
}

/// (e) Unbounded loop: provably no feasible exit. Inside a critical
/// region this is an error — the transaction can never commit and the
/// fallback path spins under the lock forever.
fn unbounded_loop(a: &VmAnalysis, out: &mut Vec<Diag>) {
    for (t, f) in a.threads.iter().enumerate() {
        for l in &f.abs.loops {
            if l.bound != LoopBound::Unbounded {
                continue;
            }
            let (rule, severity, place): (&'static str, _, _) = if l.in_crit {
                (
                    "unbounded-loop-in-crit",
                    Severity::Error,
                    " inside a critical region",
                )
            } else {
                ("unbounded-loop", Severity::Warn, "")
            };
            out.push(Diag {
                rule,
                severity,
                thread: Some(t),
                segment: None,
                op: Some(l.from),
                lines: vec![],
                message: format!(
                    "loop at pc {} -> {} has no feasible exit{place}",
                    l.from, l.head
                ),
            });
        }
    }
}

/// (f) Dead store: a proven store target no kernel can ever read.
/// Requires *every* read footprint in the program to be precise —
/// one widened reader and nothing is provably dead.
fn dead_store(a: &VmAnalysis, out: &mut Vec<Diag>) {
    let mut read: BTreeSet<LineAddr> = BTreeSet::new();
    for f in &a.threads {
        for s in [&f.abs.crit_reads, &f.abs.plain_reads] {
            match s {
                AbsLines::Lines(ls) => read.extend(ls.iter().copied()),
                AbsLines::Top => return,
            }
        }
    }
    for (t, f) in a.threads.iter().enumerate() {
        for op in f.abs.ops.iter().filter(|o| o.is_write && !o.is_read) {
            let Some(lines) = op.lines.lines() else {
                continue;
            };
            if lines.iter().any(|l| read.contains(l)) {
                continue;
            }
            let Some(dead) = lines.first() else {
                continue;
            };
            out.push(Diag {
                rule: "dead-store",
                severity: Severity::Note,
                thread: Some(t),
                segment: op.crit.and_then(|b| region_ordinal(a, t, b)),
                op: Some(op.pc),
                lines: line_nums(lines),
                message: format!("store to phys line {} that no thread reads", dead.0),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestvm::spec::SpecProgram;
    use guestvm::{Instr, Kernel, KernelBuilder, ProgSpec};
    use lockiller::SystemKind;
    use sim_core::config::SystemConfig;

    fn lint_spec(spec: &str, system: SystemKind) -> Vec<Diag> {
        let spec = ProgSpec::parse(spec).unwrap();
        let kernels = SpecProgram::compile_all(&spec);
        let a = VmAnalysis::new(system, SystemConfig::testing(2), &kernels);
        lint_kernels(&a)
    }

    #[test]
    fn mixed_race_matches_spec_level_lint() {
        // The CI demo kernel: thread 1 plain-reads what thread 0
        // critically writes.
        let diags = lint_spec("2/c:L0,S1/p:L1", SystemKind::LockillerTm);
        let race: Vec<&Diag> = diags
            .iter()
            .filter(|d| d.rule == "mixed-access-race")
            .collect();
        assert_eq!(race.len(), 1);
        assert_eq!(race[0].thread, Some(1));
        assert_eq!(race[0].lines, vec![SpecProgram::data_line(1).0]);
        assert_eq!(race[0].severity, Severity::Error);
    }

    #[test]
    fn disjoint_program_is_clean() {
        let diags = lint_spec("2/c:L0,S0/c:L1,S1", SystemKind::LockillerTm);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "unexpected errors: {diags:?}"
        );
    }

    #[test]
    fn rollback_unsafe_and_unbounded_loops_report() {
        // Hand-built kernel bypassing validate(): a store reachable in
        // both contexts plus a spin loop inside the critical region.
        let k = Kernel {
            name: "evil".into(),
            nregs: 2,
            instrs: vec![
                Instr::Imm(0, 64),
                Instr::Load(1, 0, 0),
                Instr::Br(guestvm::Cond::Eq, 1, 0, 5),
                Instr::CritBegin,
                Instr::Jmp(6),
                Instr::Store(0, 0, 1),
                Instr::Store(0, 0, 1),
                Instr::Jmp(6), // spin: never reaches CritEnd
                Instr::CritEnd,
                Instr::Halt,
            ],
        };
        assert!(k.validate().is_err());
        let a = VmAnalysis::new(SystemKind::LockillerTm, SystemConfig::testing(2), &[k]);
        let diags = lint_kernels(&a);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"rollback-unsafe-store"), "{rules:?}");
        assert!(rules.contains(&"unbounded-loop-in-crit"), "{rules:?}");
        assert!(rules.contains(&"unreachable-instruction"), "{rules:?}");
        let rb = diags
            .iter()
            .find(|d| d.rule == "rollback-unsafe-store")
            .unwrap();
        assert_eq!(rb.op, Some(6));
    }

    #[test]
    fn dead_store_goes_silent_when_any_reader_widens() {
        // Thread 0 stores line 30 nobody reads -> dead-store...
        let mut b = KernelBuilder::new("w", 2);
        b.imm(0, 240).imm(1, 1).store(0, 0, 1).halt();
        let a = VmAnalysis::new(
            SystemKind::LockillerTm,
            SystemConfig::testing(2),
            &[b.build()],
        );
        assert!(lint_kernels(&a).iter().any(|d| d.rule == "dead-store"));
        // ...but a Top reader elsewhere withdraws the proof.
        let mut b = KernelBuilder::new("w", 2);
        b.imm(0, 240).imm(1, 1).store(0, 0, 1).halt();
        let mut top = KernelBuilder::new("r", 2);
        top.imm(0, 64).load(1, 0, 0).load(1, 1, 0).halt();
        let a = VmAnalysis::new(
            SystemKind::LockillerTm,
            SystemConfig::testing(2),
            &[b.build(), top.build()],
        );
        assert!(lint_kernels(&a).iter().all(|d| d.rule != "dead-store"));
    }

    #[test]
    fn json_schema_round_trips_through_existing_renderer() {
        let diags = lint_spec("2/c:L0,S1/p:L1", SystemKind::LockillerTm);
        let j = diags
            .iter()
            .find(|d| d.rule == "mixed-access-race")
            .unwrap()
            .to_json();
        assert!(j.starts_with("{\"rule\": \"mixed-access-race\""), "{j}");
        assert!(j.contains("\"severity\": \"error\""), "{j}");
    }
}
