//! Static conflict/independence analysis over `tmverify` guest kernels.
//!
//! A [`ProgSpec`](tmverify::progs::ProgSpec) is pure data: every line a
//! thread can touch, and whether the access happens inside a critical
//! section, is decidable before a single schedule runs. This crate
//! computes that information once and uses it two ways:
//!
//! - **Lints** ([`lint`]): machine-readable diagnostics for the hazard
//!   classes that are statically decidable over the DSL — the HyTM
//!   fast/slow-path *mixed-access race* (a plain access to a line some
//!   other thread writes transactionally), guaranteed *capacity
//!   overflow* (a critical segment whose static footprint cannot fit
//!   the speculative buffer), *hand-off cycles* in the cross-thread
//!   line-dependency graph, and dead-store/unused-line hygiene. The
//!   `tmlint` binary exposes them on the command line with a stable
//!   JSON schema and a CI baseline mode.
//! - **DPOR pruning** ([`Analysis::independence`]): a
//!   [`StaticIndependence`](lockiller::StaticIndependence) table
//!   refining the dynamic conflict relation used by `tmverify`'s
//!   sleep-set DPOR, so statically-independent step pairs never
//!   generate backtrack points. The table is only constructed when its
//!   soundness premises are proven for the whole program (no possible
//!   capacity overflow, no possible LLC eviction); see the analysis
//!   lattice in `DESIGN.md` §16.
//!
//! The analysis is deliberately an *over-approximation*: every conflict
//! the simulator can dynamically observe must be statically predicted
//! ([`Analysis::may_conflict`]); the soundness property tests assert
//! exactly that against recorded [`ConflictEdge`](sim_core::obs::ConflictEdge)s.

pub mod analysis;
pub mod lint;
pub mod vmabs;
pub mod vmlint;

pub use analysis::Analysis;
pub use lint::{lint, Diag, Severity};
pub use vmabs::{analyze, analyze_cached, KernelAbs, LoopBound, VmAnalysis};
pub use vmlint::lint_kernels;
