//! Lint rules over an [`Analysis`], with machine-readable diagnostics.
//!
//! The JSON schema emitted by [`Diag::to_json`] is **stable** — CI
//! baselines and downstream tooling depend on it (see the golden-file
//! tests). One object per diagnostic:
//!
//! ```json
//! {"rule": "mixed-access-race", "severity": "error", "thread": 1,
//!  "segment": 0, "op": 0, "lines": [1],
//!  "message": "plain load of line 1 races with a critical write on thread 0"}
//! ```
//!
//! `thread`/`segment`/`op` are indices into the spec (`null` for
//! program-level diagnostics); `lines` are *spec* line indices.

use crate::analysis::Analysis;
use std::collections::BTreeSet;
use tmverify::progs::Op;

/// Diagnostic severity, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene note; never affects the exit code.
    Note,
    /// A hazard worth knowing about (guaranteed overflow, hand-off
    /// cycle, no-op compute).
    Warn,
    /// A statically-certain race class (`tmlint` exits 1).
    Error,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Stable rule identifier (kebab-case).
    pub rule: &'static str,
    pub severity: Severity,
    /// Offending thread index, if attributable.
    pub thread: Option<usize>,
    /// Offending segment index within the thread.
    pub segment: Option<usize>,
    /// Offending op index within the segment.
    pub op: Option<usize>,
    /// Spec lines involved, sorted ascending.
    pub lines: Vec<u64>,
    pub message: String,
}

impl Diag {
    /// The stable JSON form (one object, no trailing newline).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<usize>| v.map_or("null".to_string(), |n| n.to_string());
        let lines: Vec<String> = self.lines.iter().map(u64::to_string).collect();
        format!(
            "{{\"rule\": \"{}\", \"severity\": \"{}\", \"thread\": {}, \
             \"segment\": {}, \"op\": {}, \"lines\": [{}], \"message\": \"{}\"}}",
            self.rule,
            self.severity.name(),
            opt(self.thread),
            opt(self.segment),
            opt(self.op),
            lines.join(", "),
            self.message.replace('\\', "\\\\").replace('"', "\\\""),
        )
    }

    /// Human-readable one-liner.
    pub fn render(&self) -> String {
        let mut at = String::new();
        if let Some(t) = self.thread {
            at.push_str(&format!(" thread {t}"));
            if let Some(s) = self.segment {
                at.push_str(&format!(" segment {s}"));
                if let Some(o) = self.op {
                    at.push_str(&format!(" op {o}"));
                }
            }
        }
        format!(
            "{}[{}]{}: {}",
            self.severity.name(),
            self.rule,
            at,
            self.message
        )
    }
}

/// Run every rule; diagnostics are ordered by rule, then position, so
/// the output is deterministic.
pub fn lint(a: &Analysis) -> Vec<Diag> {
    let mut out = Vec::new();
    mixed_access_race(a, &mut out);
    capacity_overflow(a, &mut out);
    handoff_cycle(a, &mut out);
    dead_store(a, &mut out);
    unused_line(a, &mut out);
    noop_compute(a, &mut out);
    out
}

/// (a) Mixed-access race: a plain segment touches a line some critical
/// segment on another thread writes — the HyTM fast/slow-path hazard.
fn mixed_access_race(a: &Analysis, out: &mut Vec<Diag>) {
    for (t, facts) in a.threads.iter().enumerate() {
        for (s, seg) in facts.segs.iter().enumerate() {
            if seg.critical {
                continue;
            }
            for (k, op) in a.spec.threads[t][s].ops.iter().enumerate() {
                let (l, verb) = match *op {
                    Op::Load(l) => (l, "load"),
                    Op::Store(l) => (l, "store"),
                    Op::Compute(_) => continue,
                };
                let writers: Vec<usize> = (0..a.threads.len())
                    .filter(|&u| u != t && a.threads[u].crit_writes.contains(&l))
                    .collect();
                if let Some(&u) = writers.first() {
                    out.push(Diag {
                        rule: "mixed-access-race",
                        severity: Severity::Error,
                        thread: Some(t),
                        segment: Some(s),
                        op: Some(k),
                        lines: vec![l],
                        message: format!(
                            "plain {verb} of line {l} races with a critical write on thread {u}"
                        ),
                    });
                }
            }
        }
    }
}

/// (b) Capacity-overflow prediction: a critical segment's static
/// footprint cannot fit the speculative buffer, guaranteeing overflow
/// (and, on switchingMode systems, signature spills).
fn capacity_overflow(a: &Analysis, out: &mut Vec<Diag>) {
    if !a.system.uses_htm() {
        return;
    }
    let ways = a.cfg.speculative_ways();
    let budget = a.cfg.signature_line_budget();
    for (t, facts) in a.threads.iter().enumerate() {
        for (s, seg) in facts.segs.iter().enumerate() {
            if !seg.critical {
                continue;
            }
            let lines: Vec<u64> = seg.lines().into_iter().collect();
            // Re-derive the per-set counts so the diagnostic can name
            // the offending set (Analysis only keeps the verdict).
            let subscribes = !a.system.policy().htmlock;
            let mut phys: Vec<sim_core::types::LineAddr> = lines
                .iter()
                .map(|&l| tmverify::progs::SpecProgram::data_line(l))
                .collect();
            if subscribes {
                phys.push(tmverify::progs::SpecProgram::LOCK_LINE);
            }
            let mut per_set: std::collections::BTreeMap<usize, usize> =
                std::collections::BTreeMap::new();
            for &line in &phys {
                *per_set.entry(a.cfg.l1_set_of(line)).or_default() += 1;
            }
            let Some((&set, &n)) = per_set.iter().find(|&(_, &n)| n > ways) else {
                continue;
            };
            let sig = if phys.len() > budget {
                format!(" and exceeds the {budget}-line signature budget")
            } else {
                String::new()
            };
            out.push(Diag {
                rule: "capacity-overflow",
                severity: Severity::Warn,
                thread: Some(t),
                segment: Some(s),
                op: None,
                lines,
                message: format!(
                    "critical segment maps {n} lines to L1 set {set} \
                     (associativity {ways}): speculative overflow is guaranteed{sig}"
                ),
            });
        }
    }
}

/// (c) Hand-off cycle: a cycle in the cross-thread line-dependency
/// graph over critical segments (thread `t` depends on `u` when `t`
/// touches a line `u` writes critically) — the deadlock/livelock shape
/// of the `2/c:L0,S1/c:L1,S0` kernel.
fn handoff_cycle(a: &Analysis, out: &mut Vec<Diag>) {
    let n = a.threads.len();
    let touches_crit = |t: usize, l: u64| {
        a.threads[t].crit_reads.contains(&l) || a.threads[t].crit_writes.contains(&l)
    };
    let edge =
        |t: usize, u: usize| t != u && a.threads[u].crit_writes.iter().any(|&l| touches_crit(t, l));
    // Strongly connected components via iterated DFS on the (tiny)
    // thread graph: a multi-node SCC is a hand-off cycle.
    let mut comp = vec![usize::MAX; n];
    let mut n_comps = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        // Nodes reachable from `start` that also reach back form its SCC.
        let reach = |from: usize| -> Vec<bool> {
            let mut seen = vec![false; n];
            let mut stack = vec![from];
            while let Some(v) = stack.pop() {
                for (w, s) in seen.iter_mut().enumerate() {
                    if !*s && edge(v, w) {
                        *s = true;
                        stack.push(w);
                    }
                }
            }
            seen
        };
        let fwd = reach(start);
        for v in start..n {
            if comp[v] == usize::MAX && (v == start || (fwd[v] && reach(v)[start])) {
                comp[v] = n_comps;
            }
        }
        n_comps += 1;
    }
    for c in 0..n_comps {
        let members: Vec<usize> = (0..n).filter(|&t| comp[t] == c).collect();
        if members.len() < 2 {
            continue;
        }
        let mut lines: BTreeSet<u64> = BTreeSet::new();
        for &t in &members {
            for &u in &members {
                for &l in &a.threads[u].crit_writes {
                    if t != u && touches_crit(t, l) {
                        lines.insert(l);
                    }
                }
            }
        }
        let names: Vec<String> = members.iter().map(usize::to_string).collect();
        out.push(Diag {
            rule: "handoff-cycle",
            severity: Severity::Warn,
            thread: Some(members[0]),
            segment: None,
            op: None,
            lines: lines.into_iter().collect(),
            message: format!(
                "critical segments of threads {} form a line hand-off cycle",
                names.join(", ")
            ),
        });
    }
}

/// (d) Dead store: a line stored by some thread but never loaded by
/// anyone — the value can never be observed.
fn dead_store(a: &Analysis, out: &mut Vec<Diag>) {
    let loaded: BTreeSet<u64> = a
        .threads
        .iter()
        .flat_map(|t| t.crit_reads.union(&t.plain_reads).copied())
        .collect();
    for (t, _) in a.threads.iter().enumerate() {
        for (s, seg) in a.spec.threads[t].iter().enumerate() {
            for (k, op) in seg.ops.iter().enumerate() {
                let Op::Store(l) = *op else { continue };
                if loaded.contains(&l) {
                    continue;
                }
                out.push(Diag {
                    rule: "dead-store",
                    severity: Severity::Note,
                    thread: Some(t),
                    segment: Some(s),
                    op: Some(k),
                    lines: vec![l],
                    message: format!("store to line {l} is never loaded by any thread"),
                });
            }
        }
    }
}

/// (d) Unused line: declared in the arena but never referenced.
fn unused_line(a: &Analysis, out: &mut Vec<Diag>) {
    let touched: BTreeSet<u64> = (0..a.threads.len()).flat_map(|t| a.touched(t)).collect();
    for l in 0..a.spec.lines {
        if !touched.contains(&l) {
            out.push(Diag {
                rule: "unused-line",
                severity: Severity::Note,
                thread: None,
                segment: None,
                op: None,
                lines: vec![l],
                message: format!("declared line {l} is never accessed"),
            });
        }
    }
}

/// `C0` compute segments do nothing; almost always a spec typo.
fn noop_compute(a: &Analysis, out: &mut Vec<Diag>) {
    for (t, _) in a.threads.iter().enumerate() {
        for (s, seg) in a.spec.threads[t].iter().enumerate() {
            for (k, op) in seg.ops.iter().enumerate() {
                if *op == Op::Compute(0) {
                    out.push(Diag {
                        rule: "noop-compute",
                        severity: Severity::Warn,
                        thread: Some(t),
                        segment: Some(s),
                        op: Some(k),
                        lines: Vec::new(),
                        message: "C0 computes zero instructions (no-op)".to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockiller::SystemKind;
    use tmverify::progs::ProgSpec;

    fn diags(system: SystemKind, spec: &str, tiny_l1: bool) -> Vec<Diag> {
        let spec = ProgSpec::parse(spec).expect("test specs are valid");
        let mut ex = tmverify::Explorer::new(system, spec.clone());
        ex.tiny_l1 = tiny_l1;
        lint(&Analysis::new(system, spec, ex.config()))
    }

    fn rules(d: &[Diag]) -> Vec<&'static str> {
        d.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn mixed_access_race_flagged_on_demo_spec() {
        let d = diags(SystemKind::LockillerRwi, "2/c:L0,S1/p:L1", false);
        assert!(rules(&d).contains(&"mixed-access-race"), "{d:?}");
        let race = d.iter().find(|d| d.rule == "mixed-access-race").unwrap();
        assert_eq!(race.severity, Severity::Error);
        assert_eq!(
            (race.thread, race.segment, race.op),
            (Some(1), Some(0), Some(0))
        );
        assert_eq!(race.lines, vec![1]);
    }

    #[test]
    fn capacity_overflow_flagged_under_tiny_l1_only() {
        let spec = "6/c:L0,L1,L2,S0/c:L3,L4,L5,S3";
        let tiny = diags(SystemKind::LockillerTm, spec, true);
        assert_eq!(
            tiny.iter()
                .filter(|d| d.rule == "capacity-overflow")
                .count(),
            2,
            "{tiny:?}"
        );
        let full = diags(SystemKind::LockillerTm, spec, false);
        assert!(!rules(&full).contains(&"capacity-overflow"), "{full:?}");
    }

    #[test]
    fn handoff_cycle_flagged_on_the_ring() {
        let d = diags(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0", false);
        let cyc = d.iter().find(|d| d.rule == "handoff-cycle").expect("cycle");
        assert_eq!(cyc.lines, vec![0, 1]);
        // Disjoint critical sections have no cycle.
        let d = diags(SystemKind::LockillerRwi, "2/c:L0,S0/c:L1,S1", false);
        assert!(!rules(&d).contains(&"handoff-cycle"), "{d:?}");
    }

    #[test]
    fn hazard_rules_are_quiet_on_race_free_kernels() {
        // The corpus ring kernels: no plain segments, no overflow under
        // the default geometry — only the (true-positive) hand-off
        // cycle may fire, never the other two hazard classes.
        for (system, spec) in [
            (SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0"),
            (SystemKind::LockillerRwi, "3/c:L0,S1/c:L1,S2/c:L2,S0"),
            (SystemKind::LockillerTm, "3/c:L0,S1/c:L1,S2/c:L2,S0"),
        ] {
            let d = diags(system, spec, false);
            assert!(!rules(&d).contains(&"mixed-access-race"), "{spec}: {d:?}");
            assert!(!rules(&d).contains(&"capacity-overflow"), "{spec}: {d:?}");
        }
        // And a genuinely hazard-free disjoint kernel is fully quiet.
        let d = diags(SystemKind::LockillerTm, "2/c:L0,S0,L0/c:L1,S1,L1", false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hygiene_rules() {
        let d = diags(SystemKind::LockillerRwi, "3/c:S0,C0/c:L0", false);
        assert!(rules(&d).contains(&"noop-compute"), "{d:?}");
        assert!(rules(&d).contains(&"unused-line"), "{d:?}");
        assert!(!rules(&d).contains(&"dead-store"), "store to L0 is read");
        let d = diags(SystemKind::LockillerRwi, "2/c:S0/c:L1", false);
        assert!(rules(&d).contains(&"dead-store"), "{d:?}");
    }

    #[test]
    fn diag_json_shape_is_stable() {
        let d = Diag {
            rule: "mixed-access-race",
            severity: Severity::Error,
            thread: Some(1),
            segment: Some(0),
            op: Some(2),
            lines: vec![1, 3],
            message: "a \"quoted\" message".to_string(),
        };
        assert_eq!(
            d.to_json(),
            "{\"rule\": \"mixed-access-race\", \"severity\": \"error\", \
             \"thread\": 1, \"segment\": 0, \"op\": 2, \"lines\": [1, 3], \
             \"message\": \"a \\\"quoted\\\" message\"}"
        );
        let parsed = sim_core::json::parse(&d.to_json()).expect("valid json");
        assert_eq!(
            parsed.get("rule").and_then(sim_core::json::Json::as_str),
            Some("mixed-access-race")
        );
    }
}
