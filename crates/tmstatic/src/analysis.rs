//! The analysis lattice: per-segment line-sets → per-thread footprints
//! → whole-program may-conflict relation → purity → independence table.
//!
//! Everything here is computed from three inputs — the [`SystemKind`]
//! (which concurrency-control policy runs the critical sections), the
//! [`ProgSpec`] (who touches which spec line, and how), and the
//! [`SystemConfig`] (cache geometry, from which capacity and bank
//! placement follow). All facts are conservative over-approximations of
//! what any schedule can exhibit; the soundness tests check the dynamic
//! [`ConflictEdge`](sim_core::obs::ConflictEdge)s of real runs against
//! [`Analysis::may_conflict`].
//!
//! # Physical layout
//!
//! The analysis reasons about *physical* cache lines using the fixed
//! `Runner` arena layout re-exported by
//! [`SpecProgram::LOCK_LINE`]/[`SpecProgram::data_line`]: the fallback
//! lock lives on `LineAddr(1)` and spec line `i` on `LineAddr(2 + i)`.

use lockiller::StaticIndependence;
use lockiller::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::types::LineAddr;
use std::collections::{BTreeMap, BTreeSet};
use tmverify::progs::{Op, ProgSpec, SpecProgram};

/// Read/write spec-line sets of one segment.
#[derive(Clone, Debug)]
pub struct SegFootprint {
    pub critical: bool,
    /// Spec lines loaded.
    pub reads: BTreeSet<u64>,
    /// Spec lines stored.
    pub writes: BTreeSet<u64>,
}

impl SegFootprint {
    /// Distinct spec lines touched (read or written).
    pub fn lines(&self) -> BTreeSet<u64> {
        self.reads.union(&self.writes).copied().collect()
    }
}

/// Everything the analysis derived about one thread.
#[derive(Clone, Debug)]
pub struct ThreadFacts {
    /// Per-segment footprints, in program order.
    pub segs: Vec<SegFootprint>,
    /// Union of critical-segment reads / writes (spec lines).
    pub crit_reads: BTreeSet<u64>,
    pub crit_writes: BTreeSet<u64>,
    /// Union of plain-segment reads / writes (spec lines).
    pub plain_reads: BTreeSet<u64>,
    pub plain_writes: BTreeSet<u64>,
    /// The thread has at least one critical segment (even an empty or
    /// compute-only one enters the concurrency-control machinery).
    pub has_critical: bool,
    /// Some critical segment's static footprint cannot fit the
    /// speculative buffer (more distinct lines in one L1 set than its
    /// associativity): every HTM attempt of that segment must overflow.
    pub overflow: bool,
    /// Some HTM attempt by this thread can abort (capacity overflow,
    /// data conflict on its transactional lines, or — on
    /// lock-subscribing systems — observing a taken fallback lock).
    pub tx_abort: bool,
    /// Some request by this thread can be rejected, so the thread can
    /// park / retry / self-abort under the recovery mechanism.
    pub parks: bool,
    /// The thread can reach the software fallback lock (or holds the
    /// CGL lock for its critical sections).
    pub fallback: bool,
    /// The thread can read / write the physical lock line.
    pub lock_read: bool,
    pub lock_write: bool,
    /// Statically *pure*: never aborts, never parks, never touches the
    /// lock-write path, HLA arbiter, or overflow signatures. Pure cores
    /// are the refinement targets of [`Analysis::independence`].
    pub pure: bool,
}

/// Whole-program static analysis over one `(system, spec, config)`.
pub struct Analysis {
    pub system: SystemKind,
    pub spec: ProgSpec,
    pub cfg: SystemConfig,
    pub threads: Vec<ThreadFacts>,
}

impl Analysis {
    pub fn new(system: SystemKind, spec: ProgSpec, cfg: SystemConfig) -> Analysis {
        let policy = system.policy();
        let htm = system.uses_htm();
        // Lock subscription: every HTM attempt transactionally loads the
        // lock line unless HTMLock removes the subscription.
        let subscribes = htm && !policy.htmlock;

        // Layer 1: per-segment and per-thread line sets.
        let mut threads: Vec<ThreadFacts> = spec
            .threads
            .iter()
            .map(|segs| {
                let segs: Vec<SegFootprint> = segs
                    .iter()
                    .map(|seg| {
                        let mut f = SegFootprint {
                            critical: seg.critical,
                            reads: BTreeSet::new(),
                            writes: BTreeSet::new(),
                        };
                        for op in &seg.ops {
                            match *op {
                                Op::Load(l) => {
                                    f.reads.insert(l);
                                }
                                Op::Store(l) => {
                                    f.writes.insert(l);
                                }
                                Op::Compute(_) => {}
                            }
                        }
                        f
                    })
                    .collect();
                let mut t = ThreadFacts {
                    crit_reads: BTreeSet::new(),
                    crit_writes: BTreeSet::new(),
                    plain_reads: BTreeSet::new(),
                    plain_writes: BTreeSet::new(),
                    has_critical: segs.iter().any(|s| s.critical),
                    segs,
                    overflow: false,
                    tx_abort: false,
                    parks: false,
                    fallback: false,
                    lock_read: false,
                    lock_write: false,
                    pure: false,
                };
                for s in &t.segs {
                    if s.critical {
                        t.crit_reads.extend(&s.reads);
                        t.crit_writes.extend(&s.writes);
                    } else {
                        t.plain_reads.extend(&s.reads);
                        t.plain_writes.extend(&s.writes);
                    }
                }
                t
            })
            .collect();

        // Layer 2: capacity. A critical segment overflows when more
        // distinct physical lines (its data lines, plus the subscribed
        // lock line) map to one L1 set than the set has ways.
        for t in &mut threads {
            t.overflow = htm
                && t.segs.iter().any(|s| {
                    if !s.critical {
                        return false;
                    }
                    let mut phys: BTreeSet<LineAddr> = s
                        .lines()
                        .iter()
                        .map(|&l| SpecProgram::data_line(l))
                        .collect();
                    if subscribes {
                        phys.insert(SpecProgram::LOCK_LINE);
                    }
                    let mut per_set: BTreeMap<usize, usize> = BTreeMap::new();
                    for line in phys {
                        *per_set.entry(cfg.l1_set_of(line)).or_default() += 1;
                    }
                    per_set.values().any(|&n| n > cfg.speculative_ways())
                });
        }

        // Layer 3: abort sources and parking, from pairwise conflicts.
        let n = threads.len();
        for t in 0..n {
            let crit_conflict = (0..n).any(|u| u != t && crit_conflict(&threads, t, u));
            let any_conflict = (0..n).any(|u| u != t && data_conflict(&threads, t, u));
            let me = &mut threads[t];
            me.tx_abort = me.has_critical && htm && (me.overflow || crit_conflict);
            me.parks = any_conflict;
        }

        // Layer 4: fallback-lock reachability. An aborting thread burns
        // its retry budget and falls back. On lock-subscribing systems
        // the taken lock then aborts *every* concurrent HTM attempt
        // (LockTaken), so one reachable fallback makes the whole
        // critical population fallback-reachable.
        for t in &mut threads {
            t.fallback = t.tx_abort;
        }
        if subscribes && threads.iter().any(|t| t.fallback) {
            for t in &mut threads {
                if t.has_critical {
                    t.fallback = true;
                    t.tx_abort = true;
                }
            }
        }

        // Layer 5: lock-line footprint and purity.
        for t in &mut threads {
            if policy.coarse_grained_lock {
                t.lock_read = t.has_critical;
                t.lock_write = t.has_critical;
            } else if subscribes {
                t.lock_read = t.has_critical;
                t.lock_write = t.fallback;
            } else {
                // HTMLock: no subscription; only fallback takers touch it.
                t.lock_read = t.fallback;
                t.lock_write = t.fallback;
            }
            let cgl_critical = policy.coarse_grained_lock && t.has_critical;
            t.pure = !cgl_critical && !t.tx_abort && !t.parks && !t.fallback && !t.lock_write;
        }

        Analysis {
            system,
            spec,
            cfg,
            threads,
        }
    }

    /// All spec lines thread `t` can touch, plain or critical.
    pub fn touched(&self, t: usize) -> BTreeSet<u64> {
        let f = &self.threads[t];
        let mut out = f.crit_reads.clone();
        out.extend(&f.crit_writes);
        out.extend(&f.plain_reads);
        out.extend(&f.plain_writes);
        out
    }

    fn writes(&self, t: usize, l: u64) -> bool {
        self.threads[t].crit_writes.contains(&l) || self.threads[t].plain_writes.contains(&l)
    }

    fn touches(&self, t: usize, l: u64) -> bool {
        self.writes(t, l)
            || self.threads[t].crit_reads.contains(&l)
            || self.threads[t].plain_reads.contains(&l)
    }

    /// The whole-program may-conflict relation over *physical* lines:
    /// true when cores `a` and `b` can dynamically produce a
    /// [`ConflictEdge`](sim_core::obs::ConflictEdge) on `line` in some
    /// schedule. Over-approximates: covers data conflicts (one side
    /// writes, the other touches), lock-line traffic (subscription
    /// loads vs. fallback/CGL lock writes), and Bloom-signature false
    /// positives of switchingMode (an overflowing thread's signature
    /// can falsely match *any* line another thread requests).
    pub fn may_conflict(&self, a: usize, b: usize, line: LineAddr) -> bool {
        let n = self.threads.len();
        if a >= n || b >= n {
            return false;
        }
        if a == b {
            return true;
        }
        if line == SpecProgram::LOCK_LINE {
            let (fa, fb) = (&self.threads[a], &self.threads[b]);
            return (fa.lock_read || fa.lock_write)
                && (fb.lock_read || fb.lock_write)
                && (fa.lock_write || fb.lock_write);
        }
        let Some(l) = line.0.checked_sub(2).filter(|&l| l < self.spec.lines) else {
            return false;
        };
        let data =
            (self.writes(a, l) && self.touches(b, l)) || (self.touches(a, l) && self.writes(b, l));
        let sig = |x: usize, y: usize| {
            self.system.policy().switching_mode && self.threads[x].overflow && self.touches(y, l)
        };
        data || sig(a, b) || sig(b, a)
    }

    /// Physical lines thread `t` can touch, including the lock line
    /// when its policy-dependent footprint is reachable.
    pub fn phys_lines(&self, t: usize) -> BTreeSet<LineAddr> {
        let mut out: BTreeSet<LineAddr> = self
            .touched(t)
            .iter()
            .map(|&l| SpecProgram::data_line(l))
            .collect();
        if self.threads[t].lock_read || self.threads[t].lock_write {
            out.insert(SpecProgram::LOCK_LINE);
        }
        out
    }

    /// Some LLC set can be asked to hold more program lines than its
    /// associativity, so a tag eviction — and with it an observable LRU
    /// ordering effect — is possible.
    pub fn llc_eviction_possible(&self) -> bool {
        // Count the lock line unconditionally: cheap, and immune to an
        // under-approximated lock footprint.
        let mut lines: BTreeSet<LineAddr> = [SpecProgram::LOCK_LINE].into();
        for t in 0..self.threads.len() {
            lines.extend(self.phys_lines(t));
        }
        let mut per_set: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for line in lines {
            let key = (self.cfg.bank_of(line), self.cfg.llc_set_of(line));
            *per_set.entry(key).or_default() += 1;
        }
        per_set.values().any(|&n| n > self.cfg.mem.llc_bank.ways)
    }

    /// Construct the DPOR pruning table, or `None` when the soundness
    /// premises cannot be proven for the whole program:
    ///
    /// - **No capacity overflow anywhere** — otherwise overflow
    ///   signatures are populated and consulted by every HTM request
    ///   (with Bloom false positives against arbitrary lines), and
    ///   switchingMode engages.
    /// - **No LLC eviction possible** — otherwise tag-LRU state couples
    ///   same-bank events beyond the per-line directory.
    ///
    /// Under those premises the returned table's `bank_foot` covers
    /// every line each core can touch (including the conditionally
    /// reachable lock) and `pure` marks cores that provably never
    /// abort, park, lock, or touch HLA/signature state.
    pub fn independence(&self) -> Option<StaticIndependence> {
        if self.threads.iter().any(|t| t.overflow) {
            return None;
        }
        if self.llc_eviction_possible() {
            return None;
        }
        let cores = self.cfg.num_cores;
        if cores > 64 {
            return None;
        }
        let mut bank_foot = vec![0u64; cores];
        let mut pure = 0u64;
        for (c, foot) in bank_foot.iter_mut().enumerate() {
            if let Some(f) = self.threads.get(c) {
                for line in self.phys_lines(c) {
                    *foot |= 1 << self.cfg.bank_of(line);
                }
                if f.pure {
                    pure |= 1 << c;
                }
            } else {
                // Cores beyond the spec's threads run no guest at all.
                pure |= 1 << c;
            }
        }
        Some(StaticIndependence { bank_foot, pure })
    }
}

/// A conflict touching `t`'s *transactional* lines (what can abort
/// `t`'s HTM attempts): `t` writes a line `u` touches, or `u` writes a
/// line `t` touches transactionally.
fn crit_conflict(threads: &[ThreadFacts], t: usize, u: usize) -> bool {
    let (ft, fu) = (&threads[t], &threads[u]);
    let u_writes: BTreeSet<u64> = fu.crit_writes.union(&fu.plain_writes).copied().collect();
    let u_touches: BTreeSet<u64> = u_writes
        .union(&fu.crit_reads.union(&fu.plain_reads).copied().collect())
        .copied()
        .collect();
    ft.crit_writes.iter().any(|l| u_touches.contains(l))
        || ft.crit_reads.iter().any(|l| u_writes.contains(l))
}

/// Any access of `t` conflicting with any access of `u` (what can get a
/// request of `t` rejected, hence parked, by the recovery mechanism).
fn data_conflict(threads: &[ThreadFacts], t: usize, u: usize) -> bool {
    let (ft, fu) = (&threads[t], &threads[u]);
    let writes = |f: &ThreadFacts| -> BTreeSet<u64> {
        f.crit_writes.union(&f.plain_writes).copied().collect()
    };
    let touches = |f: &ThreadFacts| -> BTreeSet<u64> {
        let mut out = writes(f);
        out.extend(&f.crit_reads);
        out.extend(&f.plain_reads);
        out
    };
    let (wt, tt) = (writes(ft), touches(ft));
    let (wu, tu) = (writes(fu), touches(fu));
    wt.iter().any(|l| tu.contains(l)) || tt.iter().any(|l| wu.contains(l))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(system: SystemKind, spec: &str) -> Analysis {
        let spec = ProgSpec::parse(spec).expect("test specs are valid");
        let cfg = tmverify::Explorer::new(system, spec.clone()).config();
        Analysis::new(system, spec, cfg)
    }

    #[test]
    fn disjoint_htmlock_threads_are_pure_with_disjoint_banks() {
        let a = analyze(SystemKind::LockillerTm, "3/c:L0,S0/c:L1,S1/c:L2,S2");
        assert!(a.threads.iter().all(|t| t.pure && !t.lock_read));
        let table = a.independence().expect("premises hold");
        assert_eq!(table.pure, 0b111);
        // Lines 0,1,2 -> LineAddr 2,3,4 -> banks 2,0,1 (3 banks).
        assert_eq!(table.bank_foot[0] & table.bank_foot[1], 0);
        assert_eq!(table.bank_foot[0] & table.bank_foot[2], 0);
        assert_eq!(table.bank_foot[1] & table.bank_foot[2], 0);
    }

    #[test]
    fn conflict_ring_has_no_pure_cores() {
        let a = analyze(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
        assert!(a.threads.iter().all(|t| t.tx_abort && t.parks && !t.pure));
        // Subscribing system with reachable aborts: everyone can take
        // the fallback lock.
        assert!(a.threads.iter().all(|t| t.lock_read && t.lock_write));
        let table = a.independence().expect("no overflow, no eviction");
        assert_eq!(table.pure, 0, "nothing to refine on the ring");
    }

    #[test]
    fn subscription_without_aborts_reads_lock_only() {
        // Disjoint threads on a subscribing (non-HTMLock) system: the
        // subscription load is reachable, the fallback write is not.
        let a = analyze(SystemKind::LockillerRwi, "2/c:L0,S0/c:L1,S1");
        assert!(a.threads.iter().all(|t| t.lock_read && !t.lock_write));
        assert!(a.threads.iter().all(|t| t.pure));
        let table = a.independence().expect("premises hold");
        // Both footprints contain the lock line's bank, so critical
        // threads can never be refined against each other.
        assert_ne!(table.bank_foot[0] & table.bank_foot[1], 0);
    }

    #[test]
    fn overflow_blocks_the_table_and_is_attributed() {
        let spec = ProgSpec::parse("6/c:L0,L1,L2,S0/c:L3,L4,L5,S3").unwrap();
        let mut ex = tmverify::Explorer::new(SystemKind::LockillerTm, spec.clone());
        ex.tiny_l1 = true;
        let a = Analysis::new(SystemKind::LockillerTm, spec.clone(), ex.config());
        assert!(a.threads.iter().all(|t| t.overflow));
        assert!(a.independence().is_none(), "overflow voids the premises");
        // The same kernel under the full-size L1 does not overflow.
        let ex = tmverify::Explorer::new(SystemKind::LockillerTm, spec.clone());
        let a = Analysis::new(SystemKind::LockillerTm, spec, ex.config());
        assert!(a.threads.iter().all(|t| !t.overflow));
    }

    #[test]
    fn may_conflict_covers_lock_data_and_signatures() {
        let a = analyze(SystemKind::LockillerRwi, "2/c:L0,S1/c:L1,S0");
        // Data: both write each other's read lines.
        assert!(a.may_conflict(0, 1, SpecProgram::data_line(0)));
        assert!(a.may_conflict(0, 1, SpecProgram::data_line(1)));
        // Lock: both can fall back.
        assert!(a.may_conflict(0, 1, SpecProgram::LOCK_LINE));
        // Out-of-arena lines are never predicted.
        assert!(!a.may_conflict(0, 1, LineAddr(0)));
        assert!(!a.may_conflict(0, 1, LineAddr(99)));

        // Disjoint kernels predict no data conflicts...
        let d = analyze(SystemKind::LockillerTm, "2/c:L0,S0/c:L1,S1");
        assert!(!d.may_conflict(0, 1, SpecProgram::data_line(0)));
        assert!(!d.may_conflict(0, 1, SpecProgram::LOCK_LINE));

        // ...unless signatures can false-positive: an overflowing
        // switchingMode thread may conflict on any line the peer touches.
        let spec = ProgSpec::parse("6/c:L0,L1,L2,S0/c:L3,L4,L5,S3").unwrap();
        let mut ex = tmverify::Explorer::new(SystemKind::LockillerTm, spec.clone());
        ex.tiny_l1 = true;
        let s = Analysis::new(SystemKind::LockillerTm, spec, ex.config());
        assert!(s.may_conflict(0, 1, SpecProgram::data_line(4)));
        assert!(s.may_conflict(1, 0, SpecProgram::data_line(0)));
    }

    #[test]
    fn cgl_critical_threads_are_impure_lock_writers() {
        let a = analyze(SystemKind::Cgl, "2/c:L0,S0/p:L1");
        assert!(a.threads[0].lock_write && !a.threads[0].pure);
        assert!(!a.threads[1].lock_read && a.threads[1].pure);
        assert!(a.threads[0].segs[0].critical);
        assert!(!a.threads[0].overflow, "CGL never runs HTM");
    }

    #[test]
    fn llc_eviction_check_counts_sets() {
        // The testing LLC is far larger than any small kernel arena.
        let a = analyze(SystemKind::LockillerRwi, "8/c:L0,S7/c:L3,S4");
        assert!(!a.llc_eviction_possible());
    }
}
