//! vmabs — abstract interpretation over `guestvm` bytecode kernels.
//!
//! PR 6's [`Analysis`](crate::Analysis) decides footprints by reading
//! the `ProgSpec` DSL, which cannot express indexed addressing or
//! data-dependent loops. This module recovers the same facts from the
//! compiled [`Kernel`] bytecode itself — the artifact `--backend vm`
//! actually executes — by running a classic worklist abstract
//! interpretation:
//!
//! - **Value domain** ([`AbsVal`]): per-register constants, bounded
//!   stride intervals (`{base + k·stride | k < count}`, no wrap),
//!   power-of-two congruence classes (`v ≡ base mod 2^k`, the sound
//!   residue of an unbounded stride under wrapping arithmetic), and
//!   Top. Joins keep arithmetic progressions exact where possible;
//!   widening (applied after [`WIDEN_AFTER`] joins at one node)
//!   escalates bounded → congruence → Top, so back-edges terminate.
//! - **Line domain** ([`AbsLines`]): per-thread sets of physical
//!   [`LineAddr`]s with an explicit Top, enumerated from address
//!   values under the [`MAX_LINES`]/[`MAX_COUNT`] caps.
//! - **Taint**: one bit per register marking values derived from a
//!   memory response (`Load`/`Cas` destinations), which is what makes
//!   a loop bound *data-dependent* rather than static.
//!
//! States are keyed by `(pc, context)` where the context is plain code
//! or a critical region identified by its `CritBegin` pc — the same
//! split [`Kernel::validate`]'s dataflow proves consistent, except the
//! interpreter tolerates inconsistent kernels so lint can report them
//! (see [`KernelAbs::rollback_unsafe`]).
//!
//! Everything footprint-shaped is a sound *over-approximation* of any
//! execution (`tests/vm_soundness.rs` checks dynamically traced line
//! accesses and conflict edges against it, on both backends); loop
//! *bound* classification is diagnostic only, except that
//! [`LoopBound::Unbounded`] is itself a proof (no abstract state can
//! take any exit, hence no concrete one can). Where precision is lost
//! the analysis degrades *soundly*: a Top footprint silently disables
//! the lints that would need it and makes [`VmAnalysis::independence`]
//! return `None` (no pruning) rather than an unsound table.

use guestvm::spec::SpecProgram;
use guestvm::{BinOp, Cond, Instr, Kernel};
use lockiller::{StaticIndependence, SystemKind};
use sim_core::config::SystemConfig;
use sim_core::types::{LineAddr, LINE_SHIFT, WORDS_PER_LINE};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cardinality cap on bounded stride intervals: joins that would exceed
/// it widen to a congruence class.
pub const MAX_COUNT: u64 = 4096;

/// Cap on the distinct lines one memory op may contribute precisely;
/// beyond it the op's line set widens to Top.
pub const MAX_LINES: usize = 64;

/// Joins observed at one `(pc, context)` node before widening replaces
/// joining (guarantees termination on back-edges).
const WIDEN_AFTER: u32 = 24;

// ---------------------------------------------------------------------
// Value domain
// ---------------------------------------------------------------------

/// Abstract `u64` value. All sets are exact or over-approximating —
/// never under-approximating — with respect to the VM's wrapping
/// arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// Exactly one value.
    Const(u64),
    /// `{base + k*stride | 0 <= k < count}` with `stride >= 1`,
    /// `count >= 2`, and `base + (count-1)*stride` not wrapping.
    Range { base: u64, stride: u64, count: u64 },
    /// `{v | v mod modulus == base}` with `modulus` a power of two
    /// `>= 2` and `base < modulus`. This is the sound residue of an
    /// unbounded stride: congruence mod a power of two survives the
    /// `2^64` wrap because the modulus divides `2^64`.
    Congr { base: u64, modulus: u64 },
    /// Any value.
    Top,
}

/// Largest power-of-two divisor of `x` as a modulus, or `None` when no
/// useful (>= 2) modulus exists.
fn pow2_mod(x: u64) -> Option<u64> {
    if x == 0 {
        return None; // gcd-with-zero callers handle 0 separately
    }
    let m = 1u64 << x.trailing_zeros().min(63);
    (m >= 2).then_some(m)
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Congruence-class over-approximation of `{base + k*stride | k >= 0}`
/// under wrapping arithmetic.
fn congr_of(base: u64, stride: u64) -> AbsVal {
    match pow2_mod(stride) {
        Some(m) => AbsVal::Congr {
            base: base & (m - 1),
            modulus: m,
        },
        None if stride == 0 => AbsVal::Const(base),
        None => AbsVal::Top,
    }
}

/// Canonicalizing arithmetic-progression constructor. Accepts any
/// wrapping `stride` (including "negative" steps); re-bases descending
/// progressions, collapses trivial ones to `Const`, and falls back to
/// the congruence over-approximation when the progression wraps or
/// exceeds [`MAX_COUNT`].
fn ap(base: u64, stride: u64, count: u64) -> AbsVal {
    if count == 0 || count == 1 || stride == 0 {
        return AbsVal::Const(base);
    }
    // Descending step: re-base at the smallest element.
    let (base, stride) = if stride > i64::MAX as u64 {
        (
            base.wrapping_add(stride.wrapping_mul(count - 1)),
            stride.wrapping_neg(),
        )
    } else {
        (base, stride)
    };
    if count > MAX_COUNT {
        return congr_of(base, stride);
    }
    let span = (count as u128 - 1) * stride as u128;
    if base as u128 + span > u64::MAX as u128 {
        return congr_of(base, stride);
    }
    AbsVal::Range {
        base,
        stride,
        count,
    }
}

impl AbsVal {
    /// `(representative, step)` characterization used by congruence
    /// joins: every element is `≡ representative (mod d)` for any `d`
    /// dividing `step` (step 0 = the single value itself).
    fn base_step(self) -> Option<(u64, u64)> {
        match self {
            AbsVal::Const(c) => Some((c, 0)),
            AbsVal::Range { base, stride, .. } => Some((base, stride)),
            AbsVal::Congr { base, modulus } => Some((base, modulus)),
            AbsVal::Top => None,
        }
    }

    /// Largest element of a bounded value.
    fn max(self) -> Option<u64> {
        match self {
            AbsVal::Const(c) => Some(c),
            AbsVal::Range {
                base,
                stride,
                count,
            } => Some(base + stride * (count - 1)),
            _ => None,
        }
    }

    /// Smallest element, when one exists.
    fn min(self) -> Option<u64> {
        match self {
            AbsVal::Const(c) => Some(c),
            AbsVal::Range { base, .. } | AbsVal::Congr { base, .. } => Some(base),
            AbsVal::Top => None,
        }
    }

    /// Membership test (over-approximating on `Top`).
    pub fn contains(self, v: u64) -> bool {
        match self {
            AbsVal::Const(c) => v == c,
            AbsVal::Range {
                base,
                stride,
                count,
            } => v >= base && (v - base).is_multiple_of(stride) && (v - base) / stride < count,
            AbsVal::Congr { base, modulus } => v & (modulus - 1) == base,
            AbsVal::Top => true,
        }
    }

    /// Least upper bound. Keeps arithmetic progressions exact where the
    /// result stays bounded, otherwise escalates to congruence / Top.
    pub fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            return self;
        }
        let (Some((b1, s1)), Some((b2, s2))) = (self.base_step(), other.base_step()) else {
            return AbsVal::Top;
        };
        // Bounded ∪ bounded can stay a bounded progression.
        if let (Some(m1), Some(m2)) = (self.max(), other.max()) {
            let lo = self.min().unwrap().min(other.min().unwrap());
            let hi = m1.max(m2);
            let g = gcd(gcd(s1, s2), b1.abs_diff(b2));
            if g == 0 {
                // Both are the same constant (caught above) — unreachable,
                // but stay total.
                return self;
            }
            return ap(lo, g, (hi - lo) / g + 1);
        }
        // Anything involving a congruence class joins as congruences.
        let g = gcd(gcd(s1, s2), b1.abs_diff(b2));
        congr_of(b1, g)
    }

    /// Widening: like [`AbsVal::join`] but guaranteed to climb the
    /// finite chain bounded → congruence (shrinking modulus) → Top, so
    /// fixpoints terminate regardless of how values evolve.
    fn widen(self, other: AbsVal) -> AbsVal {
        let j = self.join(other);
        if j == self {
            return self;
        }
        match j {
            AbsVal::Const(_) | AbsVal::Congr { .. } | AbsVal::Top => j,
            AbsVal::Range { base, stride, .. } => congr_of(base, stride),
        }
    }
}

/// Transfer function for the pure ALU (`Bin`/`BinI`). Total and sound:
/// any case not modeled exactly returns a superset.
fn eval_bin(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::{Const, Top};
    if let (Const(x), Const(y)) = (a, b) {
        return Const(op.eval(x, y));
    }
    match op {
        BinOp::Add => abs_add(a, b),
        BinOp::Sub => abs_add(a, abs_neg(b)),
        BinOp::Mul => abs_mul(a, b),
        BinOp::Shl => match b {
            // Shl by a constant is Mul by a power of two (count masked
            // to 6 bits, exactly like `BinOp::eval`).
            Const(c) => abs_mul(a, Const(1u64 << (c & 63))),
            _ => Top,
        },
        _ => Top,
    }
}

/// Exact negation: wrapping negation is a bijection mapping
/// progressions to progressions and congruence classes to congruence
/// classes.
fn abs_neg(v: AbsVal) -> AbsVal {
    match v {
        AbsVal::Const(c) => AbsVal::Const(c.wrapping_neg()),
        AbsVal::Range {
            base,
            stride,
            count,
        } => ap(base.wrapping_neg(), stride.wrapping_neg(), count),
        AbsVal::Congr { base, modulus } => AbsVal::Congr {
            base: base.wrapping_neg() & (modulus - 1),
            modulus,
        },
        AbsVal::Top => AbsVal::Top,
    }
}

fn abs_add(a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::{Congr, Const, Range, Top};
    match (a, b) {
        (Top, _) | (_, Top) => Top,
        (Const(x), Const(y)) => Const(x.wrapping_add(y)),
        // Adding a constant is a bijection mod 2^64: exact.
        (Const(c), v) | (v, Const(c)) => match v {
            Range {
                base,
                stride,
                count,
            } => ap(base.wrapping_add(c), stride, count),
            Congr { base, modulus } => Congr {
                base: base.wrapping_add(c) & (modulus - 1),
                modulus,
            },
            _ => unreachable!("Const and Top handled above"),
        },
        // Bounded + bounded stays a bounded progression on the gcd
        // stride when the sum of maxima does not wrap.
        (
            Range {
                base: b1,
                stride: s1,
                count: n1,
            },
            Range {
                base: b2,
                stride: s2,
                count: n2,
            },
        ) => {
            let g = gcd(s1, s2);
            let (lo, hi) = (
                b1 as u128 + b2 as u128,
                (b1 + s1 * (n1 - 1)) as u128 + (b2 + s2 * (n2 - 1)) as u128,
            );
            if hi > u64::MAX as u128 {
                congr_of(b1.wrapping_add(b2), g)
            } else {
                ap(lo as u64, g, ((hi - lo) as u64) / g + 1)
            }
        }
        // Congruence arithmetic: sum of residues mod the gcd modulus.
        (x, y) => {
            let ((b1, s1), (b2, s2)) = (x.base_step().unwrap(), y.base_step().unwrap());
            congr_of(b1.wrapping_add(b2), gcd(s1, s2))
        }
    }
}

fn abs_mul(a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::{Congr, Const, Range, Top};
    match (a, b) {
        (Const(0), _) | (_, Const(0)) => Const(0),
        (Const(x), Const(y)) => Const(x.wrapping_mul(y)),
        // Multiplying by a constant distributes exactly mod 2^64.
        (Const(c), v) | (v, Const(c)) => match v {
            Range {
                base,
                stride,
                count,
            } => ap(base.wrapping_mul(c), stride.wrapping_mul(c), count),
            Congr { base, modulus } => {
                let tz = modulus.trailing_zeros() + c.trailing_zeros();
                if tz >= 64 {
                    // modulus * c ≡ 0 mod 2^64: every element collapses.
                    Const(base.wrapping_mul(c))
                } else {
                    congr_of(base.wrapping_mul(c), 1u64 << tz)
                }
            }
            _ => Top,
        },
        _ => Top,
    }
}

/// Restrict `v` to `{x ∈ v | x < n}`. `None` = provably empty (the
/// branch edge is infeasible).
fn clip_lt(v: AbsVal, n: u64) -> Option<AbsVal> {
    if n == 0 {
        return None;
    }
    match v {
        AbsVal::Const(c) => (c < n).then_some(v),
        AbsVal::Range {
            base,
            stride,
            count,
        } => {
            if base >= n {
                return None;
            }
            Some(ap(base, stride, count.min((n - 1 - base) / stride + 1)))
        }
        AbsVal::Congr { base, modulus } => {
            if base >= n {
                return None;
            }
            Some(ap(base, modulus, (n - 1 - base) / modulus + 1))
        }
        AbsVal::Top => Some(ap(0, 1, n)),
    }
}

/// Restrict `v` to `{x ∈ v | x >= n}`. `None` = provably empty.
fn clip_ge(v: AbsVal, n: u64) -> Option<AbsVal> {
    match v {
        AbsVal::Const(c) => (c >= n).then_some(v),
        AbsVal::Range {
            base,
            stride,
            count,
        } => {
            if base >= n {
                return Some(v);
            }
            let skip = (n - base).div_ceil(stride);
            if skip >= count {
                return None;
            }
            Some(ap(base + skip * stride, stride, count - skip))
        }
        // Unbounded above: keeping the whole class is sound.
        AbsVal::Congr { .. } | AbsVal::Top => Some(v),
    }
}

/// Branch refinement: the abstract values of `(ra, rb)` on the edge
/// where `ra <cond> rb` is `holds`. `None` = that edge is infeasible.
/// `same_reg` marks `Br(c, r, r, _)`, where both sides are one value.
fn refine(
    cond: Cond,
    holds: bool,
    same_reg: bool,
    a: AbsVal,
    b: AbsVal,
) -> Option<(AbsVal, AbsVal)> {
    use AbsVal::Const;
    // Normalize to the positive condition on this edge.
    let cond = if holds {
        cond
    } else {
        match cond {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
        }
    };
    if same_reg {
        // r == r always; r != r / r < r never.
        return match cond {
            Cond::Eq | Cond::Ge => Some((a, b)),
            Cond::Ne | Cond::Lt => None,
        };
    }
    match cond {
        Cond::Eq => match (a, b) {
            (Const(x), Const(y)) => (x == y).then_some((a, b)),
            (Const(c), v) => v.contains(c).then_some((a, Const(c))),
            (v, Const(c)) => v.contains(c).then_some((Const(c), b)),
            _ => Some((a, b)),
        },
        Cond::Ne => match (a, b) {
            (Const(x), Const(y)) => (x != y).then_some((a, b)),
            // Dropping a matching endpoint keeps decrement-style loop
            // exits precise (`br ne i, zero` patterns).
            (Const(c), v) => Some((a, drop_endpoint(v, c))),
            (v, Const(c)) => Some((drop_endpoint(v, c), b)),
            _ => Some((a, b)),
        },
        Cond::Lt => match (a, b) {
            (v, Const(n)) => Some((clip_lt(v, n)?, b)),
            (Const(c), v) => {
                let n = c.checked_add(1)?;
                Some((a, clip_ge(v, n)?))
            }
            _ => Some((a, b)),
        },
        Cond::Ge => match (a, b) {
            (v, Const(n)) => Some((clip_ge(v, n)?, b)),
            (Const(c), v) => Some((a, clip_lt(v, c.checked_add(1)?)?)),
            _ => Some((a, b)),
        },
    }
}

/// Remove `c` from `v` when it is an endpoint of a bounded progression
/// (exact enough for loop-exit refinement; otherwise returns `v`).
fn drop_endpoint(v: AbsVal, c: u64) -> AbsVal {
    if let AbsVal::Range {
        base,
        stride,
        count,
    } = v
    {
        if c == base {
            return ap(base + stride, stride, count - 1);
        }
        if c == base + stride * (count - 1) {
            return ap(base, stride, count - 1);
        }
    }
    v
}

// ---------------------------------------------------------------------
// Line domain
// ---------------------------------------------------------------------

/// A set of physical cache lines with an explicit Top ("any line").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsLines {
    Lines(BTreeSet<LineAddr>),
    Top,
}

impl AbsLines {
    pub fn empty() -> AbsLines {
        AbsLines::Lines(BTreeSet::new())
    }

    pub fn is_top(&self) -> bool {
        matches!(self, AbsLines::Top)
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, AbsLines::Lines(s) if s.is_empty())
    }

    /// Precise contents, when the set did not widen.
    pub fn lines(&self) -> Option<&BTreeSet<LineAddr>> {
        match self {
            AbsLines::Lines(s) => Some(s),
            AbsLines::Top => None,
        }
    }

    pub fn contains(&self, l: LineAddr) -> bool {
        match self {
            AbsLines::Lines(s) => s.contains(&l),
            AbsLines::Top => true,
        }
    }

    pub fn insert(&mut self, l: LineAddr) {
        if let AbsLines::Lines(s) = self {
            s.insert(l);
        }
    }

    pub fn union_with(&mut self, other: &AbsLines) {
        match (&mut *self, other) {
            (AbsLines::Lines(a), AbsLines::Lines(b)) => a.extend(b.iter().copied()),
            _ => *self = AbsLines::Top,
        }
    }

    /// Can the two sets share a line? Top intersects anything
    /// non-empty.
    pub fn intersects(&self, other: &AbsLines) -> bool {
        match (self, other) {
            (AbsLines::Lines(a), AbsLines::Lines(b)) => a.iter().any(|l| b.contains(l)),
            (AbsLines::Top, AbsLines::Top) => true,
            (AbsLines::Top, AbsLines::Lines(s)) | (AbsLines::Lines(s), AbsLines::Top) => {
                !s.is_empty()
            }
        }
    }
}

/// Lines a memory access at abstract word address `addr` can touch.
fn lines_of(addr: AbsVal) -> AbsLines {
    let line = |w: u64| LineAddr(w >> LINE_SHIFT);
    match addr {
        AbsVal::Const(a) => AbsLines::Lines([line(a)].into()),
        AbsVal::Range {
            base,
            stride,
            count,
        } => {
            let last = base + stride * (count - 1);
            if stride <= WORDS_PER_LINE {
                // Steps of at most a line can never skip one: the
                // touched lines are exactly the contiguous range.
                let (lo, hi) = (base >> LINE_SHIFT, last >> LINE_SHIFT);
                if (hi - lo) as usize + 1 > MAX_LINES {
                    return AbsLines::Top;
                }
                AbsLines::Lines((lo..=hi).map(LineAddr).collect())
            } else {
                let mut s = BTreeSet::new();
                for k in 0..count {
                    s.insert(line(base + k * stride));
                    if s.len() > MAX_LINES {
                        return AbsLines::Top;
                    }
                }
                AbsLines::Lines(s)
            }
        }
        AbsVal::Congr { .. } | AbsVal::Top => AbsLines::Top,
    }
}

// ---------------------------------------------------------------------
// Abstract interpretation over one kernel
// ---------------------------------------------------------------------

/// Execution context of a program point: plain code, or inside the
/// critical region opened by the `CritBegin` at the given pc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ctx {
    Plain,
    Crit(usize),
}

#[derive(Clone, PartialEq, Eq)]
struct AbsState {
    regs: Vec<AbsVal>,
    /// Bit `r` set = register `r` derives from a memory response.
    taint: u64,
}

impl AbsState {
    fn merge(&mut self, other: &AbsState, widening: bool) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.regs.iter_mut().zip(&other.regs) {
            let next = if widening {
                mine.widen(*theirs)
            } else {
                mine.join(*theirs)
            };
            if next != *mine {
                *mine = next;
                changed = true;
            }
        }
        if self.taint | other.taint != self.taint {
            self.taint |= other.taint;
            changed = true;
        }
        changed
    }
}

/// Loop-bound classification for one CFG back-edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopBound {
    /// The abstract fixpoint bounds the loop without widening and every
    /// feasible exit condition is untainted and non-Top. The payload
    /// estimates the iteration-state count (largest induction-register
    /// range at the loop head) — diagnostic, not a proof of the exact
    /// trip count.
    Bounded(u64),
    /// Some feasible exit condition reads a register derived from a
    /// memory response: iteration count depends on shared data.
    DataDependent,
    /// *Proof* of divergence: no abstract state at any exit edge is
    /// feasible, so no concrete execution leaves the loop.
    Unbounded,
    /// Widening destroyed the bound and no stronger class applies.
    Unknown,
}

/// One CFG back-edge and its classification.
#[derive(Clone, Debug)]
pub struct LoopAbs {
    /// pc of the branch/jump instruction forming the back-edge.
    pub from: usize,
    /// Loop head (the back-edge target).
    pub head: usize,
    /// The back-edge executes inside a critical region.
    pub in_crit: bool,
    pub bound: LoopBound,
}

/// Footprint of one critical region (all ops reachable in its context).
#[derive(Clone, Debug)]
pub struct RegionAbs {
    /// pc of the `CritBegin` opening the region.
    pub begin: usize,
    pub reads: AbsLines,
    pub writes: AbsLines,
}

impl RegionAbs {
    /// Distinct lines touched (read or written), `None` when widened.
    pub fn lines(&self) -> Option<BTreeSet<LineAddr>> {
        let (r, w) = (self.reads.lines()?, self.writes.lines()?);
        Some(r.union(w).copied().collect())
    }
}

/// One memory op (`Load`/`Store`/`Cas`) at one program point and
/// context.
#[derive(Clone, Debug)]
pub struct OpAbs {
    pub pc: usize,
    /// `Some(begin_pc)` when the op executes inside a critical region.
    pub crit: Option<usize>,
    pub is_read: bool,
    pub is_write: bool,
    pub lines: AbsLines,
}

/// Geometry-independent analysis result for one `(kernel, tid,
/// threads)` triple — everything [`VmAnalysis`] later projects onto a
/// concrete [`SystemConfig`] is derived from these line sets.
#[derive(Clone, Debug)]
pub struct KernelAbs {
    /// Union footprints split by context.
    pub crit_reads: AbsLines,
    pub crit_writes: AbsLines,
    pub plain_reads: AbsLines,
    pub plain_writes: AbsLines,
    /// Per-critical-region footprints (sorted by `begin`).
    pub regions: Vec<RegionAbs>,
    /// Every reachable memory op × context.
    pub ops: Vec<OpAbs>,
    /// Back-edge classification.
    pub loops: Vec<LoopAbs>,
    /// Per-pc reachability in the abstract fixpoint.
    pub reachable: Vec<bool>,
    /// pcs reachable both inside and outside a critical section
    /// (kernels passing [`Kernel::validate`] have none).
    pub mixed: Vec<usize>,
    pub has_critical: bool,
    pub has_barrier: bool,
    pub has_pagetouch: bool,
    pub has_cas: bool,
}

impl KernelAbs {
    /// Store pcs reachable both inside and outside a critical section —
    /// the rollback hazard: an abort of the critical entry restores the
    /// `CritBegin` register snapshot and re-executes the store, so a
    /// plain-context execution of the same pc can be resurrected with
    /// stale operands. Kernels accepted by [`Kernel::validate`] are
    /// rollback-safe by construction; this re-proves it independently
    /// and diagnoses hand-built kernels that are not.
    pub fn rollback_unsafe(&self) -> Vec<usize> {
        self.mixed
            .iter()
            .copied()
            .filter(|&pc| {
                self.ops
                    .iter()
                    .any(|o| o.pc == pc && o.is_write && o.crit.is_some())
                    && self
                        .ops
                        .iter()
                        .any(|o| o.pc == pc && o.is_write && o.crit.is_none())
            })
            .collect()
    }

    /// All lines the kernel can touch, any context.
    pub fn touched(&self) -> AbsLines {
        let mut out = AbsLines::empty();
        for s in [
            &self.crit_reads,
            &self.crit_writes,
            &self.plain_reads,
            &self.plain_writes,
        ] {
            out.union_with(s);
        }
        out
    }

    /// All lines the kernel can write, any context.
    pub fn written(&self) -> AbsLines {
        let mut out = AbsLines::empty();
        out.union_with(&self.crit_writes);
        out.union_with(&self.plain_writes);
        out
    }
}

/// Run the abstract interpreter over `k` as simulated thread `tid` of
/// `threads`. Total: malformed kernels (unvalidated literals) produce a
/// result too, with the inconsistencies surfaced in
/// [`KernelAbs::mixed`] / [`KernelAbs::reachable`].
pub fn analyze(k: &Kernel, tid: usize, threads: usize) -> KernelAbs {
    let n = k.instrs.len();
    let init = AbsState {
        // The VM zero-initializes every register frame.
        regs: vec![AbsVal::Const(0); k.nregs],
        taint: 0,
    };
    let mut states: BTreeMap<(usize, Ctx), AbsState> = BTreeMap::new();
    let mut visits: BTreeMap<(usize, Ctx), u32> = BTreeMap::new();
    let mut widened: BTreeSet<usize> = BTreeSet::new();
    let mut work: Vec<(usize, Ctx)> = Vec::new();
    if n > 0 {
        states.insert((0, Ctx::Plain), init);
        work.push((0, Ctx::Plain));
    }
    while let Some((pc, ctx)) = work.pop() {
        let st = states[&(pc, ctx)].clone();
        for ((spc, sctx), sstate) in successors(k, pc, ctx, &st, tid, threads) {
            if spc >= n {
                continue; // falls off the end; validate() reports it
            }
            let key = (spc, sctx);
            match states.get_mut(&key) {
                None => {
                    states.insert(key, sstate);
                    work.push(key);
                }
                Some(old) => {
                    let v = visits.entry(key).or_insert(0);
                    *v += 1;
                    let widening = *v > WIDEN_AFTER;
                    if old.merge(&sstate, widening) {
                        if widening {
                            widened.insert(spc);
                        }
                        work.push(key);
                    }
                }
            }
        }
    }

    // Project the fixpoint onto footprints, flags, and reachability.
    let mut abs = KernelAbs {
        crit_reads: AbsLines::empty(),
        crit_writes: AbsLines::empty(),
        plain_reads: AbsLines::empty(),
        plain_writes: AbsLines::empty(),
        regions: Vec::new(),
        ops: Vec::new(),
        loops: Vec::new(),
        reachable: vec![false; n],
        mixed: Vec::new(),
        has_critical: false,
        has_barrier: false,
        has_pagetouch: false,
        has_cas: false,
    };
    let mut regions: BTreeMap<usize, RegionAbs> = BTreeMap::new();
    for (&(pc, ctx), st) in &states {
        abs.reachable[pc] = true;
        if let Ctx::Crit(begin) = ctx {
            regions.entry(begin).or_insert_with(|| RegionAbs {
                begin,
                reads: AbsLines::empty(),
                writes: AbsLines::empty(),
            });
        }
        match k.instrs[pc] {
            Instr::CritBegin => abs.has_critical = true,
            Instr::Barrier => abs.has_barrier = true,
            Instr::PageTouch(_) => abs.has_pagetouch = true,
            Instr::Cas(..) => abs.has_cas = true,
            _ => {}
        }
        let access = |ra: usize, off: u64| lines_of(abs_add(st.regs[ra], AbsVal::Const(off)));
        let (reads, writes) = match k.instrs[pc] {
            Instr::Load(_, ra, off) => (Some(access(ra as usize, off)), None),
            Instr::Store(ra, off, _) => (None, Some(access(ra as usize, off))),
            Instr::Cas(_, ra, ..) => {
                let l = access(ra as usize, 0);
                (Some(l.clone()), Some(l))
            }
            _ => (None, None),
        };
        let crit = match ctx {
            Ctx::Plain => None,
            Ctx::Crit(b) => Some(b),
        };
        if let Some(r) = &reads {
            match crit {
                Some(b) => {
                    abs.crit_reads.union_with(r);
                    regions.get_mut(&b).unwrap().reads.union_with(r);
                }
                None => abs.plain_reads.union_with(r),
            }
        }
        if let Some(w) = &writes {
            match crit {
                Some(b) => {
                    abs.crit_writes.union_with(w);
                    regions.get_mut(&b).unwrap().writes.union_with(w);
                }
                None => abs.plain_writes.union_with(w),
            }
        }
        if reads.is_some() || writes.is_some() {
            let mut lines = AbsLines::empty();
            if let Some(r) = &reads {
                lines.union_with(r);
            }
            if let Some(w) = &writes {
                lines.union_with(w);
            }
            abs.ops.push(OpAbs {
                pc,
                crit,
                is_read: reads.is_some(),
                is_write: writes.is_some(),
                lines,
            });
        }
    }
    abs.regions = regions.into_values().collect();
    // Context-mixed pcs: reachable both plain and inside some region.
    for pc in 0..n {
        let plain = states.contains_key(&(pc, Ctx::Plain));
        let crit = states
            .range((pc, Ctx::Crit(0))..=(pc, Ctx::Crit(usize::MAX)))
            .next()
            .is_some();
        if plain && crit {
            abs.mixed.push(pc);
        }
    }
    abs.loops = classify_loops(k, &states, &widened);
    abs
}

/// Successor states of one `(pc, ctx)` node (the pure-instruction
/// transfer function plus control flow).
fn successors(
    k: &Kernel,
    pc: usize,
    ctx: Ctx,
    st: &AbsState,
    tid: usize,
    threads: usize,
) -> Vec<((usize, Ctx), AbsState)> {
    let mut out = Vec::new();
    let mut next = st.clone();
    let set = |s: &mut AbsState, rd: u8, v: AbsVal, taint: bool| {
        s.regs[rd as usize] = v;
        if taint {
            s.taint |= 1 << rd;
        } else {
            s.taint &= !(1 << rd);
        }
    };
    match k.instrs[pc] {
        Instr::Imm(rd, v) => set(&mut next, rd, AbsVal::Const(v), false),
        Instr::Mov(rd, ra) => {
            let (v, t) = (st.regs[ra as usize], st.taint >> ra & 1 != 0);
            set(&mut next, rd, v, t);
        }
        Instr::Bin(op, rd, ra, rb) => {
            let v = eval_bin(op, st.regs[ra as usize], st.regs[rb as usize]);
            let t = (st.taint >> ra | st.taint >> rb) & 1 != 0;
            set(&mut next, rd, v, t);
        }
        Instr::BinI(op, rd, ra, imm) => {
            let v = eval_bin(op, st.regs[ra as usize], AbsVal::Const(imm));
            set(&mut next, rd, v, st.taint >> ra & 1 != 0);
        }
        Instr::Tid(rd) => set(&mut next, rd, AbsVal::Const(tid as u64), false),
        Instr::Threads(rd) => set(&mut next, rd, AbsVal::Const(threads as u64), false),
        // Memory responses are unknown values derived from shared data.
        Instr::Load(rd, ..) | Instr::Cas(rd, ..) => set(&mut next, rd, AbsVal::Top, true),
        Instr::Jmp(t) => {
            out.push(((t, ctx), next));
            return out;
        }
        Instr::Br(cond, ra, rb, t) => {
            let (a, b) = (st.regs[ra as usize], st.regs[rb as usize]);
            for (holds, target) in [(true, t), (false, pc + 1)] {
                if let Some((ra2, rb2)) = refine(cond, holds, ra == rb, a, b) {
                    let mut s = st.clone();
                    s.regs[ra as usize] = ra2;
                    s.regs[rb as usize] = rb2;
                    out.push(((target, ctx), s));
                }
            }
            return out;
        }
        Instr::CritBegin => {
            out.push(((pc + 1, Ctx::Crit(pc)), next));
            return out;
        }
        Instr::CritEnd => {
            out.push(((pc + 1, Ctx::Plain), next));
            return out;
        }
        Instr::Halt => return out,
        Instr::Store(..)
        | Instr::Compute(_)
        | Instr::ComputeR(_)
        | Instr::PageTouch(_)
        | Instr::Barrier => {}
    }
    out.push(((pc + 1, ctx), next));
    out
}

/// Static CFG successors of `pc` (context-free; `Halt` has none).
fn cfg_succ(k: &Kernel, pc: usize) -> Vec<usize> {
    let n = k.instrs.len();
    let step = |t: usize| (t < n).then_some(t);
    match k.instrs[pc] {
        Instr::Halt => vec![],
        Instr::Jmp(t) => step(t).into_iter().collect(),
        Instr::Br(_, _, _, t) => step(t).into_iter().chain(step(pc + 1)).collect(),
        _ => step(pc + 1).into_iter().collect(),
    }
}

/// Find CFG back-edges (iterative DFS) and classify each natural loop.
fn classify_loops(
    k: &Kernel,
    states: &BTreeMap<(usize, Ctx), AbsState>,
    widened: &BTreeSet<usize>,
) -> Vec<LoopAbs> {
    let n = k.instrs.len();
    if n == 0 {
        return Vec::new();
    }
    // Iterative DFS from entry; gray = on the current stack.
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut back_edges: Vec<(usize, usize)> = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = 1;
    while let Some(&mut (pc, ref mut i)) = stack.last_mut() {
        let succ = cfg_succ(k, pc);
        if *i < succ.len() {
            let t = succ[*i];
            *i += 1;
            match color[t] {
                0 => {
                    color[t] = 1;
                    stack.push((t, 0));
                }
                1 => back_edges.push((pc, t)),
                _ => {}
            }
        } else {
            color[pc] = 2;
            stack.pop();
        }
    }
    back_edges.sort_unstable();
    back_edges.dedup();

    // Predecessor map for natural-loop bodies.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for pc in 0..n {
        for t in cfg_succ(k, pc) {
            preds[t].push(pc);
        }
    }

    let reachable_states = |pc: usize| {
        states
            .range((pc, Ctx::Plain)..=(pc, Ctx::Crit(usize::MAX)))
            .map(|(_, st)| st)
    };
    let reachable = |pc: usize| reachable_states(pc).next().is_some();

    back_edges
        .iter()
        .map(|&(from, head)| {
            // Natural loop body: head plus everything reaching `from`
            // without passing through `head`.
            let mut body: BTreeSet<usize> = [head, from].into();
            let mut grow = vec![from];
            while let Some(x) = grow.pop() {
                if x == head {
                    continue;
                }
                for &p in &preds[x] {
                    if body.insert(p) {
                        grow.push(p);
                    }
                }
            }
            let in_crit = states
                .range((from, Ctx::Crit(0))..=(from, Ctx::Crit(usize::MAX)))
                .next()
                .is_some();
            if !reachable(from) {
                // The back-edge itself never executes.
                return LoopAbs {
                    from,
                    head,
                    in_crit,
                    bound: LoopBound::Bounded(0),
                };
            }

            // Feasible exits: an edge (or Halt) leaving the body that
            // some reachable abstract state can actually take.
            let mut any_exit = false;
            let mut tainted_exit = false;
            let mut vague_exit = false;
            for &x in &body {
                if !reachable(x) {
                    continue;
                }
                match k.instrs[x] {
                    Instr::Halt => any_exit = true,
                    Instr::Br(cond, ra, rb, t) => {
                        for (holds, target) in [(true, t), (false, x + 1)] {
                            if target >= k.instrs.len() || body.contains(&target) {
                                continue;
                            }
                            let feasible = reachable_states(x).any(|st| {
                                refine(
                                    cond,
                                    holds,
                                    ra == rb,
                                    st.regs[ra as usize],
                                    st.regs[rb as usize],
                                )
                                .is_some()
                            });
                            if feasible {
                                any_exit = true;
                                for st in reachable_states(x) {
                                    if (st.taint >> ra | st.taint >> rb) & 1 != 0 {
                                        tainted_exit = true;
                                    }
                                    if st.regs[ra as usize] == AbsVal::Top
                                        || st.regs[rb as usize] == AbsVal::Top
                                    {
                                        vague_exit = true;
                                    }
                                }
                            }
                        }
                    }
                    _ => {
                        if cfg_succ(k, x).iter().any(|t| !body.contains(t)) {
                            any_exit = true;
                        }
                    }
                }
            }
            let bound = if !any_exit {
                LoopBound::Unbounded
            } else if tainted_exit {
                LoopBound::DataDependent
            } else if body.iter().any(|pc| widened.contains(pc)) || vague_exit {
                LoopBound::Unknown
            } else {
                // Converged without widening: the head's register ranges
                // bound the distinct iteration states.
                let est = reachable_states(head)
                    .flat_map(|st| st.regs.iter())
                    .map(|v| match *v {
                        AbsVal::Range { count, .. } => count,
                        _ => 1,
                    })
                    .max()
                    .unwrap_or(1);
                LoopBound::Bounded(est)
            };
            LoopAbs {
                from,
                head,
                in_crit,
                bound,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Content-hash keyed cache
// ---------------------------------------------------------------------

type CacheKey = (u64, usize, usize);

fn cache() -> &'static Mutex<HashMap<CacheKey, Arc<KernelAbs>>> {
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<KernelAbs>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// [`analyze`] memoized on `(Kernel::content_hash, tid, threads)`.
///
/// Kernels are immutable after construction and the hash covers the
/// full instruction stream (name excluded), so one analysis serves
/// every snapshot/backtrack/re-exploration of the same bytecode — a
/// DPOR exploration re-creating VM instances per schedule analyzes each
/// distinct kernel exactly once per process.
pub fn analyze_cached(k: &Kernel, tid: usize, threads: usize) -> Arc<KernelAbs> {
    let key = (k.content_hash(), tid, threads);
    if let Some(hit) = cache().lock().unwrap().get(&key) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let abs = Arc::new(analyze(k, tid, threads));
    cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert_with(|| Arc::clone(&abs))
        .clone()
}

/// Process-lifetime `(hits, misses)` counters of [`analyze_cached`].
pub fn cache_counters() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------
// Whole-program projection onto a system + cache geometry
// ---------------------------------------------------------------------

/// [`KernelAbs`] projected onto one thread of a concrete system — the
/// bytecode-level mirror of [`ThreadFacts`](crate::analysis::ThreadFacts),
/// with explicit "unknown" where a widened footprint voids a proof.
#[derive(Clone, Debug)]
pub struct VmThreadFacts {
    pub abs: Arc<KernelAbs>,
    pub has_critical: bool,
    /// Some critical region *provably* overflows the speculative ways.
    pub overflow: bool,
    /// Some critical region's footprint widened to Top, so overflow can
    /// be neither proven nor refuted.
    pub overflow_unknown: bool,
    pub tx_abort: bool,
    pub parks: bool,
    pub fallback: bool,
    pub lock_read: bool,
    pub lock_write: bool,
    pub pure: bool,
}

/// Whole-program static analysis over compiled kernels (one per
/// thread), assuming the standard `Runner` arena layout (fallback lock
/// on [`SpecProgram::LOCK_LINE`]). The bytecode-level mirror of
/// [`Analysis`](crate::Analysis): same five layers, same policy model,
/// but footprints come from [`analyze_cached`] instead of the spec DSL
/// — so indexed addressing and data-dependent loops degrade to Top
/// instead of being inexpressible.
pub struct VmAnalysis {
    pub system: SystemKind,
    pub cfg: SystemConfig,
    pub threads: Vec<VmThreadFacts>,
}

impl VmAnalysis {
    pub fn new(system: SystemKind, cfg: SystemConfig, kernels: &[Kernel]) -> VmAnalysis {
        let policy = system.policy();
        let htm = system.uses_htm();
        let subscribes = htm && !policy.htmlock;
        let nthreads = kernels.len();

        // Layer 1: per-thread abstract footprints (cached per kernel).
        let mut threads: Vec<VmThreadFacts> = kernels
            .iter()
            .enumerate()
            .map(|(tid, k)| {
                let abs = analyze_cached(k, tid, nthreads);
                VmThreadFacts {
                    has_critical: abs.has_critical,
                    abs,
                    overflow: false,
                    overflow_unknown: false,
                    tx_abort: false,
                    parks: false,
                    fallback: false,
                    lock_read: false,
                    lock_write: false,
                    pure: false,
                }
            })
            .collect();

        // Layer 2: capacity, per critical region. Mirrors the spec
        // analysis: distinct physical lines (plus the subscribed lock
        // line) mapping to one L1 set beyond its ways must overflow.
        // A widened region makes the question unanswerable.
        for t in &mut threads {
            if !htm {
                continue;
            }
            for region in &t.abs.regions {
                match region.lines() {
                    None => t.overflow_unknown = true,
                    Some(mut phys) => {
                        if subscribes {
                            phys.insert(SpecProgram::LOCK_LINE);
                        }
                        let mut per_set: BTreeMap<usize, usize> = BTreeMap::new();
                        for line in phys {
                            *per_set.entry(cfg.l1_set_of(line)).or_default() += 1;
                        }
                        if per_set.values().any(|&c| c > cfg.speculative_ways()) {
                            t.overflow = true;
                        }
                    }
                }
            }
        }

        // Layer 3: abort sources and parking from pairwise conflicts.
        // Unknown overflow counts as a possible abort source.
        for t in 0..nthreads {
            let crit_conflict = (0..nthreads).any(|u| u != t && crit_conflict(&threads, t, u));
            let any_conflict = (0..nthreads).any(|u| u != t && data_conflict(&threads, t, u));
            let me = &mut threads[t];
            me.tx_abort =
                me.has_critical && htm && (me.overflow || me.overflow_unknown || crit_conflict);
            // A barrier parks the thread until every peer arrives; a
            // page touch rendezvous with global paging state.
            me.parks = any_conflict || me.abs.has_barrier || me.abs.has_pagetouch;
        }

        // Layer 4: fallback contagion on subscribing systems.
        for t in &mut threads {
            t.fallback = t.tx_abort;
        }
        if subscribes && threads.iter().any(|t| t.fallback) {
            for t in &mut threads {
                if t.has_critical {
                    t.fallback = true;
                    t.tx_abort = true;
                }
            }
        }

        // Layer 5: lock-line footprint and purity.
        for t in &mut threads {
            if policy.coarse_grained_lock {
                t.lock_read = t.has_critical;
                t.lock_write = t.has_critical;
            } else if subscribes {
                t.lock_read = t.has_critical;
                t.lock_write = t.fallback;
            } else {
                t.lock_read = t.fallback;
                t.lock_write = t.fallback;
            }
            let cgl_critical = policy.coarse_grained_lock && t.has_critical;
            t.pure = !cgl_critical && !t.tx_abort && !t.parks && !t.fallback && !t.lock_write;
        }

        VmAnalysis {
            system,
            cfg,
            threads,
        }
    }

    fn writes(&self, t: usize, l: LineAddr) -> bool {
        self.threads[t].abs.written().contains(l)
    }

    fn touches(&self, t: usize, l: LineAddr) -> bool {
        self.threads[t].abs.touched().contains(l)
    }

    /// Bytecode-level mirror of [`Analysis::may_conflict`]: true when
    /// cores `a` and `b` can dynamically produce a conflict edge on
    /// `line`. Widened footprints touch every line, so the relation
    /// over-approximates exactly where precision was lost.
    pub fn may_conflict(&self, a: usize, b: usize, line: LineAddr) -> bool {
        let n = self.threads.len();
        if a >= n || b >= n {
            return false;
        }
        if a == b {
            return true;
        }
        if line == SpecProgram::LOCK_LINE {
            let (fa, fb) = (&self.threads[a], &self.threads[b]);
            return (fa.lock_read || fa.lock_write)
                && (fb.lock_read || fb.lock_write)
                && (fa.lock_write || fb.lock_write);
        }
        let data = (self.writes(a, line) && self.touches(b, line))
            || (self.touches(a, line) && self.writes(b, line));
        let sig = |x: usize, y: usize| {
            self.system.policy().switching_mode
                && (self.threads[x].overflow || self.threads[x].overflow_unknown)
                && self.touches(y, line)
        };
        data || sig(a, b) || sig(b, a)
    }

    /// Physical lines thread `t` can touch, including the lock line
    /// when its policy-dependent footprint is reachable.
    pub fn phys_lines(&self, t: usize) -> AbsLines {
        let f = &self.threads[t];
        let mut out = f.abs.touched();
        if f.lock_read || f.lock_write {
            out.insert(SpecProgram::LOCK_LINE);
        }
        out
    }

    /// Whether some LLC set can exceed its associativity. `None` when a
    /// widened footprint makes the count unknowable.
    pub fn llc_eviction_possible(&self) -> Option<bool> {
        let mut lines: BTreeSet<LineAddr> = [SpecProgram::LOCK_LINE].into();
        for t in 0..self.threads.len() {
            lines.extend(self.phys_lines(t).lines()?.iter().copied());
        }
        let mut per_set: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for line in lines {
            let key = (self.cfg.bank_of(line), self.cfg.llc_set_of(line));
            *per_set.entry(key).or_default() += 1;
        }
        Some(per_set.values().any(|&c| c > self.cfg.mem.llc_bank.ways))
    }

    /// Construct the DPOR pruning table for `tmverify --backend vm`, or
    /// `None` when the soundness premises cannot be *proven* over the
    /// bytecode — the Top-degradation contract: any widened footprint,
    /// possible overflow, possible LLC eviction, page-touch traffic, or
    /// more than 64 cores degrades to no-pruning rather than risking an
    /// unsound table. Mirrors [`Analysis::independence`] otherwise.
    pub fn independence(&self) -> Option<StaticIndependence> {
        if self
            .threads
            .iter()
            .any(|t| t.overflow || t.overflow_unknown || t.abs.has_pagetouch)
        {
            return None;
        }
        if self.llc_eviction_possible() != Some(false) {
            return None;
        }
        let cores = self.cfg.num_cores;
        if cores > 64 {
            return None;
        }
        let mut bank_foot = vec![0u64; cores];
        let mut pure = 0u64;
        for (c, foot) in bank_foot.iter_mut().enumerate() {
            if let Some(f) = self.threads.get(c) {
                for &line in self.phys_lines(c).lines()? {
                    *foot |= 1 << self.cfg.bank_of(line);
                }
                if f.pure {
                    pure |= 1 << c;
                }
            } else {
                // Cores beyond the kernels run no guest at all.
                pure |= 1 << c;
            }
        }
        Some(StaticIndependence { bank_foot, pure })
    }
}

/// Conflicts touching `t`'s transactional lines (what can abort its HTM
/// attempts). Mirror of the spec-level helper over [`AbsLines`].
fn crit_conflict(threads: &[VmThreadFacts], t: usize, u: usize) -> bool {
    let (ft, fu) = (&threads[t].abs, &threads[u].abs);
    let u_writes = fu.written();
    let u_touches = fu.touched();
    ft.crit_writes.intersects(&u_touches) || ft.crit_reads.intersects(&u_writes)
}

/// Any access of `t` conflicting with any access of `u`.
fn data_conflict(threads: &[VmThreadFacts], t: usize, u: usize) -> bool {
    let (ft, fu) = (&threads[t].abs, &threads[u].abs);
    ft.written().intersects(&fu.touched()) || ft.touched().intersects(&fu.written())
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestvm::{KernelBuilder, ProgSpec};

    fn testing_cfg() -> SystemConfig {
        SystemConfig::testing(2)
    }

    #[test]
    fn value_domain_algebra() {
        use AbsVal::*;
        // Join of constants is an exact two-element progression.
        assert_eq!(
            Const(8).join(Const(24)),
            Range {
                base: 8,
                stride: 16,
                count: 2
            }
        );
        // Extending by a member is a no-op; by a new point refines gcd.
        let r = Const(0).join(Const(8)).join(Const(16));
        assert_eq!(
            r,
            Range {
                base: 0,
                stride: 8,
                count: 3
            }
        );
        assert_eq!(r.join(Const(12)).join(Const(4)), ap(0, 4, 5));
        // Wrapping join degrades to a congruence class, never a lie.
        let w = Const(0).join(Const(u64::MAX - 7));
        assert!(w.contains(u64::MAX - 7) && w.contains(0));
        // Negative-stride progressions re-base.
        assert_eq!(ap(16, 8u64.wrapping_neg(), 3), ap(0, 8, 3));
        // Membership after mul/add transfer stays sound.
        let v = eval_bin(BinOp::Mul, ap(0, 1, 4), Const(8));
        for k in 0..4u64 {
            assert!(v.contains(k * 8), "{v:?} must contain {}", k * 8);
        }
        let v = eval_bin(BinOp::Add, v, Const(5));
        assert!(v.contains(5) && v.contains(29));
    }

    #[test]
    fn widening_terminates_and_congruence_survives_wrap() {
        // Repeated widening must reach a fixpoint quickly.
        let mut v = AbsVal::Const(10);
        for i in 0..200u64 {
            v = v.widen(AbsVal::Const(10 + i * 8));
        }
        assert!(matches!(
            v,
            AbsVal::Congr {
                modulus: 8,
                base: 2
            } | AbsVal::Top
        ));
        // The congruence class is wrap-sound: stride-8 steps stay in
        // the class across 2^64.
        if let AbsVal::Congr { base, modulus } = v {
            let far = base.wrapping_sub(modulus * 3);
            assert!(v.contains(far));
        }
    }

    #[test]
    fn refine_clips_and_detects_infeasible_edges() {
        // i in {v ≡ 0 mod 8}; i < 32 refines to {0,8,16,24}.
        let i = AbsVal::Congr {
            base: 0,
            modulus: 8,
        };
        assert_eq!(clip_lt(i, 32), Some(ap(0, 8, 4)));
        assert_eq!(clip_lt(AbsVal::Const(5), 3), None);
        assert_eq!(clip_ge(ap(0, 4, 4), 13), None);
        assert_eq!(clip_ge(ap(0, 4, 4), 5), Some(ap(8, 4, 2)));
        // Same-register branches: eq always holds, ne never.
        assert!(refine(Cond::Ne, true, true, AbsVal::Top, AbsVal::Top).is_none());
        assert!(refine(Cond::Eq, true, true, AbsVal::Top, AbsVal::Top).is_some());
    }

    #[test]
    fn straight_line_footprints_are_exact() {
        let mut b = KernelBuilder::new("s", 2);
        b.imm(0, 80).load(1, 0, 0); // plain read of word 80 -> line 10
        b.crit_begin();
        b.imm(0, 160).imm(1, 7).store(0, 0, 1); // crit write line 20
        b.load(1, 0, 8); // crit read line 21
        b.crit_end();
        b.halt();
        let abs = analyze(&b.build(), 0, 1);
        assert_eq!(abs.plain_reads.lines().unwrap().len(), 1);
        assert!(abs.plain_reads.contains(LineAddr(10)));
        assert!(abs.crit_writes.contains(LineAddr(20)));
        assert!(abs.crit_reads.contains(LineAddr(21)));
        assert!(abs.plain_writes.is_empty());
        assert_eq!(abs.regions.len(), 1);
        assert!(abs.mixed.is_empty() && abs.rollback_unsafe().is_empty());
        assert!(abs.loops.is_empty());
    }

    #[test]
    fn counted_loop_is_bounded_and_footprint_covers_every_iteration() {
        // for i in 0..10 { store [64 + i*8] } — a strided sweep.
        let mut b = KernelBuilder::new("loop", 4);
        let (head, done) = (b.label(), b.label());
        b.imm(0, 0).imm(1, 10).imm(3, 42);
        b.bind(head);
        b.br(Cond::Ge, 0, 1, done);
        b.bini(BinOp::Mul, 2, 0, 8);
        b.bini(BinOp::Add, 2, 2, 64);
        b.store(2, 0, 3);
        b.bini(BinOp::Add, 0, 0, 1);
        b.jmp(head);
        b.bind(done);
        b.halt();
        let abs = analyze(&b.build(), 0, 1);
        assert_eq!(abs.loops.len(), 1);
        assert!(
            matches!(abs.loops[0].bound, LoopBound::Bounded(_)),
            "got {:?}",
            abs.loops[0].bound
        );
        // Words 64..144 -> lines 8..=17, all 10 present and precise.
        let w = abs.plain_writes.lines().expect("precise");
        assert_eq!(w.len(), 10);
        assert!(w.contains(&LineAddr(8)) && w.contains(&LineAddr(17)));
    }

    #[test]
    fn data_dependent_and_unbounded_loops_classify() {
        // Loop whose exit compares a loaded value: data-dependent.
        let mut b = KernelBuilder::new("dd", 3);
        let (head, done) = (b.label(), b.label());
        b.imm(0, 64).imm(2, 0);
        b.bind(head);
        b.load(1, 0, 0);
        b.br(Cond::Eq, 1, 2, done);
        b.jmp(head);
        b.bind(done);
        b.halt();
        let abs = analyze(&b.build(), 0, 1);
        assert_eq!(abs.loops.len(), 1);
        assert_eq!(abs.loops[0].bound, LoopBound::DataDependent);

        // Loop with no feasible exit: provably unbounded.
        let spin = Kernel {
            name: "spin".into(),
            nregs: 1,
            instrs: vec![Instr::Compute(1), Instr::Jmp(0)],
        };
        let abs = analyze(&spin, 0, 1);
        assert_eq!(abs.loops.len(), 1);
        assert_eq!(abs.loops[0].bound, LoopBound::Unbounded);

        // Congruence-based divergence proof: i steps by 8 from 0, the
        // only exit tests i == 5 — never in the residue class mod 8,
        // even across the 2^64 wrap, so the loop provably spins.
        let mut diverge = KernelBuilder::new("congr-spin", 2);
        let (head, done) = (diverge.label(), diverge.label());
        diverge.imm(0, 0).imm(1, 5);
        diverge.bind(head);
        diverge.bini(BinOp::Add, 0, 0, 8);
        diverge.br(Cond::Eq, 0, 1, done);
        diverge.jmp(head);
        diverge.bind(done);
        diverge.halt();
        let abs = analyze(&diverge.build(), 0, 1);
        assert_eq!(abs.loops.len(), 1);
        assert_eq!(abs.loops[0].bound, LoopBound::Unbounded);

        // Same loop but exiting on i == 16 (a member of the class):
        // terminates concretely, so it must NOT classify Unbounded.
        let mut exits = KernelBuilder::new("congr-exit", 2);
        let (head, done) = (exits.label(), exits.label());
        exits.imm(0, 0).imm(1, 16);
        exits.bind(head);
        exits.bini(BinOp::Add, 0, 0, 8);
        exits.br(Cond::Eq, 0, 1, done);
        exits.jmp(head);
        exits.bind(done);
        exits.halt();
        let abs = analyze(&exits.build(), 0, 1);
        assert_ne!(abs.loops[0].bound, LoopBound::Unbounded);
    }

    #[test]
    fn mixed_context_store_is_rollback_unsafe() {
        // pc 4's store is reachable plain (branch over the CritBegin)
        // and inside the critical region (fallthrough): the rollback
        // hazard Kernel::validate rejects, diagnosed not panicked.
        let k = Kernel {
            name: "mixed".into(),
            nregs: 2,
            instrs: vec![
                Instr::Imm(0, 64),
                Instr::Br(Cond::Eq, 1, 1, 4), // always taken -> plain path
                Instr::CritBegin,
                Instr::Imm(1, 1),
                Instr::Store(0, 0, 1),
                Instr::CritEnd,
                Instr::Halt,
            ],
        };
        assert!(k.validate().is_err());
        let abs = analyze(&k, 0, 1);
        // The always-taken branch makes pc2..3 unreachable; force the
        // mix through an actually two-way branch instead.
        let k = Kernel {
            name: "mixed2".into(),
            nregs: 2,
            instrs: vec![
                Instr::Tid(1),
                Instr::Imm(0, 64),
                Instr::Br(Cond::Eq, 1, 0, 4), // tid == 64: refines both ways? tid Const -> decidable
                Instr::CritBegin,
                Instr::Store(0, 0, 1),
                Instr::CritEnd,
                Instr::Halt,
            ],
        };
        assert!(k.validate().is_err());
        let abs2 = analyze(&k, 0, 1);
        // tid(0) != 64 is decided statically: branch never taken, so
        // pc4 is crit-only here — no false rollback report either way.
        assert!(abs.rollback_unsafe().is_empty());
        assert!(abs2.rollback_unsafe().is_empty());

        // A genuinely mixed store: branch on a loaded value.
        let k = Kernel {
            name: "mixed3".into(),
            nregs: 2,
            instrs: vec![
                Instr::Imm(0, 64),
                Instr::Load(1, 0, 0),
                Instr::Br(Cond::Eq, 1, 0, 5), // unknown: both ways
                Instr::CritBegin,
                Instr::Jmp(6),
                Instr::Store(0, 0, 1), // plain via branch...
                Instr::Store(0, 0, 1), // ...crit via fallthrough jmp
                Instr::CritEnd,
                Instr::Halt,
            ],
        };
        assert!(k.validate().is_err());
        let abs3 = analyze(&k, 0, 1);
        assert_eq!(abs3.mixed, vec![6, 7]);
        assert_eq!(abs3.rollback_unsafe(), vec![6]);
    }

    #[test]
    fn unreachable_code_is_reported() {
        let mut b = KernelBuilder::new("dead", 1);
        let done = b.label();
        b.jmp(done);
        b.compute(9); // unreachable
        b.bind(done);
        b.halt();
        let abs = analyze(&b.build(), 0, 1);
        assert_eq!(abs.reachable, vec![true, false, true]);
    }

    #[test]
    fn compiled_spec_matches_manual_expectation() {
        let spec = ProgSpec::parse("2/c:L0,S0/p:L1").unwrap();
        let kernels = SpecProgram::compile_all(&spec);
        let a = VmAnalysis::new(SystemKind::LockillerTm, testing_cfg(), &kernels);
        // Thread 0: crit read+write of data line 0 = LineAddr(2).
        assert!(a.threads[0]
            .abs
            .crit_reads
            .contains(SpecProgram::data_line(0)));
        assert!(a.threads[0]
            .abs
            .crit_writes
            .contains(SpecProgram::data_line(0)));
        assert!(a.threads[0].abs.plain_reads.is_empty());
        // Thread 1: plain read of data line 1 = LineAddr(3).
        assert!(a.threads[1]
            .abs
            .plain_reads
            .contains(SpecProgram::data_line(1)));
        assert!(!a.threads[1].has_critical);
        // Disjoint: no conflicts, table refines.
        assert!(!a.may_conflict(0, 1, SpecProgram::data_line(0)));
        let table = a.independence().expect("premises hold");
        assert!(table.pure & 0b11 == 0b11);
    }

    #[test]
    fn top_footprint_degrades_to_no_pruning() {
        // A load at a data-dependent address: footprint widens to Top,
        // independence() must refuse to build a table.
        let mut b = KernelBuilder::new("dd-addr", 2);
        b.imm(0, 64).load(1, 0, 0); // r1 = mem[64] (tainted, Top)
        b.load(1, 1, 0); // read [r1] — anywhere
        b.halt();
        let kernels = vec![b.build()];
        let a = VmAnalysis::new(SystemKind::LockillerTm, testing_cfg(), &kernels);
        assert!(a.threads[0].abs.plain_reads.is_top());
        assert!(a.independence().is_none(), "Top must disable pruning");
        // ...but may_conflict stays sound: everything conflicts.
        assert!(a.phys_lines(0).is_top());
    }

    #[test]
    fn cache_analyzes_each_kernel_content_once() {
        let mut b = KernelBuilder::new("cache-a", 2);
        b.imm(0, 8096).load(1, 0, 0).halt();
        let k1 = b.build();
        // Same bytecode, different name: one analysis.
        let k2 = Kernel {
            name: "cache-b".into(),
            ..k1.clone()
        };
        let (h0, m0) = cache_counters();
        let a1 = analyze_cached(&k1, 0, 1);
        let a2 = analyze_cached(&k2, 0, 1);
        let (h1, m1) = cache_counters();
        assert!(
            Arc::ptr_eq(&a1, &a2),
            "content-equal kernels share one analysis"
        );
        assert_eq!(m1 - m0, 1, "exactly one miss");
        assert!(h1 - h0 >= 1, "second lookup hits");
        // Different (tid, threads) is a different analysis key.
        let a3 = analyze_cached(&k1, 1, 2);
        assert!(!Arc::ptr_eq(&a1, &a3));
    }

    #[test]
    fn overflow_region_blocks_table_under_tiny_l1() {
        // 4 distinct lines in one critical region with a 2-way tiny L1:
        // mirrors the spec analysis' overflow kernel.
        let spec = ProgSpec::parse("6/c:L0,L1,L2,S0/c:L3,L4,L5,S3").unwrap();
        let kernels = SpecProgram::compile_all(&spec);
        let tiny = sim_core::config::SystemConfigBuilder::from_config(SystemConfig::testing(2))
            .l1_capacity(128, 2)
            .build()
            .expect("tiny L1 config");
        let a = VmAnalysis::new(SystemKind::LockillerTm, tiny, &kernels);
        assert!(a.threads.iter().all(|t| t.overflow));
        assert!(a.independence().is_none());
        let full = VmAnalysis::new(SystemKind::LockillerTm, testing_cfg(), &kernels);
        assert!(full
            .threads
            .iter()
            .all(|t| !t.overflow && !t.overflow_unknown));
    }
}
