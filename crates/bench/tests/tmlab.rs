//! End-to-end tests for the tmlab batch executor: parallel determinism,
//! persistent-cache round-trips across Lab instances, and stale-version
//! invalidation, all at Tiny scale.

use lockiller::system::SystemKind;
use lockiller_bench::lab::{ConfigPoint, Lab, Point};
use lockiller_bench::tmlab::CACHE_VERSION;
use stamp::{Scale, WorkloadKind};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tmlab-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn sweep() -> Vec<Point> {
    let mut pts = Vec::new();
    for system in [
        SystemKind::Cgl,
        SystemKind::Baseline,
        SystemKind::LockillerTm,
    ] {
        for threads in [2usize, 4] {
            for workload in [WorkloadKind::Ssca2, WorkloadKind::KmeansLow] {
                pts.push(Point {
                    system,
                    workload,
                    threads,
                    cfg: ConfigPoint::Typical,
                });
            }
        }
    }
    pts
}

#[test]
fn parallel_batches_match_sequential_lab_exactly() {
    let points = sweep();
    let mut seq = Lab::new(Scale::Tiny);
    let reference: Vec<_> = points
        .iter()
        .map(|p| seq.run(p.system, p.workload, p.threads, p.cfg))
        .collect();
    for jobs in [2usize, 4, 8] {
        let mut par = Lab::new(Scale::Tiny);
        par.jobs(jobs);
        let got = par.run_many(&points);
        assert_eq!(reference, got, "jobs={jobs} diverged from sequential Lab");
    }
}

#[test]
fn persistent_cache_round_trips_across_lab_instances() {
    let dir = tmpdir("roundtrip");
    let path = dir.join("cache.jsonl");
    let points = sweep();

    let first = {
        let mut lab = Lab::new(Scale::Tiny);
        lab.jobs(2).with_cache(&path).unwrap();
        let out = lab.run_many(&points);
        assert_eq!(lab.report().simulated, points.len());
        assert_eq!(lab.report().cache_hits, 0);
        out
    };

    // A fresh Lab (fresh memo) over the same file: everything must come
    // off disk, byte-identical.
    let mut lab = Lab::new(Scale::Tiny);
    lab.with_cache(&path).unwrap();
    assert_eq!(lab.disk_cached(), Some(points.len()));
    let second = lab.run_many(&points);
    assert_eq!(lab.report().simulated, 0, "no re-simulation allowed");
    assert_eq!(lab.report().cache_hits, points.len());
    assert!((lab.report().cache_hit_rate() - 1.0).abs() < 1e-12);
    assert_eq!(first, second, "cached stats must be byte-identical");
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.to_json(), b.to_json());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_seed_or_scale_misses_the_cache() {
    let dir = tmpdir("keying");
    let path = dir.join("cache.jsonl");
    let points = vec![Point {
        system: SystemKind::Baseline,
        workload: WorkloadKind::Ssca2,
        threads: 2,
        cfg: ConfigPoint::Typical,
    }];
    {
        let mut lab = Lab::new(Scale::Tiny);
        lab.with_cache(&path).unwrap();
        lab.prefetch(&points);
    }
    // Same point at a different workload scale: a distinct key, so it
    // must simulate, not alias the Tiny entry.
    let mut lab = Lab::new(Scale::Small);
    lab.with_cache(&path).unwrap();
    lab.prefetch(&points);
    assert_eq!(lab.report().cache_hits, 0);
    assert_eq!(lab.report().simulated, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_cache_version_forces_resimulation() {
    let dir = tmpdir("stale");
    let path = dir.join("cache.jsonl");
    let points = sweep();
    let first = {
        let mut lab = Lab::new(Scale::Tiny);
        lab.with_cache(&path).unwrap();
        lab.run_many(&points)
    };

    // Forge an older binary's header; the whole file must be dropped.
    let text = std::fs::read_to_string(&path).unwrap();
    let stale = text.replacen(
        &format!("\"tmlab_cache\":{CACHE_VERSION}"),
        "\"tmlab_cache\":0",
        1,
    );
    assert_ne!(text, stale, "header rewrite must hit");
    std::fs::write(&path, stale).unwrap();

    let mut lab = Lab::new(Scale::Tiny);
    lab.with_cache(&path).unwrap();
    assert_eq!(lab.disk_cached(), Some(0), "stale cache must be dropped");
    let second = lab.run_many(&points);
    assert_eq!(lab.report().simulated, points.len());
    assert_eq!(first, second, "re-simulation reproduces the same stats");
    let _ = std::fs::remove_dir_all(&dir);
}
