//! Harness self-tests: every experiment function runs end-to-end at Tiny
//! scale and emits the rows its figure needs.

use lockiller_bench::experiments as ex;
use lockiller_bench::lab::Lab;
use stamp::Scale;

fn tiny_lab() -> Lab {
    Lab::new(Scale::Tiny)
}

#[test]
fn tables_render() {
    let t1 = ex::table1();
    assert!(t1.contains("Number of Cores") && t1.contains("32"));
    assert!(t1.contains("2-D mesh (4x8)"));
    let t2 = ex::table2();
    assert!(t2.contains("LockillerTM-RWIL"));
    assert!(t2.contains("switchingMode"));
}

#[test]
fn fig1_has_all_workloads() {
    let mut lab = tiny_lab();
    let out = ex::fig1(&mut lab);
    for w in stamp::WorkloadKind::ALL {
        assert!(out.contains(w.name()), "missing {}", w.name());
    }
    assert_eq!(lab.runs_cached(), 18, "9 workloads x (CGL + Baseline)");
}

#[test]
fn fig8_reports_commit_rates() {
    let mut lab = tiny_lab();
    let out = ex::fig8(&mut lab, true);
    assert!(out.contains("LockillerTM-RWI"));
    assert!(out.contains('%'));
}

#[test]
fn fig10_reports_abort_causes() {
    let mut lab = tiny_lab();
    let out = ex::fig10(&mut lab);
    for c in sim_core::stats::AbortCause::ALL {
        assert!(out.contains(c.name()), "missing cause column {}", c.name());
    }
}

#[test]
fn characterization_reports_all_workloads() {
    let mut lab = tiny_lab();
    let out = ex::characterize(&mut lab);
    assert!(out.contains("tx cycles"));
    assert!(out.contains("labyrinth"));
}

#[test]
fn plots_write_svgs() {
    let mut lab = tiny_lab();
    let dir = std::env::temp_dir().join("lockiller_plot_test");
    let written = ex::plots(&mut lab, true, &dir).expect("plots");
    assert_eq!(written.len(), 3);
    for p in written {
        let svg = std::fs::read_to_string(&p).unwrap();
        assert!(svg.starts_with("<svg"), "{p} is not svg");
        assert!(svg.ends_with("</svg>\n"));
    }
}
