//! One function per table/figure of the paper's evaluation (§IV).
//!
//! Each returns the rendered text it prints, so integration tests can
//! assert on the series' *shape* (who wins, where) without re-parsing.

use crate::lab::{ConfigPoint, Lab, Point};
use crate::table::{pct, ratio, render};
use lockiller::system::SystemKind;
use sim_core::stats::{AbortCause, Phase};
use stamp::WorkloadKind;

/// Thread counts the paper sweeps (2..32 on the 32-core system).
pub const THREADS: [usize; 5] = [2, 4, 8, 16, 32];

/// Reduced sweep for quick runs.
pub const THREADS_QUICK: [usize; 3] = [2, 8, 32];

fn thread_list(quick: bool) -> &'static [usize] {
    if quick {
        &THREADS_QUICK
    } else {
        &THREADS
    }
}

/// Cross-product of a figure's axes, handed to [`Lab::prefetch`] up front
/// so the whole figure simulates as one parallel batch instead of one
/// point per table cell.
fn cross(
    systems: &[SystemKind],
    workloads: &[WorkloadKind],
    threads: &[usize],
    cfgs: &[ConfigPoint],
) -> Vec<Point> {
    let mut out = Vec::with_capacity(systems.len() * workloads.len() * threads.len() * cfgs.len());
    for &cfg in cfgs {
        for &t in threads {
            for &w in workloads {
                for &s in systems {
                    out.push(Point {
                        system: s,
                        workload: w,
                        threads: t,
                        cfg,
                    });
                }
            }
        }
    }
    out
}

/// Table I: the modelled system parameters.
pub fn table1() -> String {
    let c = ConfigPoint::Typical.config();
    let rows = vec![
        vec!["Number of Cores".into(), format!("{}", c.num_cores)],
        vec![
            "Core Detail".into(),
            "In-order, single-issue, 1 op/cycle".into(),
        ],
        vec!["Cache Line Size".into(), "64 bytes".into()],
        vec![
            "L1 D cache".into(),
            format!(
                "Private, {}KB, {}-way, {}-cycle hit",
                c.mem.l1.lines() * 64 / 1024,
                c.mem.l1.ways,
                c.mem.l1_hit
            ),
        ],
        vec![
            "L2 (LLC)".into(),
            format!(
                "Shared, {}MB, {}-way, {}-cycle hit, inclusive",
                c.mem.llc_bank.lines() * 64 * c.num_cores / (1024 * 1024),
                c.mem.llc_bank.ways,
                c.mem.llc_hit
            ),
        ],
        vec![
            "Memory".into(),
            format!("{}-cycle latency", c.mem.mem_latency),
        ],
        vec!["Coherence protocol".into(), "MESI, directory-based".into()],
        vec![
            "Topology and Routing".into(),
            format!("2-D mesh ({}x{}), X-Y", c.noc.width, c.noc.height),
        ],
        vec![
            "Flit size / message size".into(),
            format!(
                "16 bytes / {} flits (data), {} flit (control)",
                c.noc.data_flits, c.noc.control_flits
            ),
        ],
        vec![
            "Link latency/bandwidth".into(),
            format!("{} cycle / 1 flit per cycle", c.noc.link_latency),
        ],
    ];
    let out = format!(
        "TABLE I. System Model Parameters\n{}",
        render(&["Component", "Value"], &rows)
    );
    println!("{out}");
    out
}

/// Table II: the evaluated systems.
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = SystemKind::ALL
        .iter()
        .map(|s| {
            let p = s.policy();
            let mut feats = Vec::new();
            if p.coarse_grained_lock {
                feats.push("coarse-grained lock".to_string());
            } else {
                feats.push("best-effort HTM".to_string());
                if p.recovery {
                    feats.push(format!(
                        "recovery ({:?} prio, {:?})",
                        p.priority, p.reject_action
                    ));
                }
                if p.htmlock {
                    feats.push("HTMLock".to_string());
                }
                if p.switching_mode {
                    feats.push("switchingMode".to_string());
                }
            }
            vec![s.name().to_string(), feats.join(" + ")]
        })
        .collect();
    let out = format!(
        "TABLE II. Evaluated Systems\n{}",
        render(&["System", "Mechanisms"], &rows)
    );
    println!("{out}");
    out
}

/// Fig. 1: speedup of requester-win best-effort HTM vs CGL, 2 threads.
pub fn fig1(lab: &mut Lab) -> String {
    lab.prefetch(&cross(
        &[SystemKind::Cgl, SystemKind::Baseline],
        &WorkloadKind::ALL,
        &[2],
        &[ConfigPoint::Typical],
    ));
    let rows: Vec<Vec<String>> = WorkloadKind::ALL
        .iter()
        .map(|&w| {
            let s = lab.speedup(SystemKind::Baseline, w, 2, ConfigPoint::Typical);
            vec![w.name().to_string(), ratio(s)]
        })
        .collect();
    let out = format!(
        "FIG 1. Speedup of requester-win best-effort HTM vs CGL (2 threads)\n{}",
        render(&["workload", "speedup"], &rows)
    );
    println!("{out}");
    out
}

/// Fig. 7: per-workload speedup vs CGL for every system and thread count.
pub fn fig7(lab: &mut Lab, quick: bool) -> String {
    let systems: Vec<SystemKind> = SystemKind::ALL
        .iter()
        .copied()
        .filter(|s| *s != SystemKind::Cgl)
        .collect();
    lab.prefetch(&cross(
        &SystemKind::ALL,
        &WorkloadKind::ALL,
        thread_list(quick),
        &[ConfigPoint::Typical],
    ));
    let mut out = String::from("FIG 7. Speedup vs CGL (typical cache)\n");
    for &w in &WorkloadKind::ALL {
        let mut rows = Vec::new();
        for &t in thread_list(quick) {
            let mut row = vec![format!("{t}")];
            for &sys in &systems {
                row.push(ratio(lab.speedup(sys, w, t, ConfigPoint::Typical)));
            }
            rows.push(row);
        }
        let mut header: Vec<&str> = vec!["threads"];
        header.extend(systems.iter().map(|s| s.name()));
        out.push_str(&format!("\n[{}]\n{}", w.name(), render(&header, &rows)));
    }
    println!("{out}");
    out
}

/// Fig. 8: average transaction commit rate of the recovery systems.
pub fn fig8(lab: &mut Lab, quick: bool) -> String {
    lab.prefetch(&cross(
        &SystemKind::FIG8,
        &WorkloadKind::ALL,
        thread_list(quick),
        &[ConfigPoint::Typical],
    ));
    let mut rows = Vec::new();
    for &t in thread_list(quick) {
        let mut row = vec![format!("{t}")];
        for &sys in &SystemKind::FIG8 {
            let mut sum = 0.0;
            for w in WorkloadKind::ALL {
                sum += lab.run(sys, w, t, ConfigPoint::Typical).commit_rate();
            }
            row.push(pct(sum / WorkloadKind::ALL.len() as f64));
        }
        rows.push(row);
    }
    let mut header: Vec<&str> = vec!["threads"];
    header.extend(SystemKind::FIG8.iter().map(|s| s.name()));
    let out = format!(
        "FIG 8. Average transaction commit rate (recovery variants)\n{}",
        render(&header, &rows)
    );
    println!("{out}");
    out
}

fn breakdown_figure(lab: &mut Lab, title: &str, systems: &[SystemKind], threads: usize) -> String {
    lab.prefetch(&cross(
        systems,
        &WorkloadKind::ALL,
        &[threads],
        &[ConfigPoint::Typical],
    ));
    let phases = Phase::ALL;
    let mut out = format!("{title}\n");
    for &w in &WorkloadKind::ALL {
        let mut rows = Vec::new();
        for &sys in systems {
            let s = lab.run(sys, w, threads, ConfigPoint::Typical);
            let total: u64 = phases.iter().map(|p| s.phase(*p)).sum();
            let mut row = vec![sys.name().to_string()];
            for p in phases {
                let frac = if total == 0 {
                    0.0
                } else {
                    s.phase(p) as f64 / total as f64
                };
                row.push(pct(frac));
            }
            row.push(pct(s.commit_rate()));
            rows.push(row);
        }
        let mut header: Vec<&str> = vec!["system"];
        header.extend(phases.iter().map(|p| p.name()));
        header.push("commit rate");
        out.push_str(&format!("\n[{}]\n{}", w.name(), render(&header, &rows)));
    }
    println!("{out}");
    out
}

/// Fig. 9: execution-time breakdown + commit rate at 32 threads.
pub fn fig9(lab: &mut Lab, quick: bool) -> String {
    let threads = if quick { 8 } else { 32 };
    breakdown_figure(
        lab,
        &format!("FIG 9. Execution-time breakdown + commit rate ({threads} threads)"),
        &[
            SystemKind::Baseline,
            SystemKind::LockillerRwi,
            SystemKind::LockillerRwil,
        ],
        threads,
    )
}

/// Fig. 10: abort-cause percentages at 2 threads.
pub fn fig10(lab: &mut Lab) -> String {
    let systems = [
        SystemKind::Baseline,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ];
    lab.prefetch(&cross(
        &systems,
        &WorkloadKind::ALL,
        &[2],
        &[ConfigPoint::Typical],
    ));
    let mut out = String::from("FIG 10. Abort causes at 2 threads (fraction of all aborts)\n");
    for &w in &WorkloadKind::ALL {
        let mut rows = Vec::new();
        for &sys in &systems {
            let s = lab.run(sys, w, 2, ConfigPoint::Typical);
            let mut row = vec![sys.name().to_string()];
            for c in AbortCause::ALL {
                row.push(pct(s.abort_fraction(c)));
            }
            row.push(format!("{}", s.total_aborts()));
            rows.push(row);
        }
        let mut header: Vec<&str> = vec!["system"];
        header.extend(AbortCause::ALL.iter().map(|c| c.name()));
        header.push("aborts");
        out.push_str(&format!("\n[{}]\n{}", w.name(), render(&header, &rows)));
    }
    println!("{out}");
    out
}

/// Fig. 11: breakdown + commit rate at 2 threads (incl. switchLock).
pub fn fig11(lab: &mut Lab) -> String {
    breakdown_figure(
        lab,
        "FIG 11. Execution-time breakdown + commit rate (2 threads)",
        &[
            SystemKind::Baseline,
            SystemKind::LockillerRwil,
            SystemKind::LockillerTm,
        ],
        2,
    )
}

/// Fig. 12: average speedup of every system across thread counts.
pub fn fig12(lab: &mut Lab, quick: bool) -> String {
    let systems: Vec<SystemKind> = SystemKind::ALL
        .iter()
        .copied()
        .filter(|s| *s != SystemKind::Cgl)
        .collect();
    lab.prefetch(&cross(
        &SystemKind::ALL,
        &WorkloadKind::ALL,
        thread_list(quick),
        &[ConfigPoint::Typical],
    ));
    let mut rows = Vec::new();
    for &t in thread_list(quick) {
        let mut row = vec![format!("{t}")];
        for &sys in &systems {
            row.push(ratio(lab.avg_speedup(sys, t, ConfigPoint::Typical)));
        }
        rows.push(row);
    }
    let mut header: Vec<&str> = vec!["threads"];
    header.extend(systems.iter().map(|s| s.name()));
    let out = format!(
        "FIG 12. Average speedup vs CGL (geometric mean over workloads)\n{}",
        render(&header, &rows)
    );
    println!("{out}");
    out
}

/// Fig. 13: cache-size sensitivity.
pub fn fig13(lab: &mut Lab, quick: bool) -> String {
    let systems = [
        SystemKind::Baseline,
        SystemKind::LosaTmSafu,
        SystemKind::LockillerTm,
    ];
    lab.prefetch(&cross(
        &[
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LosaTmSafu,
            SystemKind::LockillerTm,
        ],
        &WorkloadKind::ALL,
        thread_list(quick),
        &[ConfigPoint::SmallCache, ConfigPoint::LargeCache],
    ));
    let mut out = String::from("FIG 13. Average speedup vs CGL under cache sensitivity\n");
    for cfg in [ConfigPoint::SmallCache, ConfigPoint::LargeCache] {
        let mut rows = Vec::new();
        for &t in thread_list(quick) {
            let mut row = vec![format!("{t}")];
            for &sys in &systems {
                row.push(ratio(lab.avg_speedup(sys, t, cfg)));
            }
            rows.push(row);
        }
        let mut header: Vec<&str> = vec!["threads"];
        header.extend(systems.iter().map(|s| s.name()));
        out.push_str(&format!("\n[{}]\n{}", cfg.name(), render(&header, &rows)));
    }
    println!("{out}");
    out
}

/// Write SVG renderings of the headline figures (Fig 1 bars, Fig 12
/// speedup lines, Fig 8 commit-rate lines) into `dir`.
pub fn plots(lab: &mut Lab, quick: bool, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    use crate::svgplot::{grouped_bars, line_chart, system_color, BarGroup, Series};
    std::fs::create_dir_all(dir)?;
    let mut pts = cross(
        &[SystemKind::Cgl, SystemKind::Baseline],
        &WorkloadKind::ALL,
        &[2],
        &[ConfigPoint::Typical],
    );
    pts.extend(cross(
        &[
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LosaTmSafu,
            SystemKind::LockillerRwi,
            SystemKind::LockillerRwil,
            SystemKind::LockillerTm,
        ],
        &WorkloadKind::ALL,
        thread_list(quick),
        &[ConfigPoint::Typical],
    ));
    pts.extend(cross(
        &SystemKind::FIG8,
        &WorkloadKind::ALL,
        thread_list(quick),
        &[ConfigPoint::Typical],
    ));
    lab.prefetch(&pts);
    let mut written = Vec::new();

    // Fig 1: baseline vs CGL bars per workload.
    let names = vec![(
        "Baseline HTM".to_string(),
        system_color(SystemKind::Baseline).to_string(),
    )];
    let groups: Vec<BarGroup> = WorkloadKind::ALL
        .iter()
        .map(|&w| BarGroup {
            label: w.name().to_string(),
            values: vec![lab.speedup(SystemKind::Baseline, w, 2, ConfigPoint::Typical)],
        })
        .collect();
    let svg = grouped_bars(
        "Fig 1 — requester-win best-effort HTM vs coarse-grained locking (2 threads)",
        "speedup vs CGL",
        &names,
        &groups,
    );
    let path = dir.join("fig01.svg");
    std::fs::write(&path, svg)?;
    written.push(path.display().to_string());

    // Fig 12: average speedup lines for the paper's key systems.
    let systems = [
        SystemKind::Baseline,
        SystemKind::LosaTmSafu,
        SystemKind::LockillerRwi,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ];
    let threads = thread_list(quick);
    let series: Vec<Series> = systems
        .iter()
        .map(|&sys| Series {
            name: sys.name().to_string(),
            color: system_color(sys).to_string(),
            points: threads
                .iter()
                .map(|&t| (t as f64, lab.avg_speedup(sys, t, ConfigPoint::Typical)))
                .collect(),
        })
        .collect();
    let svg = line_chart(
        "Fig 12 — average speedup vs CGL (geometric mean over STAMP workloads)",
        "threads",
        "speedup vs CGL",
        &series,
    );
    let path = dir.join("fig12.svg");
    std::fs::write(&path, svg)?;
    written.push(path.display().to_string());

    // Fig 8: average commit rate lines for the recovery variants.
    let series: Vec<Series> = SystemKind::FIG8
        .iter()
        .map(|&sys| Series {
            name: sys.name().to_string(),
            color: system_color(sys).to_string(),
            points: threads
                .iter()
                .map(|&t| {
                    let mut sum = 0.0;
                    for w in WorkloadKind::ALL {
                        sum += lab.run(sys, w, t, ConfigPoint::Typical).commit_rate();
                    }
                    (t as f64, sum / WorkloadKind::ALL.len() as f64)
                })
                .collect(),
        })
        .collect();
    let svg = line_chart(
        "Fig 8 — average transaction commit rate",
        "threads",
        "commit rate",
        &series,
    );
    let path = dir.join("fig08.svg");
    std::fs::write(&path, svg)?;
    written.push(path.display().to_string());

    for p in &written {
        println!("wrote {p}");
    }
    Ok(written)
}

/// STAMP workload characterization on this simulator (the analogue of
/// the STAMP paper's per-application table): committed-transaction
/// length, read/write-set sizes, and abort pressure at a fixed thread
/// count. Used to check each port lands in its documented contention
/// class (DESIGN.md §8).
pub fn characterize(lab: &mut Lab) -> String {
    let threads = 8;
    lab.prefetch(&cross(
        &[SystemKind::Baseline],
        &WorkloadKind::ALL,
        &[threads],
        &[ConfigPoint::Typical],
    ));
    let mut rows = Vec::new();
    for &w in &WorkloadKind::ALL {
        let s = lab.run(SystemKind::Baseline, w, threads, ConfigPoint::Typical);
        rows.push(vec![
            w.name().to_string(),
            format!("{:.0}", s.avg_tx_len()),
            format!("{:.1}", s.avg_read_set()),
            format!("{:.1}", s.avg_write_set()),
            format!("{}", s.commits),
            pct(1.0 - s.commit_rate()),
            format!("{}", s.fallbacks),
        ]);
    }
    let out = format!(
        "CHARACTERIZATION (Baseline @{threads} threads, typical cache)
{}",
        render(
            &[
                "workload",
                "tx cycles",
                "rd lines",
                "wr lines",
                "commits",
                "abort rate",
                "fallbacks"
            ],
            &rows
        )
    );
    println!("{out}");
    out
}

/// Headline numbers quoted in the abstract: average speedup of
/// LockillerTM over Baseline and LosaTM-SAFU, plus the extreme-case
/// maxima in the small-cache configuration.
pub fn headline(lab: &mut Lab, quick: bool) -> String {
    let t_all = thread_list(quick);
    let key_systems = [
        SystemKind::LockillerTm,
        SystemKind::Baseline,
        SystemKind::LosaTmSafu,
    ];
    let mut pts = cross(
        &key_systems,
        &WorkloadKind::ALL,
        t_all,
        &[ConfigPoint::Typical],
    );
    pts.extend(cross(
        &key_systems,
        &WorkloadKind::ALL,
        &[*t_all.last().unwrap()],
        &[ConfigPoint::SmallCache],
    ));
    lab.prefetch(&pts);
    let mut over_base: Vec<f64> = Vec::new();
    let mut over_losa: Vec<f64> = Vec::new();
    for &t in t_all {
        for w in WorkloadKind::ALL {
            let full = lab
                .run(SystemKind::LockillerTm, w, t, ConfigPoint::Typical)
                .cycles as f64;
            let base = lab
                .run(SystemKind::Baseline, w, t, ConfigPoint::Typical)
                .cycles as f64;
            let losa = lab
                .run(SystemKind::LosaTmSafu, w, t, ConfigPoint::Typical)
                .cycles as f64;
            over_base.push(base / full);
            over_losa.push(losa / full);
        }
    }
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    let max_threads = *t_all.last().unwrap();
    let mut max_base: f64 = 0.0;
    let mut max_losa: f64 = 0.0;
    for w in WorkloadKind::ALL {
        let full = lab
            .run(
                SystemKind::LockillerTm,
                w,
                max_threads,
                ConfigPoint::SmallCache,
            )
            .cycles as f64;
        let base = lab
            .run(
                SystemKind::Baseline,
                w,
                max_threads,
                ConfigPoint::SmallCache,
            )
            .cycles as f64;
        let losa = lab
            .run(
                SystemKind::LosaTmSafu,
                w,
                max_threads,
                ConfigPoint::SmallCache,
            )
            .cycles as f64;
        max_base = max_base.max(base / full);
        max_losa = max_losa.max(losa / full);
    }
    let out = format!(
        "HEADLINE (paper: 1.86x / 1.57x avg, 7.79x / 6.73x max @8KB+32T)\n\
         avg speedup of LockillerTM vs Baseline:    {}\n\
         avg speedup of LockillerTM vs LosaTM-SAFU: {}\n\
         max speedup vs Baseline    (small cache, {max_threads} threads): {}\n\
         max speedup vs LosaTM-SAFU (small cache, {max_threads} threads): {}\n",
        ratio(geo(&over_base)),
        ratio(geo(&over_losa)),
        ratio(max_base),
        ratio(max_losa),
    );
    println!("{out}");
    out
}

/// Conflict-forensics summary: who aborts whom and whether each reject
/// action's recoveries save work, per system variant. Runs traced
/// simulations through `tmobs` (recordings bypass the run cache), renders
/// the per-variant ledger comparison, and writes the per-system blame
/// reports as one JSON artifact (`BENCH_forensics.json`).
pub fn forensics(quick: bool, json_out: &std::path::Path) -> std::io::Result<String> {
    use stamp::Scale;
    use tmobs::{run_trace, TraceConfig};

    let systems = [
        SystemKind::Baseline,
        SystemKind::LockillerRai,
        SystemKind::LockillerRri,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ];
    let workload = WorkloadKind::Intruder;
    let threads = 8;
    let scale = if quick { Scale::Tiny } else { Scale::Small };

    let mut rows = Vec::new();
    let mut blobs = Vec::new();
    for &sys in &systems {
        let mut cfg = TraceConfig::new(workload, sys);
        cfg.threads = threads;
        cfg.scale = scale;
        let art = run_trace(&cfg);
        if let Err(e) = &art.validation {
            panic!("{} validation failed: {e}", sys.name());
        }
        let f = &art.forensics;
        assert_eq!(
            f.matrix.total_wasted(),
            art.stats.aborted_cycles(),
            "{}: forensics wasted-cycle total must reconcile with RunStats",
            sys.name()
        );
        rows.push(vec![
            sys.name().to_string(),
            format!("{}", f.matrix.total_conflicts()),
            format!("{}", f.ledger.nacks),
            format!("{}", f.matrix.total_aborts()),
            format!("{}", f.matrix.total_wasted()),
            pct(art.stats.wasted_fraction()),
            format!("{}", f.ledger.nacked_attempts),
            pct(f.ledger.saved_fraction()),
            pct(art.stats.commit_rate()),
        ]);
        blobs.push(format!(
            "{{\"system\":\"{}\",\"blame\":{}}}",
            sys.name(),
            f.to_json(10).trim_end()
        ));
    }

    let out = format!(
        "FORENSICS. Conflict attribution + recovery outcomes ({} @ {threads} threads, {scale:?})\n{}",
        workload.name(),
        render(
            &[
                "system",
                "conflicts",
                "nacks",
                "aborts",
                "wasted",
                "wasted%",
                "nacked-tx",
                "saved%",
                "commit%",
            ],
            &rows
        )
    );
    std::fs::write(
        json_out,
        format!(
            "{{\"schema\":1,\"workload\":\"{}\",\"threads\":{threads},\"systems\":[{}]}}\n",
            workload.name(),
            blobs.join(",")
        ),
    )?;
    println!("{out}");
    Ok(out)
}
