//! Minimal aligned-table rendering for harness output.

/// Render rows as an aligned text table with a header.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            for _ in c.len()..widths[i] {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Format a ratio like the paper quotes them ("1.86x").
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns aligned: "value" and "1" start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].chars().nth(col), Some('1'));
    }

    #[test]
    fn ratio_and_pct() {
        assert_eq!(ratio(1.8649), "1.86x");
        assert_eq!(pct(0.4215), "42.1%");
    }
}
