//! Run cache: one simulation per (system, workload, threads, config)
//! point, memoized so figures sharing points (every speedup figure needs
//! the CGL baseline) do not re-simulate.
//!
//! `Lab` is the figure-facing layer over [`crate::tmlab`]: single-point
//! lookups hit an in-memory memo; batches go through
//! [`crate::tmlab::Executor`], which fans cache misses across host cores
//! ([`Lab::jobs`]) and, when a persistent cache is attached
//! ([`Lab::with_cache`]), serves previously-simulated points from disk —
//! making repeated `experiments` invocations incremental. Figures call
//! [`Lab::prefetch`] with their whole point list up front so the
//! subsequent per-cell [`Lab::run`] calls are memo hits.

pub use crate::tmlab::Point;
use crate::tmlab::{BatchReport, Executor, RunCache};
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::stats::RunStats;
use stamp::{Scale, WorkloadKind};
use std::collections::HashMap;
use std::path::Path;

/// Hardware configuration points used by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConfigPoint {
    /// Table I: 32 KB L1 / 8 MB LLC.
    Typical,
    /// Fig. 13: 8 KB L1 / 1 MB LLC.
    SmallCache,
    /// Fig. 13: 128 KB L1 / 32 MB LLC.
    LargeCache,
}

impl ConfigPoint {
    pub fn config(self) -> SystemConfig {
        match self {
            ConfigPoint::Typical => SystemConfig::table1(),
            ConfigPoint::SmallCache => SystemConfig::small_cache(),
            ConfigPoint::LargeCache => SystemConfig::large_cache(),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ConfigPoint::Typical => "typical (32KB L1 / 8MB LLC)",
            ConfigPoint::SmallCache => "small (8KB L1 / 1MB LLC)",
            ConfigPoint::LargeCache => "large (128KB L1 / 32MB LLC)",
        }
    }
}

type Key = (SystemKind, WorkloadKind, usize, ConfigPoint);

/// The memoizing runner.
pub struct Lab {
    scale: Scale,
    seed: u64,
    jobs: usize,
    memo: HashMap<Key, RunStats>,
    disk: Option<RunCache>,
    report: BatchReport,
    pub verbose: bool,
}

impl Lab {
    pub fn new(scale: Scale) -> Lab {
        Lab {
            scale,
            seed: 0xC0FFEE,
            jobs: 1,
            memo: HashMap::new(),
            disk: None,
            report: BatchReport::default(),
            verbose: false,
        }
    }

    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Host worker threads used for batched points (default 1, i.e. the
    /// sequential reference behaviour).
    pub fn jobs(&mut self, n: usize) -> &mut Lab {
        self.jobs = n.max(1);
        self
    }

    /// Attach a persistent run cache at `path` (versioned JSONL; see
    /// [`crate::tmlab::cache`]). Previously-simulated points load now and
    /// everything simulated from here on is written back.
    pub fn with_cache(&mut self, path: &Path) -> std::io::Result<&mut Lab> {
        self.disk = Some(RunCache::open(path)?);
        Ok(self)
    }

    /// Entries currently in the attached persistent cache, if any.
    pub fn disk_cached(&self) -> Option<usize> {
        self.disk.as_ref().map(RunCache::len)
    }

    /// Host-side accounting accumulated over every batch so far.
    pub fn report(&self) -> &BatchReport {
        &self.report
    }

    fn executor(&self) -> Executor {
        Executor {
            scale: self.scale,
            seed: self.seed,
            jobs: self.jobs,
            verbose: self.verbose,
        }
    }

    /// Run (or recall) a whole batch of points, in order. Memo hits cost
    /// nothing; the rest go through the parallel executor (and the
    /// persistent cache, when attached) in one fan-out.
    pub fn run_many(&mut self, points: &[Point]) -> Vec<RunStats> {
        let mut misses: Vec<Point> = Vec::new();
        let mut seen: HashMap<Key, ()> = HashMap::new();
        for p in points {
            let key = (p.system, p.workload, p.threads, p.cfg);
            if !self.memo.contains_key(&key) && seen.insert(key, ()).is_none() {
                misses.push(*p);
            }
        }
        if !misses.is_empty() {
            let exec = self.executor();
            let stats = exec.run(&misses, self.disk.as_mut(), &mut self.report);
            for (p, s) in misses.iter().zip(stats) {
                self.memo
                    .insert((p.system, p.workload, p.threads, p.cfg), s);
            }
        }
        points
            .iter()
            .map(|p| self.memo[&(p.system, p.workload, p.threads, p.cfg)].clone())
            .collect()
    }

    /// Batch-run `points` for their side effect on the memo (figures call
    /// this first so later per-cell lookups never simulate).
    pub fn prefetch(&mut self, points: &[Point]) {
        let _ = self.run_many(points);
    }

    /// Run (or recall) one simulation point.
    pub fn run(
        &mut self,
        system: SystemKind,
        workload: WorkloadKind,
        threads: usize,
        cfg: ConfigPoint,
    ) -> RunStats {
        let key = (system, workload, threads, cfg);
        if let Some(s) = self.memo.get(&key) {
            return s.clone();
        }
        if self.verbose {
            eprintln!(
                "  [run] {} / {} / {} threads / {}",
                system.name(),
                workload.name(),
                threads,
                cfg.name()
            );
        }
        self.run_many(&[Point {
            system,
            workload,
            threads,
            cfg,
        }])
        .pop()
        .expect("run_many returns one result per point")
    }

    /// Speedup of `system` over CGL on the same point (the paper's
    /// speedup definition: same code, same threads, elision overloaded).
    /// A degenerate zero-cycle run yields 0.0 (never NaN/inf), matching
    /// the `RunStats` ratio helpers.
    pub fn speedup(
        &mut self,
        system: SystemKind,
        workload: WorkloadKind,
        threads: usize,
        cfg: ConfigPoint,
    ) -> f64 {
        let cgl = self.run(SystemKind::Cgl, workload, threads, cfg).cycles as f64;
        let sys = self.run(system, workload, threads, cfg).cycles as f64;
        if sys == 0.0 {
            0.0
        } else {
            cgl / sys
        }
    }

    /// Geometric mean of speedups over all nine workloads.
    pub fn avg_speedup(&mut self, system: SystemKind, threads: usize, cfg: ConfigPoint) -> f64 {
        let mut logsum = 0.0;
        for w in WorkloadKind::ALL {
            logsum += self.speedup(system, w, threads, cfg).ln();
        }
        (logsum / WorkloadKind::ALL.len() as f64).exp()
    }

    pub fn runs_cached(&self) -> usize {
        self.memo.len()
    }

    /// Export every cached simulation point as CSV (for external
    /// plotting). Columns are stable; one row per point.
    pub fn dump_csv(&self) -> String {
        let mut rows: Vec<(&Key, &RunStats)> = self.memo.iter().collect();
        rows.sort_by_key(|(k, _)| (k.1.name(), k.2, k.0.name(), format!("{:?}", k.3)));
        let mut out = String::from(
            "system,workload,threads,config,cycles,tx_starts,commits,stl_commits,\
             lock_commits,aborts_mc,aborts_lock,aborts_mutex,aborts_nontran,aborts_of,\
             aborts_fault,rejects,sig_rejects,wakeups,fallbacks,switches_granted,\
             switches_denied,messages
",
        );
        for ((sys, w, t, cfg), s) in rows {
            out.push_str(&format!(
                "{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}
",
                sys.name(),
                w.name(),
                t,
                cfg,
                s.cycles,
                s.tx_starts,
                s.commits,
                s.stl_commits,
                s.lock_commits,
                s.aborts[0],
                s.aborts[1],
                s.aborts[2],
                s.aborts[3],
                s.aborts[4],
                s.aborts[5],
                s.rejects,
                s.sig_rejects,
                s.wakeups,
                s.fallbacks,
                s.switches_granted,
                s.switches_denied,
                s.messages,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_memoizes_points() {
        let mut lab = Lab::new(Scale::Tiny);
        let a = lab.run(
            SystemKind::Cgl,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        assert_eq!(lab.runs_cached(), 1);
        let b = lab.run(
            SystemKind::Cgl,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        assert_eq!(lab.runs_cached(), 1, "second call must hit the cache");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(lab.report().simulated, 1, "one real simulation");
    }

    #[test]
    fn speedup_is_cgl_relative() {
        let mut lab = Lab::new(Scale::Tiny);
        let s = lab.speedup(
            SystemKind::Cgl,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        assert!((s - 1.0).abs() < 1e-12, "CGL vs CGL must be 1.0");
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let points: Vec<Point> = [2usize, 4]
            .iter()
            .flat_map(|&t| {
                [SystemKind::Cgl, SystemKind::Baseline].map(|system| Point {
                    system,
                    workload: WorkloadKind::KmeansLow,
                    threads: t,
                    cfg: ConfigPoint::Typical,
                })
            })
            .collect();
        let mut par = Lab::new(Scale::Tiny);
        par.jobs(4);
        let batched = par.run_many(&points);
        let mut seq = Lab::new(Scale::Tiny);
        for (p, b) in points.iter().zip(batched) {
            let s = seq.run(p.system, p.workload, p.threads, p.cfg);
            assert_eq!(s, b, "parallel batch diverged on {p:?}");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut lab = Lab::new(Scale::Tiny);
        lab.run(
            SystemKind::Baseline,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        let csv = lab.dump_csv();
        assert!(csv.starts_with("system,workload"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("Baseline,ssca2,2"));
    }
}
