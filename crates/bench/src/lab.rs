//! Run cache: one simulation per (system, workload, threads, config)
//! point, memoized so figures sharing points (every speedup figure needs
//! the CGL baseline) do not re-simulate.

use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use sim_core::stats::RunStats;
use stamp::{Scale, Workload, WorkloadKind};
use std::collections::HashMap;

/// Hardware configuration points used by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConfigPoint {
    /// Table I: 32 KB L1 / 8 MB LLC.
    Typical,
    /// Fig. 13: 8 KB L1 / 1 MB LLC.
    SmallCache,
    /// Fig. 13: 128 KB L1 / 32 MB LLC.
    LargeCache,
}

impl ConfigPoint {
    pub fn config(self) -> SystemConfig {
        match self {
            ConfigPoint::Typical => SystemConfig::table1(),
            ConfigPoint::SmallCache => SystemConfig::small_cache(),
            ConfigPoint::LargeCache => SystemConfig::large_cache(),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ConfigPoint::Typical => "typical (32KB L1 / 8MB LLC)",
            ConfigPoint::SmallCache => "small (8KB L1 / 1MB LLC)",
            ConfigPoint::LargeCache => "large (128KB L1 / 32MB LLC)",
        }
    }
}

type Key = (SystemKind, WorkloadKind, usize, ConfigPoint);

/// The memoizing runner.
pub struct Lab {
    scale: Scale,
    seed: u64,
    cache: HashMap<Key, RunStats>,
    pub verbose: bool,
}

impl Lab {
    pub fn new(scale: Scale) -> Lab {
        Lab {
            scale,
            seed: 0xC0FFEE,
            cache: HashMap::new(),
            verbose: false,
        }
    }

    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Run (or recall) one simulation point.
    pub fn run(
        &mut self,
        system: SystemKind,
        workload: WorkloadKind,
        threads: usize,
        cfg: ConfigPoint,
    ) -> RunStats {
        let key = (system, workload, threads, cfg);
        if let Some(s) = self.cache.get(&key) {
            return s.clone();
        }
        if self.verbose {
            eprintln!(
                "  [run] {} / {} / {} threads / {}",
                system.name(),
                workload.name(),
                threads,
                cfg.name()
            );
        }
        let mut prog = Workload::with_scale(workload, threads, self.scale);
        let stats = Runner::new(system)
            .threads(threads)
            .config(cfg.config())
            .seed(self.seed)
            .run(&mut prog);
        self.cache.insert(key, stats.clone());
        stats
    }

    /// Speedup of `system` over CGL on the same point (the paper's
    /// speedup definition: same code, same threads, elision overloaded).
    pub fn speedup(
        &mut self,
        system: SystemKind,
        workload: WorkloadKind,
        threads: usize,
        cfg: ConfigPoint,
    ) -> f64 {
        let cgl = self.run(SystemKind::Cgl, workload, threads, cfg).cycles as f64;
        let sys = self.run(system, workload, threads, cfg).cycles as f64;
        cgl / sys
    }

    /// Geometric mean of speedups over all nine workloads.
    pub fn avg_speedup(&mut self, system: SystemKind, threads: usize, cfg: ConfigPoint) -> f64 {
        let mut logsum = 0.0;
        for w in WorkloadKind::ALL {
            logsum += self.speedup(system, w, threads, cfg).ln();
        }
        (logsum / WorkloadKind::ALL.len() as f64).exp()
    }

    pub fn runs_cached(&self) -> usize {
        self.cache.len()
    }

    /// Export every cached simulation point as CSV (for external
    /// plotting). Columns are stable; one row per point.
    pub fn dump_csv(&self) -> String {
        let mut rows: Vec<(&Key, &RunStats)> = self.cache.iter().collect();
        rows.sort_by_key(|(k, _)| (k.1.name(), k.2, k.0.name(), format!("{:?}", k.3)));
        let mut out = String::from(
            "system,workload,threads,config,cycles,tx_starts,commits,stl_commits,\
             lock_commits,aborts_mc,aborts_lock,aborts_mutex,aborts_nontran,aborts_of,\
             aborts_fault,rejects,sig_rejects,wakeups,fallbacks,switches_granted,\
             switches_denied,messages
",
        );
        for ((sys, w, t, cfg), s) in rows {
            out.push_str(&format!(
                "{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}
",
                sys.name(),
                w.name(),
                t,
                cfg,
                s.cycles,
                s.tx_starts,
                s.commits,
                s.stl_commits,
                s.lock_commits,
                s.aborts[0],
                s.aborts[1],
                s.aborts[2],
                s.aborts[3],
                s.aborts[4],
                s.aborts[5],
                s.rejects,
                s.sig_rejects,
                s.wakeups,
                s.fallbacks,
                s.switches_granted,
                s.switches_denied,
                s.messages,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_memoizes_points() {
        let mut lab = Lab::new(Scale::Tiny);
        let a = lab.run(
            SystemKind::Cgl,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        assert_eq!(lab.runs_cached(), 1);
        let b = lab.run(
            SystemKind::Cgl,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        assert_eq!(lab.runs_cached(), 1, "second call must hit the cache");
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn speedup_is_cgl_relative() {
        let mut lab = Lab::new(Scale::Tiny);
        let s = lab.speedup(
            SystemKind::Cgl,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        assert!((s - 1.0).abs() < 1e-12, "CGL vs CGL must be 1.0");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut lab = Lab::new(Scale::Tiny);
        lab.run(
            SystemKind::Baseline,
            WorkloadKind::Ssca2,
            2,
            ConfigPoint::Typical,
        );
        let csv = lab.dump_csv();
        assert!(csv.starts_with("system,workload"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("Baseline,ssca2,2"));
    }
}
