//! tmlab — parallel batch executor with a persistent run cache.
//!
//! The experiment harness evaluates hundreds of *independent* simulation
//! points (system × workload × threads × cache config). Each point is
//! bit-deterministic on its own (sim-core's rendezvous-lockstep design),
//! so the batch is embarrassingly parallel, and its results are worth
//! keeping: most figures share points, and most re-invocations change
//! nothing at all.
//!
//! This module supplies both halves:
//!
//! - [`pool::run_ordered`] — a scoped work-stealing thread pool (std
//!   only) that fans points across host cores and returns results in
//!   submission order, so any `--jobs` value produces byte-identical
//!   batch output;
//! - [`cache::RunCache`] — a versioned JSONL file keyed by
//!   [`cache::point_key`] (FxHash over the effective
//!   `SystemConfig::stable_hash()`, system, workload, threads, seed,
//!   scale) that makes `experiments` incremental across invocations;
//! - [`Executor`] — the coordinator gluing them together: deduplicates
//!   in-flight keys, consults the cache, simulates only the misses, and
//!   accounts everything into a [`BatchReport`] (per-point wall-clock,
//!   cache hit rate, host parallel efficiency) for `BENCH_lab.json`.
//!
//! `crate::lab::Lab` layers its figure-facing memoization on top.

pub mod cache;
pub mod pool;

pub use cache::{point_key, PointMeta, RunCache, CACHE_VERSION};

use crate::lab::ConfigPoint;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::fxhash::FxHashMap;
use sim_core::json;
use sim_core::stats::RunStats;
use stamp::{Scale, Workload, WorkloadKind};
use std::time::Instant;
use tmobs::BatchProgress;

/// One simulation point, as the experiment harness names it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Point {
    pub system: SystemKind,
    pub workload: WorkloadKind,
    pub threads: usize,
    pub cfg: ConfigPoint,
}

impl Point {
    fn label(&self) -> String {
        format!(
            "{}/{}/{}t/{:?}",
            self.system.name(),
            self.workload.name(),
            self.threads,
            self.cfg
        )
    }
}

/// One point's accounting in a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct PointReport {
    pub label: String,
    pub cached: bool,
    pub wall_ms: f64,
}

/// Host-side accounting for one or more batches (the harness accumulates
/// across every figure into a single report).
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Points requested (before in-flight dedup).
    pub requested: usize,
    /// Distinct points after dedup.
    pub unique: usize,
    /// Served from the persistent cache.
    pub cache_hits: usize,
    /// Actually simulated this invocation.
    pub simulated: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Whole-batch wall-clock.
    pub wall_ms: f64,
    /// Sum of the individual simulations' wall-clocks.
    pub busy_ms: f64,
    /// Per-point accounting, in completion-independent submission order.
    pub points: Vec<PointReport>,
}

impl BatchReport {
    /// Fraction of unique points served from the persistent cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.unique == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.unique as f64
        }
    }

    /// How much of the theoretical `jobs`-way speedup the batch realised:
    /// `busy / (wall * jobs)`. 1.0 means perfectly parallel, `1/jobs`
    /// means effectively serial. Zero when nothing was simulated.
    pub fn parallel_efficiency(&self) -> f64 {
        let denom = self.wall_ms * self.jobs as f64;
        if denom <= 0.0 {
            0.0
        } else {
            self.busy_ms / denom
        }
    }

    /// Fold another batch's accounting into this one.
    pub fn absorb(&mut self, other: BatchReport) {
        self.requested += other.requested;
        self.unique += other.unique;
        self.cache_hits += other.cache_hits;
        self.simulated += other.simulated;
        self.jobs = self.jobs.max(other.jobs);
        self.wall_ms += other.wall_ms;
        self.busy_ms += other.busy_ms;
        self.points.extend(other.points);
    }

    /// Machine-readable form (`BENCH_lab.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"requested\":{},\"unique\":{},\"cache_hits\":{},\"simulated\":{},\
             \"jobs\":{},\"wall_ms\":{:.3},\"busy_ms\":{:.3},\
             \"cache_hit_rate\":{:.4},\"parallel_efficiency\":{:.4},\"points\":[",
            self.requested,
            self.unique,
            self.cache_hits,
            self.simulated,
            self.jobs,
            self.wall_ms,
            self.busy_ms,
            self.cache_hit_rate(),
            self.parallel_efficiency(),
        ));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"cached\":{},\"wall_ms\":{:.3}}}",
                json::escape(&p.label),
                p.cached,
                p.wall_ms
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The batch coordinator: owns the run parameters shared by every point
/// (scale, seed, host parallelism) but no state — the cache and report
/// are passed per call so `Lab` keeps ownership.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    pub scale: Scale,
    pub seed: u64,
    pub jobs: usize,
    pub verbose: bool,
}

impl Executor {
    /// Run `points`, returning their statistics in submission order.
    ///
    /// Duplicate points are simulated once (in-flight dedup); points
    /// found in `cache` are not simulated at all; everything simulated
    /// is written back to `cache`. Accounting lands in `report`.
    pub fn run(
        &self,
        points: &[Point],
        mut cache: Option<&mut RunCache>,
        report: &mut BatchReport,
    ) -> Vec<RunStats> {
        let t_batch = Instant::now();

        // Dedup in-flight keys: one simulation per distinct key, however
        // many submitted points map onto it.
        let mut key_to_slot: FxHashMap<u64, usize> = FxHashMap::default();
        let mut slots: Vec<(u64, Point, PointMeta)> = Vec::new();
        let mut order: Vec<usize> = Vec::with_capacity(points.len());
        for p in points {
            let meta = self.meta_for(p);
            let mut cfg = p.cfg.config();
            cfg.policy = p.system.policy();
            let key = point_key(&cfg, &meta);
            let slot = *key_to_slot.entry(key).or_insert_with(|| {
                slots.push((key, *p, meta));
                slots.len() - 1
            });
            order.push(slot);
        }

        // Partition into cache hits and points to simulate.
        let mut results: Vec<Option<RunStats>> = vec![None; slots.len()];
        let mut todo: Vec<(usize, Point)> = Vec::new();
        for (slot, (key, p, _)) in slots.iter().enumerate() {
            match cache.as_deref().and_then(|c| c.get(*key)) {
                Some(hit) => {
                    results[slot] = Some(hit.clone());
                    report.points.push(PointReport {
                        label: p.label(),
                        cached: true,
                        wall_ms: 0.0,
                    });
                }
                None => todo.push((slot, *p)),
            }
        }
        let hits = slots.len() - todo.len();

        // Simulate the misses on the pool.
        let progress = BatchProgress::new(todo.len(), self.verbose);
        let scale = self.scale;
        let seed = self.seed;
        let simulated = pool::run_ordered(self.jobs, todo, |_, (slot, p)| {
            let t0 = Instant::now();
            let mut prog = Workload::with_scale(p.workload, p.threads, scale);
            let stats = Runner::new(p.system)
                .threads(p.threads)
                .config(p.cfg.config())
                .seed(seed)
                .run(&mut prog)
                .stats;
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            progress.tick(&p.label(), false, wall_ms);
            (slot, stats, wall_ms)
        });

        // Commit results: memory, persistent cache, accounting.
        for (slot, stats, wall_ms) in simulated {
            let (key, p, meta) = &slots[slot];
            if let Some(c) = cache.as_deref_mut() {
                if let Err(e) = c.put(*key, meta, &stats) {
                    eprintln!("tmlab: cache write failed ({}): {e}", c.path().display());
                }
            }
            report.points.push(PointReport {
                label: p.label(),
                cached: false,
                wall_ms,
            });
            report.busy_ms += wall_ms;
            results[slot] = Some(stats);
        }

        report.requested += points.len();
        report.unique += slots.len();
        report.cache_hits += hits;
        report.simulated += slots.len() - hits;
        report.jobs = report.jobs.max(self.jobs.max(1));
        report.wall_ms += t_batch.elapsed().as_secs_f64() * 1e3;

        order
            .into_iter()
            .map(|slot| results[slot].clone().expect("executor lost a slot"))
            .collect()
    }

    fn meta_for(&self, p: &Point) -> PointMeta {
        PointMeta {
            system: p.system.name().to_string(),
            workload: p.workload.name().to_string(),
            threads: p.threads,
            seed: self.seed,
            scale: self.scale.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(jobs: usize) -> Executor {
        Executor {
            scale: Scale::Tiny,
            seed: 0xC0FFEE,
            jobs,
            verbose: false,
        }
    }

    fn some_points() -> Vec<Point> {
        let mut pts = Vec::new();
        for system in [
            SystemKind::Cgl,
            SystemKind::Baseline,
            SystemKind::LockillerTm,
        ] {
            for threads in [2usize, 4] {
                pts.push(Point {
                    system,
                    workload: WorkloadKind::Ssca2,
                    threads,
                    cfg: ConfigPoint::Typical,
                });
            }
        }
        pts
    }

    #[test]
    fn any_job_count_gives_identical_ordered_results() {
        let points = some_points();
        let mut r1 = BatchReport::default();
        let baseline = exec(1).run(&points, None, &mut r1);
        for jobs in [2, 4, 8] {
            let mut r = BatchReport::default();
            let got = exec(jobs).run(&points, None, &mut r);
            assert_eq!(baseline, got, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn duplicate_points_simulate_once() {
        let mut points = some_points();
        let n = points.len();
        points.extend(some_points()); // every point twice
        let mut report = BatchReport::default();
        let out = exec(2).run(&points, None, &mut report);
        assert_eq!(out.len(), 2 * n);
        assert_eq!(report.requested, 2 * n);
        assert_eq!(report.unique, n);
        assert_eq!(report.simulated, n);
        assert_eq!(out[0], out[n]);
    }

    #[test]
    fn report_json_is_well_formed() {
        let points = some_points();
        let mut report = BatchReport::default();
        let _ = exec(2).run(&points, None, &mut report);
        let doc = json::parse(&report.to_json()).expect("BENCH_lab.json must parse");
        assert_eq!(
            doc.get("unique").and_then(json::Json::as_f64),
            Some(points.len() as f64)
        );
        assert!(doc.get("parallel_efficiency").is_some());
        assert_eq!(
            doc.get("points")
                .and_then(json::Json::as_arr)
                .map(<[json::Json]>::len),
            Some(points.len())
        );
    }
}
