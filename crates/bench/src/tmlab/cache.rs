//! Persistent run cache: completed simulation points as JSONL on disk,
//! so repeated `experiments` invocations only simulate what changed.
//!
//! Format — one JSON object per line:
//!
//! ```text
//! {"tmlab_cache":1,"config_schema":1,"stats_schema":1}          <- header
//! {"key":"0x1a2b...","system":"Baseline","workload":"ssca2",
//!  "threads":2,"seed":12648430,"scale":"tiny","stats":{...}}    <- entry
//! ```
//!
//! The key is [`point_key`]: an FxHash over the *effective*
//! `SystemConfig::stable_hash()` (policy already applied, so every knob
//! that can change a run's outcome is folded in) plus the system name,
//! workload name, thread count, seed, and workload scale. FxHash is
//! process-independent, so keys are stable across invocations.
//!
//! Invalidation is wholesale: if the header's version triplet does not
//! match this binary's ([`CACHE_VERSION`], [`SystemConfig::HASH_SCHEMA`],
//! [`RunStats::JSON_SCHEMA`]), or any line fails to decode, the file is
//! truncated and rebuilt — a run cache is always safe to throw away.

use sim_core::config::SystemConfig;
use sim_core::fxhash::{FxHashMap, FxHasher};
use sim_core::json;
use sim_core::stats::RunStats;
use std::hash::Hasher;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Bump to orphan every existing cache file (entry layout changes).
pub const CACHE_VERSION: u64 = 1;

/// Identity of one simulation point, as recorded in cache entries.
#[derive(Clone, Debug)]
pub struct PointMeta {
    pub system: String,
    pub workload: String,
    pub threads: usize,
    pub seed: u64,
    pub scale: String,
}

/// Stable cache key for one simulation point. `cfg` must be the
/// *effective* configuration — after the system kind's policy (and any
/// retry override) has been applied — so that everything influencing the
/// simulated outcome is hashed.
pub fn point_key(cfg: &SystemConfig, meta: &PointMeta) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(CACHE_VERSION);
    h.write_u64(cfg.stable_hash());
    h.write(meta.system.as_bytes());
    h.write(meta.workload.as_bytes());
    h.write_usize(meta.threads);
    h.write_u64(meta.seed);
    h.write(meta.scale.as_bytes());
    h.finish()
}

/// The on-disk cache: an in-memory map mirrored by an append-only file.
pub struct RunCache {
    path: PathBuf,
    entries: FxHashMap<u64, RunStats>,
    file: std::fs::File,
}

impl RunCache {
    /// Open (or create) the cache at `path`. A missing directory is
    /// created; a stale or corrupt file is silently truncated.
    pub fn open(path: &Path) -> std::io::Result<RunCache> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let entries = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| decode_all(&text));
        match entries {
            Some(entries) => {
                let file = std::fs::OpenOptions::new().append(true).open(path)?;
                Ok(RunCache {
                    path: path.to_path_buf(),
                    entries,
                    file,
                })
            }
            None => {
                let mut file = std::fs::File::create(path)?;
                writeln!(file, "{}", header_line())?;
                file.flush()?;
                Ok(RunCache {
                    path: path.to_path_buf(),
                    entries: FxHashMap::default(),
                    file,
                })
            }
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, key: u64) -> Option<&RunStats> {
        self.entries.get(&key)
    }

    /// Record one completed point, appending it to the file immediately
    /// (an interrupted batch still keeps everything it finished).
    pub fn put(&mut self, key: u64, meta: &PointMeta, stats: &RunStats) -> std::io::Result<()> {
        if self.entries.contains_key(&key) {
            return Ok(());
        }
        writeln!(
            self.file,
            "{{\"key\":\"{:#018x}\",\"system\":\"{}\",\"workload\":\"{}\",\
             \"threads\":{},\"seed\":{},\"scale\":\"{}\",\"stats\":{}}}",
            key,
            json::escape(&meta.system),
            json::escape(&meta.workload),
            meta.threads,
            meta.seed,
            json::escape(&meta.scale),
            stats.to_json()
        )?;
        self.file.flush()?;
        self.entries.insert(key, stats.clone());
        Ok(())
    }
}

fn header_line() -> String {
    format!(
        "{{\"tmlab_cache\":{CACHE_VERSION},\"config_schema\":{},\"stats_schema\":{}}}",
        SystemConfig::HASH_SCHEMA,
        RunStats::JSON_SCHEMA
    )
}

/// Decode a whole cache file; `None` means "treat as stale" (missing or
/// mismatched header, or any undecodable line).
fn decode_all(text: &str) -> Option<FxHashMap<u64, RunStats>> {
    let mut lines = text.lines();
    if lines.next()? != header_line() {
        return None;
    }
    let mut entries = FxHashMap::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).ok()?;
        let key = parse_key(v.get("key")?.as_str()?)?;
        let stats = RunStats::from_json_value(v.get("stats")?).ok()?;
        entries.insert(key, stats);
    }
    Some(entries)
}

fn parse_key(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

impl std::fmt::Debug for RunCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCache")
            .field("path", &self.path)
            .field("entries", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::ConfigPoint;

    fn meta(n: usize) -> PointMeta {
        PointMeta {
            system: "Baseline".into(),
            workload: "ssca2".into(),
            threads: n,
            seed: 7,
            scale: "tiny".into(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tmlab-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn key_separates_every_component() {
        let cfg = ConfigPoint::Typical.config();
        let base = point_key(&cfg, &meta(2));
        assert_eq!(base, point_key(&cfg, &meta(2)), "key must be stable");
        assert_ne!(base, point_key(&cfg, &meta(4)));
        let mut m = meta(2);
        m.seed = 8;
        assert_ne!(base, point_key(&cfg, &m));
        let mut m = meta(2);
        m.workload = "yada".into();
        assert_ne!(base, point_key(&cfg, &m));
        assert_ne!(base, point_key(&ConfigPoint::SmallCache.config(), &meta(2)));
    }

    #[test]
    fn reopen_returns_byte_identical_stats() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("cache.jsonl");
        let stats = RunStats {
            cycles: 123_456,
            commits: 42,
            aborts: [1, 2, 3, 4, 5, 6],
            per_core_cycles: vec![10, 20],
            swmr_violation: Some("core 1 \"quoted\"\nline".into()),
            ..RunStats::default()
        };
        let cfg = ConfigPoint::Typical.config();
        let key = point_key(&cfg, &meta(2));
        {
            let mut c = RunCache::open(&path).unwrap();
            assert!(c.is_empty());
            c.put(key, &meta(2), &stats).unwrap();
        }
        let c = RunCache::open(&path).unwrap();
        assert_eq!(c.len(), 1);
        let got = c.get(key).unwrap();
        assert_eq!(*got, stats);
        assert_eq!(got.to_json(), stats.to_json(), "byte-identical re-encode");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_discards_the_file() {
        let dir = tmpdir("stale");
        let path = dir.join("cache.jsonl");
        {
            let mut c = RunCache::open(&path).unwrap();
            let cfg = ConfigPoint::Typical.config();
            c.put(point_key(&cfg, &meta(2)), &meta(2), &RunStats::default())
                .unwrap();
        }
        // Rewrite the header as if an older binary had produced the file.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let bogus = header_line().replace(
            &format!("\"tmlab_cache\":{CACHE_VERSION}"),
            "\"tmlab_cache\":0",
        );
        lines[0] = &bogus;
        std::fs::write(&path, lines.join("\n")).unwrap();
        let c = RunCache::open(&path).unwrap();
        assert!(c.is_empty(), "stale cache must be dropped wholesale");
        // And the file itself was reset to a fresh header.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert_eq!(text.lines().next().unwrap(), header_line());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_discards_the_file() {
        let dir = tmpdir("corrupt");
        let path = dir.join("cache.jsonl");
        {
            let _ = RunCache::open(&path).unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"0xnope\"}\n");
        std::fs::write(&path, text).unwrap();
        let c = RunCache::open(&path).unwrap();
        assert!(c.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
