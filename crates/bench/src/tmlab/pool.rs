//! A scoped work-stealing thread pool for fanning simulation points out
//! across host cores.
//!
//! Each simulation is itself bit-deterministic (guest threads run in
//! rendezvous lockstep with a single-threaded engine), so distinct points
//! are embarrassingly parallel: the pool only decides *which host worker*
//! runs a point, never the point's outcome. Results are returned indexed
//! by submission order, which makes the whole batch deterministic
//! regardless of the worker count — the property `tmlab`'s tests pin.
//!
//! Implementation: one `Mutex<VecDeque>`-backed deque per worker, seeded
//! round-robin. A worker pops from the *front* of its own deque and, when
//! empty, steals from the *back* of a victim's, which keeps stolen work
//! coarse and the common path contention-free. Only `std` is used.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over `items`, using up to `jobs` host threads, and return the
/// results in submission order. `f` receives `(index, item)`.
///
/// `jobs <= 1` (or a single item) degrades to a plain sequential loop on
/// the calling thread — the reference against which parallel runs must
/// be byte-identical.
pub fn run_ordered<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back((i, item));
    }
    let remaining = AtomicUsize::new(n);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for w in 0..workers {
            let deques = &deques;
            let remaining = &remaining;
            let slots = &slots;
            let f = &f;
            s.spawn(move || loop {
                // Own deque first (front), then steal (back), nearest victim
                // first so the tail of the batch drains evenly. The own-pop
                // is a standalone statement so its lock guard drops before
                // any victim lock is taken — holding both would deadlock.
                let own = deques[w].lock().unwrap().pop_front();
                let job = own.or_else(|| {
                    (1..workers)
                        .map(|d| (w + d) % workers)
                        .find_map(|v| deques[v].lock().unwrap().pop_back())
                });
                match job {
                    Some((i, item)) => {
                        *slots[i].lock().unwrap() = Some(f(i, item));
                        remaining.fetch_sub(1, Ordering::Relaxed);
                    }
                    None => {
                        if remaining.load(Ordering::Relaxed) == 0 {
                            return;
                        }
                        // All deques momentarily empty but work is still in
                        // flight elsewhere; yield rather than spin hot.
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("pool lost a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 7] {
            let items: Vec<u64> = (0..100).collect();
            let out = run_ordered(jobs, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let want: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, want, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_batches_work() {
        let out: Vec<u64> = run_ordered(4, Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
        let out = run_ordered(4, vec![9u64], |_, x| x + 1);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One huge item up front; with 4 workers the rest must finish on
        // other threads (indirectly verified: total is right and nothing
        // deadlocks even though deque 0 holds the slow job).
        let items: Vec<u64> = (0..32).collect();
        let out = run_ordered(4, items, |_, x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out.iter().sum::<u64>(), (0..32).sum());
    }
}
