//! Command-line simulator driver: run one workload on one system and
//! print the full statistics report.
//!
//! ```text
//! lockiller_sim --system LockillerTM --workload vacation+ --threads 8 \
//!               [--scale tiny|small|full] [--cache typical|small|large] \
//!               [--retries N] [--seed N] [--backend threads|vm] [--timeline]
//! ```
//!
//! `--backend vm` runs the workload on the in-process guest VM (only
//! workloads whose kernels compile to `guestvm` bytecode); results are
//! bit-identical to the default OS-thread backend.

use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use lockiller::trace::render_timeline;
use sim_core::stats::{AbortCause, Phase};
use stamp::{Scale, Workload, WorkloadKind};

fn usage() -> ! {
    eprintln!(
        "usage: lockiller_sim --system <name> --workload <name> [--threads N]\n\
         \x20                  [--scale tiny|small|full] [--cache typical|small|large]\n\
         \x20                  [--retries N] [--seed N] [--backend threads|vm] [--timeline]\n\
         systems:   {}\n\
         workloads: {}",
        SystemKind::ALL.map(lockiller::SystemKind::name).join(" "),
        WorkloadKind::ALL.map(stamp::WorkloadKind::name).join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut system = SystemKind::LockillerTm;
    let mut workload = WorkloadKind::VacationHigh;
    let mut threads = 4usize;
    let mut scale = Scale::Small;
    let mut cache = "typical".to_string();
    let mut retries: Option<u32> = None;
    let mut seed = 0xC0FFEEu64;
    let mut backend = lockiller::Backend::Threads;
    let mut timeline = false;

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--system" => {
                let v = take(&mut i);
                system = SystemKind::from_name(&v).unwrap_or_else(|| usage());
            }
            "--workload" => {
                let v = take(&mut i);
                workload = WorkloadKind::from_name(&v).unwrap_or_else(|| usage());
            }
            "--threads" => threads = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scale" => {
                scale = match take(&mut i).as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage(),
                }
            }
            "--cache" => cache = take(&mut i),
            "--retries" => retries = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--seed" => seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--backend" => {
                let v = take(&mut i);
                backend = lockiller::Backend::from_name(&v).unwrap_or_else(|| usage());
            }
            "--timeline" => timeline = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }

    let cfg = match cache.as_str() {
        "typical" => sim_core::config::SystemConfig::table1(),
        "small" => sim_core::config::SystemConfig::small_cache(),
        "large" => sim_core::config::SystemConfig::large_cache(),
        _ => usage(),
    };

    let mut prog = Workload::with_scale(workload, threads, scale);
    let mut runner = Runner::new(system)
        .threads(threads)
        .config(cfg)
        .seed(seed)
        .backend(backend);
    if let Some(r) = retries {
        runner = runner.retries(r);
    }

    println!(
        "{} / {} / {threads} threads / {cache} cache / scale {scale:?} / {} backend\n",
        system.name(),
        workload.name(),
        backend.name()
    );
    let (stats, trace) = if timeline {
        let mut out = runner.tracing().run(&mut prog);
        let trace = out.take_trace_events();
        (out.stats, trace)
    } else {
        (runner.run(&mut prog).stats, Vec::new())
    };

    println!("cycles                {}", stats.cycles);
    println!(
        "speculative commits   {} ({} after STL switch)",
        stats.commits, stats.stl_commits
    );
    println!("lock-path sections    {}", stats.lock_commits);
    println!("commit rate           {:.1}%", stats.commit_rate() * 100.0);
    println!("aborts                {}", stats.total_aborts());
    for c in AbortCause::ALL {
        if stats.abort_count(c) > 0 {
            println!("  {:<10} {}", c.name(), stats.abort_count(c));
        }
    }
    println!(
        "recovery rejects      {} (+{} by signature)",
        stats.rejects, stats.sig_rejects
    );
    println!("wake-ups              {}", stats.wakeups);
    println!("fallbacks             {}", stats.fallbacks);
    println!(
        "switches              {} granted / {} denied",
        stats.switches_granted, stats.switches_denied
    );
    println!(
        "NoC                   {} messages, {} hops",
        stats.messages, stats.hops
    );
    println!(
        "avg committed tx      {:.0} cycles, {:.1} read lines, {:.1} written lines",
        stats.avg_tx_len(),
        stats.avg_read_set(),
        stats.avg_write_set()
    );
    let total: u64 = Phase::ALL.iter().map(|p| stats.phase(*p)).sum();
    if total > 0 {
        println!("time breakdown:");
        for p in Phase::ALL {
            let frac = stats.phase(p) as f64 / total as f64;
            if frac > 0.0005 {
                println!("  {:<10} {:>5.1}%", p.name(), frac * 100.0);
            }
        }
    }
    if timeline {
        println!("\n{}", render_timeline(&trace, threads, 110));
    }
}
