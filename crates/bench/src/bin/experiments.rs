//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--verbose] [--csv FILE] [table1|table2|fig1|fig7..fig13|headline|ablation|characterize|all]
//! ```
//!
//! `--quick` runs the reduced thread sweep {2, 8, 32} at Small workload
//! scale; the default runs {2,4,8,16,32} at Full scale (the numbers
//! recorded in EXPERIMENTS.md).

use lockiller_bench::experiments as ex;
use lockiller_bench::lab::Lab;
use stamp::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--verbose");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let what: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(std::string::String::as_str)
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };

    let scale = if quick { Scale::Small } else { Scale::Full };
    let mut lab = Lab::new(scale);
    lab.verbose = verbose;

    for w in &what {
        match *w {
            "table1" => {
                ex::table1();
            }
            "table2" => {
                ex::table2();
            }
            "fig1" => {
                ex::fig1(&mut lab);
            }
            "fig7" => {
                ex::fig7(&mut lab, quick);
            }
            "fig8" => {
                ex::fig8(&mut lab, quick);
            }
            "fig9" => {
                ex::fig9(&mut lab, quick);
            }
            "fig10" => {
                ex::fig10(&mut lab);
            }
            "fig11" => {
                ex::fig11(&mut lab);
            }
            "fig12" => {
                ex::fig12(&mut lab, quick);
            }
            "fig13" => {
                ex::fig13(&mut lab, quick);
            }
            "headline" => {
                ex::headline(&mut lab, quick);
            }
            "ablation" => {
                lockiller_bench::ablation::run_all(scale);
            }
            "characterize" => {
                ex::characterize(&mut lab);
            }
            "plots" => {
                ex::plots(&mut lab, quick, std::path::Path::new("figures")).expect("write plots");
            }
            "all" => {
                ex::table1();
                ex::table2();
                ex::fig1(&mut lab);
                ex::fig7(&mut lab, quick);
                ex::fig8(&mut lab, quick);
                ex::fig9(&mut lab, quick);
                ex::fig10(&mut lab);
                ex::fig11(&mut lab);
                ex::fig12(&mut lab, quick);
                ex::fig13(&mut lab, quick);
                ex::headline(&mut lab, quick);
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, lab.dump_csv()).expect("write csv");
        eprintln!("[csv written to {path}]");
    }
    eprintln!("[{} simulation points run]", lab.runs_cached());
}
