//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--verbose] [--jobs N] [--no-cache]
//!             [--cache FILE] [--csv FILE] [--bench-json FILE]
//!             [--backend threads|vm] [--no-profile]
//!             [table1|table2|fig1|fig7..fig13|headline|ablation|characterize|forensics|verify|engine|all]
//! ```
//!
//! `--quick` runs the reduced thread sweep {2, 8, 32} at Small workload
//! scale; the default runs {2,4,8,16,32} at Full scale (the numbers
//! recorded in EXPERIMENTS.md).
//!
//! `--backend vm` runs the `engine` battery's VM-capable points on the
//! in-process guest VM instead of the OS-thread rendezvous; simulated
//! results are bit-identical, only host metrics move (the CI
//! `guestvm-smoke` job relies on this).
//!
//! `--no-profile` drops the `tmprof` engine scope profiler from the
//! `engine` battery: points lose their `host.phases` attribution block
//! but simulate identically — another leaves-must-not-move axis the CI
//! `engine-perf-smoke` gate checks at 0% tolerance.
//!
//! `--jobs N` (or `LOCKILLER_JOBS=N`) fans simulation points across N
//! host threads; results are byte-identical for every N. Completed
//! points persist in a run cache (default `target/tmlab/cache.jsonl`,
//! override with `--cache FILE`, disable with `--no-cache`), so repeated
//! invocations only simulate what changed. `--bench-json FILE` writes
//! the host-side accounting (per-point wall-clock, cache hit rate,
//! parallel efficiency) as JSON; default `BENCH_lab.json`.

use lockiller_bench::experiments as ex;
use lockiller_bench::lab::Lab;
use stamp::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--verbose");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let profile = !args.iter().any(|a| a == "--no-profile");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let csv_path = flag_value("--csv");
    let cache_path = flag_value("--cache").unwrap_or_else(|| "target/tmlab/cache.jsonl".into());
    let bench_json = flag_value("--bench-json").unwrap_or_else(|| "BENCH_lab.json".into());
    let jobs = flag_value("--jobs")
        .or_else(|| std::env::var("LOCKILLER_JOBS").ok())
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let backend = match flag_value("--backend") {
        None => lockiller::Backend::Threads,
        Some(v) => lockiller::Backend::from_name(&v).unwrap_or_else(|| {
            eprintln!("unknown backend {v:?} (threads|vm)");
            std::process::exit(2);
        }),
    };

    let value_flags = ["--csv", "--cache", "--bench-json", "--jobs", "--backend"];
    let mut skip_next = false;
    let what: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if value_flags.contains(&a.as_str()) {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(std::string::String::as_str)
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };

    let scale = if quick { Scale::Small } else { Scale::Full };
    let mut lab = Lab::new(scale);
    lab.verbose = verbose;
    lab.jobs(jobs);
    if !no_cache {
        match lab.with_cache(std::path::Path::new(&cache_path)) {
            Ok(l) => {
                if let Some(n) = l.disk_cached() {
                    eprintln!("[run cache: {cache_path}, {n} points on disk]");
                }
            }
            Err(e) => eprintln!("[run cache disabled: {cache_path}: {e}]"),
        }
    }

    for w in &what {
        match *w {
            "table1" => {
                ex::table1();
            }
            "table2" => {
                ex::table2();
            }
            "fig1" => {
                ex::fig1(&mut lab);
            }
            "fig7" => {
                ex::fig7(&mut lab, quick);
            }
            "fig8" => {
                ex::fig8(&mut lab, quick);
            }
            "fig9" => {
                ex::fig9(&mut lab, quick);
            }
            "fig10" => {
                ex::fig10(&mut lab);
            }
            "fig11" => {
                ex::fig11(&mut lab);
            }
            "fig12" => {
                ex::fig12(&mut lab, quick);
            }
            "fig13" => {
                ex::fig13(&mut lab, quick);
            }
            "headline" => {
                ex::headline(&mut lab, quick);
            }
            "ablation" => {
                lockiller_bench::ablation::run_all(scale);
            }
            "characterize" => {
                ex::characterize(&mut lab);
            }
            "plots" => {
                ex::plots(&mut lab, quick, std::path::Path::new("figures")).expect("write plots");
            }
            "forensics" => {
                ex::forensics(quick, std::path::Path::new("BENCH_forensics.json"))
                    .expect("write forensics json");
            }
            "verify" => {
                lockiller_bench::verify::run(
                    quick,
                    jobs,
                    std::path::Path::new("BENCH_verify.json"),
                )
                .expect("write verify json");
            }
            "engine" => {
                lockiller_bench::engine::run(
                    &mut lab,
                    quick,
                    backend,
                    profile,
                    std::path::Path::new("BENCH_engine.json"),
                )
                .expect("write engine json");
            }
            "all" => {
                ex::table1();
                ex::table2();
                ex::fig1(&mut lab);
                ex::fig7(&mut lab, quick);
                ex::fig8(&mut lab, quick);
                ex::fig9(&mut lab, quick);
                ex::fig10(&mut lab);
                ex::fig11(&mut lab);
                ex::fig12(&mut lab, quick);
                ex::fig13(&mut lab, quick);
                ex::headline(&mut lab, quick);
                ex::forensics(quick, std::path::Path::new("BENCH_forensics.json"))
                    .expect("write forensics json");
                lockiller_bench::verify::run(
                    quick,
                    jobs,
                    std::path::Path::new("BENCH_verify.json"),
                )
                .expect("write verify json");
                lockiller_bench::engine::run(
                    &mut lab,
                    quick,
                    backend,
                    profile,
                    std::path::Path::new("BENCH_engine.json"),
                )
                .expect("write engine json");
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, lab.dump_csv()).expect("write csv");
        eprintln!("[csv written to {path}]");
    }
    let report = lab.report();
    std::fs::write(&bench_json, report.to_json()).expect("write bench json");
    eprintln!(
        "[{} simulation points run ({} unique, {} cache hits, {} simulated) \
         in {:.1}s with {} jobs; hit rate {:.0}%, parallel efficiency {:.0}%; \
         report in {bench_json}]",
        lab.runs_cached(),
        report.unique,
        report.cache_hits,
        report.simulated,
        report.wall_ms / 1e3,
        report.jobs,
        report.cache_hit_rate() * 100.0,
        report.parallel_efficiency() * 100.0,
    );
}
