//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - **retry budget** (`TME_MAX_RETRIES` in Listing 1): how many HTM
//!   attempts before the fallback path;
//! - **priority metric**: insts-based (the paper) vs progression-based
//!   (LosaTM) vs FCFS vs plain requester-win;
//! - **reject action**: self-abort vs timed retry vs wake-up;
//! - **signature size**: Bloom false positives vs spurious rejects.

use crate::table::{ratio, render};
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use stamp::{Scale, Workload, WorkloadKind};

fn cycles_with(
    kind: SystemKind,
    w: WorkloadKind,
    threads: usize,
    scale: Scale,
    tweak: impl FnOnce(&mut SystemConfig),
    retries: Option<u32>,
) -> u64 {
    let mut cfg = SystemConfig::table1();
    tweak(&mut cfg);
    let mut prog = Workload::with_scale(w, threads, scale);
    let mut r = Runner::new(kind).threads(threads).config(cfg);
    if let Some(n) = retries {
        r = r.retries(n);
    }
    r.run(&mut prog).stats.cycles
}

/// Retry-budget sweep on a contended workload: too few retries serialize
/// early; too many burn cycles in friendly-fire before falling back.
pub fn ablation_retries(scale: Scale) -> String {
    let w = WorkloadKind::VacationHigh;
    let threads = 8;
    let mut rows = Vec::new();
    for budget in [1u32, 2, 4, 8, 16, 32] {
        let base = cycles_with(
            SystemKind::Baseline,
            w,
            threads,
            scale,
            |_| {},
            Some(budget),
        );
        let full = cycles_with(
            SystemKind::LockillerTm,
            w,
            threads,
            scale,
            |_| {},
            Some(budget),
        );
        rows.push(vec![
            budget.to_string(),
            base.to_string(),
            full.to_string(),
            ratio(base as f64 / full as f64),
        ]);
    }
    let out = format!(
        "ABLATION: HTM retry budget ({} @{threads} threads)\n{}",
        w.name(),
        render(
            &["retries", "Baseline cycles", "LockillerTM cycles", "gain"],
            &rows
        )
    );
    println!("{out}");
    out
}

/// Priority-metric ablation: the recovery framework with each arbitration
/// policy (Table II's RAI/RRI/RWI vs RWL vs LosaTM's progression).
pub fn ablation_priority(scale: Scale) -> String {
    let systems = [
        ("requester-win", SystemKind::Baseline),
        ("FCFS + wakeup (RWL)", SystemKind::LockillerRwl),
        ("progression (LosaTM)", SystemKind::LosaTmSafu),
        ("insts-based (RWI)", SystemKind::LockillerRwi),
    ];
    let workloads = [
        WorkloadKind::KmeansHigh,
        WorkloadKind::Intruder,
        WorkloadKind::VacationHigh,
    ];
    let mut rows = Vec::new();
    for (label, sys) in systems {
        let mut row = vec![label.to_string()];
        for w in workloads {
            let c = cycles_with(sys, w, 8, scale, |_| {}, None);
            row.push(c.to_string());
        }
        rows.push(row);
    }
    let out = format!(
        "ABLATION: priority metric (cycles @8 threads; lower is better)\n{}",
        render(&["policy", "kmeans+", "intruder", "vacation+"], &rows)
    );
    println!("{out}");
    out
}

/// Reject-action ablation across the three LockillerTM variants.
pub fn ablation_reject_action(scale: Scale) -> String {
    let systems = [
        ("SelfAbort (RAI)", SystemKind::LockillerRai),
        ("RetryLater (RRI)", SystemKind::LockillerRri),
        ("WaitWakeup (RWI)", SystemKind::LockillerRwi),
    ];
    let mut rows = Vec::new();
    for (label, sys) in systems {
        let mut row = vec![label.to_string()];
        for w in [WorkloadKind::KmeansHigh, WorkloadKind::VacationHigh] {
            let mut prog = Workload::with_scale(w, 8, scale);
            let s = Runner::new(sys).threads(8).run(&mut prog).stats;
            row.push(format!("{} ({:.0}%)", s.cycles, s.commit_rate() * 100.0));
        }
        rows.push(row);
    }
    let out = format!(
        "ABLATION: reject action (cycles + commit rate @8 threads)\n{}",
        render(&["action", "kmeans+", "vacation+"], &rows)
    );
    println!("{out}");
    out
}

/// Signature-size sweep: smaller Bloom signatures raise false-positive
/// rejects during lock-transaction overflow episodes.
pub fn ablation_signature(scale: Scale) -> String {
    let mut rows = Vec::new();
    for bits in [64usize, 128, 512, 1024, 4096] {
        let mut cfg = SystemConfig::small_cache(); // overflow-heavy regime
        cfg.mem.signature_bits = bits;
        let mut prog = Workload::with_scale(WorkloadKind::Labyrinth, 8, scale);
        let s = Runner::new(SystemKind::LockillerTm)
            .threads(8)
            .config(cfg)
            .run(&mut prog)
            .stats;
        rows.push(vec![
            bits.to_string(),
            s.cycles.to_string(),
            s.sig_rejects.to_string(),
            s.rejects.to_string(),
        ]);
    }
    let out = format!(
        "ABLATION: overflow-signature size (labyrinth, small cache, 8 threads)\n{}",
        render(
            &["sig bits", "cycles", "sig rejects", "nack rejects"],
            &rows
        )
    );
    println!("{out}");
    out
}

pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&ablation_retries(scale));
    out.push('\n');
    out.push_str(&ablation_priority(scale));
    out.push('\n');
    out.push_str(&ablation_reject_action(scale));
    out.push('\n');
    out.push_str(&ablation_signature(scale));
    out
}
