//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (§IV) on the simulated 32-core CMP.
//!
//! The `experiments` binary drives [`experiments`]; each figure function
//! returns structured rows and also renders the same series the paper
//! plots. Criterion benches (one per figure, under `benches/`) run
//! scaled-down instances of the same code paths.

pub mod ablation;
pub mod engine;
pub mod experiments;
pub mod lab;
pub mod svgplot;
pub mod table;
pub mod tmlab;
pub mod verify;

pub use experiments::*;
pub use lab::{ConfigPoint, Lab, Point};
pub use tmlab::{BatchReport, Executor, RunCache};
