//! Engine throughput and latency battery.
//!
//! `experiments engine` sweeps the STAMP ladder on the simulated CMP and
//! writes `BENCH_engine.json`, the input to the `tmtrace perf-diff` CI
//! gate. Every point carries two blocks:
//!
//! - `deterministic`: simulated cycles, commit/abort counters, and the
//!   per-class latency percentiles from [`sim_core::latency`]. These are
//!   pure functions of (system, workload, threads, config, seed) and
//!   must be byte-identical on every machine — the gate runs them at 0%
//!   tolerance by default.
//! - `host`: wall-clock, simulated-cycles/sec, commits/sec, host-ns
//!   per simulated cycle, and (unless `--no-profile`) a `phases` object
//!   of per-phase self-time shares from the engine's `tmprof` scope
//!   profile (`sim_core::prof`) — shares sum to 1.0, so `tmtrace
//!   perf-diff --top-phases` can attribute a host regression to the
//!   phase that moved. Machine-dependent; `perf-diff` reports them
//!   without gating unless `--host-tolerance` is given.
//!
//! The battery re-runs its first point and asserts the latency
//! histograms come back byte-identical (the determinism acceptance
//! check), then pushes the whole suite through the shared [`Lab`]'s
//! parallel executor and asserts the batched stats agree with the
//! direct runs — which also makes `BENCH_lab.json` record real traffic
//! on every `experiments engine` invocation.
//!
//! **Backend axis.** Every `host` block carries a `backend` field
//! (`"threads"` or `"vm"`, see [`lockiller::Backend`]). The battery
//! always appends a backend-comparison section: each VM-capable ladder
//! point plus the `intruder-flow` kernel program runs on *both* guest
//! execution cores, the deterministic outputs are asserted byte-equal
//! (a third, wall-clock-facing differential check), and the VM rows
//! record `speedup_vs_threads` — host sim-throughput of the in-process
//! VM over the OS-thread rendezvous. `experiments engine --backend vm`
//! additionally runs the main suite's capable points on the VM; the
//! deterministic leaves of `BENCH_engine.json` must not move, which is
//! exactly what the CI `perf-diff` gate checks at 0% tolerance.

use crate::lab::{ConfigPoint, Lab, Point};
use lockiller::program::Program;
use lockiller::system::SystemKind;
use lockiller::{Backend, Runner};
use sim_core::latency::{LatencyHist, TxnClass};
use sim_core::prof::ProfReport;
use sim_core::stats::RunStats;
use stamp::{Scale, Workload, WorkloadKind};
use std::io::Write;
use std::path::Path;

/// Must match `Lab`'s default seed: the executor cross-check below
/// compares a direct run against the lab's batched run of the same
/// point, and they only agree if they were seeded identically.
const SEED: u64 = 0xC0FFEE;

/// One thread count keeps the battery cheap; 8 threads is past the
/// contention knee on every ladder workload at Small/Full scale.
const THREADS: usize = 8;

fn suite(quick: bool) -> Vec<Point> {
    let workloads: Vec<WorkloadKind> = if quick {
        vec![
            WorkloadKind::Ssca2,
            WorkloadKind::KmeansLow,
            WorkloadKind::Intruder,
        ]
    } else {
        WorkloadKind::ALL.to_vec()
    };
    let systems: &[SystemKind] = if quick {
        &[SystemKind::LockillerTm]
    } else {
        &[SystemKind::Baseline, SystemKind::LockillerTm]
    };
    let mut points = Vec::new();
    for &system in systems {
        for &workload in &workloads {
            points.push(Point {
                system,
                workload,
                threads: THREADS,
                cfg: ConfigPoint::Typical,
            });
        }
    }
    points
}

/// Ladder workloads whose kernels compile to `guestvm` bytecode and can
/// therefore run on either execution backend.
fn vm_capable(w: WorkloadKind) -> bool {
    matches!(w, WorkloadKind::KmeansHigh | WorkloadKind::KmeansLow)
}

/// The same call the lab executor makes for a cache miss, run inline so
/// the point's wall-clock is attributable to exactly one simulation.
/// With `profile` the engine's `tmprof` scope profiler rides along; the
/// stats are byte-identical either way (the determinism self-check in
/// [`run`] re-runs the first point unprofiled and asserts exactly that).
fn run_point(
    p: &Point,
    scale: Scale,
    backend: Backend,
    profile: bool,
) -> (RunStats, Option<ProfReport>) {
    let mut prog = Workload::with_scale(p.workload, p.threads, scale);
    let mut runner = Runner::new(p.system)
        .threads(p.threads)
        .config(p.cfg.config())
        .seed(SEED)
        .backend(backend);
    if profile {
        runner = runner.profile();
    }
    let mut out = runner.run(&mut prog);
    let prof = out.host_prof.take();
    (out.stats, prof)
}

/// Run any program at a ladder point's settings under `backend`,
/// returning (stats, wall-clock ms, host profile).
fn timed_run<P: Program>(
    p: &Point,
    prog: &mut P,
    backend: Backend,
    profile: bool,
) -> (RunStats, f64, Option<ProfReport>) {
    let t0 = std::time::Instant::now();
    let mut runner = Runner::new(p.system)
        .threads(p.threads)
        .config(p.cfg.config())
        .seed(SEED)
        .backend(backend);
    if profile {
        runner = runner.profile();
    }
    let mut out = runner.run(prog);
    let prof = out.host_prof.take();
    (out.stats, t0.elapsed().as_secs_f64() * 1e3, prof)
}

fn hist_json(h: &LatencyHist) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
        h.count(),
        h.p50(),
        h.p99(),
        h.p999(),
        h.max()
    )
}

/// The `"phases"` object of a point's host block: per-phase self-time
/// shares of the engine's scope profile, keyed by full scope path.
/// Phase paths contain only `[a-z_;]`, so no JSON escaping is needed.
/// Emitted at 4 decimals; with ~a dozen phases the rounding error keeps
/// the sum within 1.0 ± 0.001, inside the gate's ± 0.01 bar.
fn phases_json(report: &ProfReport) -> String {
    let mut out = String::from("{");
    for (i, (path, share)) in tmobs::phase_shares(report).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{path}\":{share:.4}"));
    }
    out.push('}');
    out
}

/// Machine-dependent inputs to a point's `host` block, as opposed to
/// the deterministic [`RunStats`] they ride alongside.
struct HostSide<'a> {
    wall_ms: f64,
    backend: Backend,
    speedup_vs_threads: Option<f64>,
    prof: Option<&'a ProfReport>,
}

fn point_json(
    system: &str,
    workload: &str,
    threads: usize,
    stats: &RunStats,
    host: HostSide<'_>,
) -> String {
    let mut latency = String::from("{");
    for c in TxnClass::ALL {
        latency.push_str(&format!(
            "\"{}\":{},",
            c.name(),
            hist_json(stats.latency.class(c))
        ));
    }
    latency.push_str(&format!(
        "\"park\":{},\"fallback_hold\":{},\"first_abort\":{}}}",
        hist_json(&stats.latency.park),
        hist_json(&stats.latency.fallback_hold),
        hist_json(&stats.latency.first_abort)
    ));
    let wall_ms = host.wall_ms;
    let wall_s = wall_ms / 1e3;
    let per_sec = |n: u64| if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 };
    let ns_per_cycle = if stats.cycles == 0 {
        0.0
    } else {
        wall_ms * 1e6 / stats.cycles as f64
    };
    // Host block: machine-dependent, never gated at 0%. `backend` is
    // identity metadata (a string, invisible to the diff flattener);
    // `speedup_vs_threads` only appears on VM comparison rows.
    let speedup = host
        .speedup_vs_threads
        .map(|s| format!(",\"speedup_vs_threads\":{s:.2}"))
        .unwrap_or_default();
    let phases = host
        .prof
        .map(|r| format!(",\"phases\":{}", phases_json(r)))
        .unwrap_or_default();
    format!(
        "  {{\"system\":\"{system}\",\"workload\":\"{workload}\",\"threads\":{threads},\
         \"deterministic\":{{\"cycles\":{},\"commits\":{},\"stl_commits\":{},\
         \"lock_commits\":{},\"aborts\":{},\"events_processed\":{},\
         \"event_queue_peak\":{},\"latency\":{latency}}},\
         \"host\":{{\"backend\":\"{}\",\"wall_ms\":{wall_ms:.3},\
         \"sim_cycles_per_sec\":{:.1},\
         \"commits_per_sec\":{:.1},\"ns_per_cycle\":{ns_per_cycle:.3}{speedup}{phases}}}}}",
        stats.cycles,
        stats.commits,
        stats.stl_commits,
        stats.lock_commits,
        stats.total_aborts(),
        stats.events_processed,
        stats.event_queue_peak,
        host.backend.name(),
        per_sec(stats.cycles),
        per_sec(stats.commits),
    )
}

/// Run the battery and write `BENCH_engine.json`. `backend` selects the
/// guest execution core for the main suite; points whose workload does
/// not compile to bytecode always run on the thread backend, so
/// `--backend vm` changes host metrics only — the deterministic leaves
/// must be identical, which the CI `perf-diff` gate enforces. `profile`
/// (the default; `--no-profile` clears it) attaches the engine's scope
/// profiler to every point and records per-phase self-time shares in
/// each `host` block; because the profiler only reads the host clock,
/// the deterministic leaves again must not move — the determinism
/// self-check below re-runs the first point *unprofiled* and asserts
/// byte-identical stats. Panics if the engine loses determinism (latency
/// histograms differ between identical runs, the lab executor disagrees
/// with a direct run, or the two backends diverge).
pub fn run(
    lab: &mut Lab,
    quick: bool,
    backend: Backend,
    profile: bool,
    path: &Path,
) -> std::io::Result<()> {
    let points = suite(quick);
    let mut rows = Vec::new();
    let mut direct: Vec<RunStats> = Vec::new();
    for p in &points {
        let be = if vm_capable(p.workload) {
            backend
        } else {
            Backend::Threads
        };
        let t0 = std::time::Instant::now();
        let (stats, prof) = run_point(p, lab.scale(), be, profile);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(stats.cycles > 0, "{p:?}: zero-cycle run");
        eprintln!(
            "[engine {} / {} / {} threads ({}): {} cycles, {} commits, {:.0} ms]",
            p.system.name(),
            p.workload.name(),
            p.threads,
            be.name(),
            stats.cycles,
            stats.commits,
            wall_ms
        );
        rows.push(point_json(
            p.system.name(),
            p.workload.name(),
            p.threads,
            &stats,
            HostSide {
                wall_ms,
                backend: be,
                speedup_vs_threads: None,
                prof: prof.as_ref(),
            },
        ));
        direct.push(stats);
    }

    // Backend comparison: every VM-capable ladder point plus the
    // VM-native intruder-flow kernel runs on both guest execution
    // cores. Deterministic outputs must match byte for byte; the VM
    // rows record the host-side speedup of dropping the OS-thread
    // rendezvous (2 context switches per guest op).
    let mut best_speedup: (f64, String) = (0.0, String::new());
    {
        fn compare<P: Program>(
            p: &Point,
            name: &str,
            mut mk: impl FnMut() -> P,
            profile: bool,
            rows: &mut Vec<String>,
            best_speedup: &mut (f64, String),
        ) {
            let (st, wall_t, prof_t) = timed_run(p, &mut mk(), Backend::Threads, profile);
            let (sv, wall_v, prof_v) = timed_run(p, &mut mk(), Backend::Vm, profile);
            assert_eq!(
                st.to_json(),
                sv.to_json(),
                "{}/{name}: VM backend diverged from the thread backend",
                p.system.name(),
            );
            let speedup = if wall_v > 0.0 { wall_t / wall_v } else { 0.0 };
            eprintln!(
                "[engine {} / {name} / {} threads: vm backend {:.2}x host speedup \
                 ({wall_t:.0} ms -> {wall_v:.0} ms)]",
                p.system.name(),
                p.threads,
                speedup,
            );
            if name == "intruder-flow" {
                rows.push(point_json(
                    p.system.name(),
                    name,
                    p.threads,
                    &st,
                    HostSide {
                        wall_ms: wall_t,
                        backend: Backend::Threads,
                        speedup_vs_threads: None,
                        prof: prof_t.as_ref(),
                    },
                ));
            }
            rows.push(point_json(
                p.system.name(),
                name,
                p.threads,
                &sv,
                HostSide {
                    wall_ms: wall_v,
                    backend: Backend::Vm,
                    speedup_vs_threads: Some(speedup),
                    prof: prof_v.as_ref(),
                },
            ));
            if speedup > best_speedup.0 {
                *best_speedup = (speedup, format!("{}/{name}", p.system.name()));
            }
        }
        let scale = lab.scale();
        for p in &points {
            if vm_capable(p.workload) {
                let (w, t) = (p.workload, p.threads);
                compare(
                    p,
                    w.name(),
                    || Workload::with_scale(w, t, scale),
                    profile,
                    &mut rows,
                    &mut best_speedup,
                );
            }
        }
        // The VM-native flow-reassembly kernel is not a ladder workload
        // (the ladder's intruder uses host-side tmlib containers); it
        // joins the battery here with both backends reported.
        let pf = Point {
            system: SystemKind::LockillerTm,
            workload: WorkloadKind::Intruder, // settings only; prog below
            threads: THREADS,
            cfg: ConfigPoint::Typical,
        };
        compare(
            &pf,
            "intruder-flow",
            || stamp::vm::IntruderFlow::new(scale, THREADS),
            profile,
            &mut rows,
            &mut best_speedup,
        );
    }
    eprintln!(
        "[engine best vm-vs-threads host speedup: {:.2}x on {}]",
        best_speedup.0, best_speedup.1
    );

    // Determinism self-check: an identically-seeded re-run of the first
    // point must reproduce the latency histograms byte for byte. The
    // re-run is always *unprofiled*, so when the battery profiles (the
    // default) this is also the zero-cost check: attaching the scope
    // profiler must not move a single simulated bit.
    let (p0, s0) = (&points[0], &direct[0]);
    let (again, _) = run_point(p0, lab.scale(), Backend::Threads, false);
    assert_eq!(
        s0.latency.to_json(),
        again.latency.to_json(),
        "{p0:?}: latency histograms are not deterministic"
    );
    assert_eq!(
        s0.to_json(),
        again.to_json(),
        "{p0:?}: run statistics are not deterministic"
    );

    // Cross-check the lab's (possibly parallel, possibly cached)
    // executor against the direct runs, point for point. This also puts
    // real traffic into the lab's batch report → BENCH_lab.json.
    let batched = lab.run_many(&points);
    for (p, (d, b)) in points.iter().zip(direct.iter().zip(&batched)) {
        assert_eq!(
            d.to_json(),
            b.to_json(),
            "{p:?}: lab executor diverged from a direct run"
        );
    }

    // Schema 2: points carry `host.phases` (absent under --no-profile).
    // `tmtrace perf-diff` refuses to compare across schema versions, so
    // bumping this forces a deliberate re-bless of ci/engine-baseline.json.
    // `profiled` is a string so the diff flattener treats it as identity
    // metadata, like `host.backend` — a profiled run gated against an
    // unprofiled baseline must differ only in (report-only) host leaves.
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{{\"schema\":2,\"quick\":{},\"threads\":{},\"profiled\":\"{}\",\
         \"determinism_checked\":true,\"points\":[\n{}\n]}}",
        quick,
        THREADS,
        profile,
        rows.join(",\n")
    )?;
    eprintln!("[engine perf report in {}]", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_battery_writes_gateable_json() {
        let dir = std::env::temp_dir().join("lockiller-engine-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_engine.json");
        // Tiny scale keeps the test cheap; the binary uses Small/Full.
        let mut lab = Lab::new(Scale::Tiny);
        run(&mut lab, true, Backend::Threads, true, &path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let v = tmobs::json::parse(&doc).expect("BENCH_engine.json parses");
        assert_eq!(
            v.get("schema").and_then(tmobs::json::Json::as_f64),
            Some(2.0),
            "host.phases rows are a schema-2 artifact"
        );
        let pts = v.get("points").and_then(tmobs::json::Json::as_arr).unwrap();
        // 3 suite points + kmeans vm twin + intruder-flow on both backends.
        assert_eq!(pts.len(), 6, "quick suite is 6 points");
        let mut vm_rows = 0;
        for p in pts {
            let host = p.get("host").unwrap();
            let backend = host
                .get("backend")
                .and_then(tmobs::json::Json::as_str)
                .expect("host.backend present");
            if backend == "vm" {
                vm_rows += 1;
                assert!(
                    host.get("speedup_vs_threads")
                        .and_then(tmobs::json::Json::as_f64)
                        .is_some(),
                    "vm rows carry speedup_vs_threads"
                );
            }
        }
        assert_eq!(vm_rows, 2, "kmeans twin + intruder-flow vm rows");
        for p in pts {
            let det = p.get("deterministic").unwrap();
            assert!(
                det.get("cycles")
                    .and_then(tmobs::json::Json::as_f64)
                    .unwrap()
                    > 0.0
            );
            let lat = det.get("latency").unwrap();
            for class in ["htm_commit", "stl_commit", "lock_commit", "park"] {
                let h = lat.get(class).unwrap_or_else(|| panic!("missing {class}"));
                assert!(h.get("p99").and_then(tmobs::json::Json::as_f64).is_some());
            }
            let host = p.get("host").unwrap();
            assert!(
                host.get("sim_cycles_per_sec")
                    .and_then(tmobs::json::Json::as_f64)
                    .unwrap()
                    > 0.0
            );
            // Every profiled point attributes its host time to engine
            // phases, and self-time shares partition the total.
            let phases = host.get("phases").expect("host.phases present");
            let shares: Vec<f64> = match phases {
                tmobs::json::Json::Obj(fields) => fields
                    .iter()
                    .map(|(_, v)| v.as_f64().expect("share is a number"))
                    .collect(),
                other => panic!("host.phases is not an object: {other:?}"),
            };
            assert!(!shares.is_empty(), "empty phase profile");
            let sum: f64 = shares.iter().sum();
            assert!(
                (sum - 1.0).abs() <= 0.01,
                "phase shares sum to {sum}, not 1.0"
            );
        }
        // The executor cross-check routed the suite through the lab.
        assert_eq!(lab.report().requested, 3);
        // Same battery on the VM backend *without* profiling:
        // deterministic leaves must move for neither the backend swap
        // (the CI guestvm-smoke gate runs this same comparison via
        // `tmtrace perf-diff` at 0% tolerance) nor the profiler opt-out
        // (the engine-perf-smoke gate's zero-cost check) — the profiled
        // and unprofiled batteries may differ only in host leaves.
        let vm_path = dir.join("BENCH_engine_vm.json");
        run(
            &mut Lab::new(Scale::Tiny),
            true,
            Backend::Vm,
            false,
            &vm_path,
        )
        .unwrap();
        let vm_doc = std::fs::read_to_string(&vm_path).unwrap();
        let deltas = tmobs::diff_docs(&doc, &vm_doc, 0.0).unwrap();
        let det: Vec<_> = deltas
            .iter()
            .filter(|d| !d.path.contains(".host."))
            .collect();
        assert!(
            det.is_empty(),
            "VM-backend battery moved deterministic leaves: {det:?}"
        );
        // The gate's own invariant: a document perf-diffed against
        // itself has no deterministic deltas.
        assert!(tmobs::diff_docs(&doc, &doc, 0.0).unwrap().is_empty());
    }
}
