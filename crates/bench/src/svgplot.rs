//! Minimal self-contained SVG chart writer for the figure harness: line
//! charts (speedup vs threads) and grouped bar charts (per-workload
//! speedups), following the repo's data-viz conventions:
//!
//! - categorical series colors come from a fixed, CVD-validated slot
//!   order and follow the *system identity*, never the series index of a
//!   particular chart;
//! - 2px lines with >=8px markers, thin bars with a 2px surface gap and
//!   rounded data ends (square at the baseline), recessive grid;
//! - every series set ships a legend plus direct end-labels (two of the
//!   palette slots sit below 3:1 contrast on the light surface, so
//!   visible labels are mandatory, not cosmetic);
//! - text wears ink tokens, never series color; native `<title>` tooltips
//!   on every mark.

use lockiller::system::SystemKind;

/// Chart surface and ink tokens (light mode).
const SURFACE: &str = "#fcfcfb";
const INK: &str = "#0b0b0b";
const INK_2: &str = "#52514e";
const GRID: &str = "#e7e6e2";

/// Fixed categorical slots (validated order; see DESIGN.md tooling note).
const SLOTS: [&str; 8] = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
];

/// Color follows the entity: each evaluated system owns a slot.
pub fn system_color(kind: SystemKind) -> &'static str {
    match kind {
        SystemKind::Cgl => INK_2,
        SystemKind::Baseline => SLOTS[0],
        SystemKind::LosaTmSafu => SLOTS[1],
        SystemKind::LockillerRai => SLOTS[6],
        SystemKind::LockillerRri => SLOTS[7],
        SystemKind::LockillerRwi => SLOTS[2],
        SystemKind::LockillerRwl => SLOTS[5],
        SystemKind::LockillerRwil => SLOTS[3],
        SystemKind::LockillerTm => SLOTS[4],
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// One series of a line chart.
pub struct Series {
    pub name: String,
    pub color: String,
    pub points: Vec<(f64, f64)>,
}

/// Render a multi-series line chart (e.g., speedup vs threads).
/// X values are treated as ordered categories (2, 4, 8, 16, 32).
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let (w, h) = (760.0, 420.0);
    let (ml, mr, mt, mb) = (56.0, 150.0, 44.0, 46.0);
    let pw = w - ml - mr;
    let ph = h - mt - mb;

    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    let ymax = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(1.0f64, f64::max)
        * 1.08;

    let xpos = |i: usize| ml + pw * (i as f64) / ((xs.len().max(2) - 1) as f64);
    let ypos = |v: f64| mt + ph * (1.0 - v / ymax);

    let mut out = String::new();
    out.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">
<rect width="{w}" height="{h}" fill="{SURFACE}"/>
<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{INK}">{}</text>
"#,
        esc(title)
    ));

    // Recessive horizontal grid + y ticks.
    let ticks = 4;
    for t in 0..=ticks {
        let v = ymax * t as f64 / ticks as f64;
        let y = ypos(v);
        out.push_str(&format!(
            r#"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/>
<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_2}" text-anchor="end">{v:.1}</text>
"#,
            ml + pw,
            ml - 8.0,
            y + 4.0
        ));
    }
    // X ticks.
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_2}" text-anchor="middle">{x}</text>
"#,
            xpos(i),
            mt + ph + 18.0
        ));
    }
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_2}" text-anchor="middle">{}</text>
<text x="14" y="{:.1}" font-size="11" fill="{INK_2}" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>
"#,
        ml + pw / 2.0,
        h - 8.0,
        esc(x_label),
        mt + ph / 2.0,
        mt + ph / 2.0,
        esc(y_label)
    ));

    // Direct end labels must not collide: compute nudged label y
    // positions (min 13px apart, preserving vertical order).
    let mut label_ys: Vec<(usize, f64)> = series
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.points.last().map(|p| (i, ypos(p.1))))
        .collect();
    label_ys.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for i in 1..label_ys.len() {
        if label_ys[i].1 - label_ys[i - 1].1 < 13.0 {
            label_ys[i].1 = label_ys[i - 1].1 + 13.0;
        }
    }
    let label_y = |idx: usize| -> f64 {
        label_ys
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, y)| *y)
            .unwrap_or(0.0)
    };

    // Series: 2px lines, 8px (r=4) markers, direct end labels.
    for (si, s) in series.iter().enumerate() {
        let pts: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{:.1},{:.1}", xpos(i), ypos(p.1)))
            .collect();
        out.push_str(&format!(
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2" stroke-linejoin="round"/>
"#,
            pts.join(" "),
            s.color
        ));
        for (i, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{}" stroke="{SURFACE}" stroke-width="2"><title>{}: {:.2}x at {} threads</title></circle>
"#,
                xpos(i),
                ypos(p.1),
                s.color,
                esc(&s.name),
                p.1,
                p.0
            ));
        }
        if s.points.last().is_some() {
            let ly = label_y(si);
            out.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{ly:.1}" r="4" fill="{}"/><text x="{:.1}" y="{:.1}" font-size="11" fill="{INK}">{}</text>
"#,
                ml + pw + 10.0,
                s.color,
                ml + pw + 18.0,
                ly + 4.0,
                esc(&s.name)
            ));
        }
    }
    out.push_str("</svg>\n");
    out
}

/// One group of a grouped-bar chart: a category (workload) with one bar
/// per series (system).
pub struct BarGroup {
    pub label: String,
    pub values: Vec<f64>,
}

/// Render a grouped bar chart with a reference line at y=1 (CGL parity).
pub fn grouped_bars(
    title: &str,
    y_label: &str,
    series_names: &[(String, String)], // (name, color)
    groups: &[BarGroup],
) -> String {
    let (w, h) = (860.0, 440.0);
    let (ml, mr, mt, mb) = (56.0, 24.0, 64.0, 56.0);
    let pw = w - ml - mr;
    let ph = h - mt - mb;
    let ymax = groups
        .iter()
        .flat_map(|g| g.values.iter().copied())
        .fold(1.0f64, f64::max)
        * 1.1;
    let ypos = |v: f64| mt + ph * (1.0 - v / ymax);

    let n_groups = groups.len().max(1) as f64;
    let n_series = series_names.len().max(1) as f64;
    let group_w = pw / n_groups;
    // Thin bars with a 2px surface gap between neighbours.
    let bar_w = ((group_w * 0.72 - 2.0 * (n_series - 1.0)) / n_series).clamp(3.0, 26.0);

    let mut out = String::new();
    out.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">
<rect width="{w}" height="{h}" fill="{SURFACE}"/>
<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{INK}">{}</text>
"#,
        esc(title)
    ));
    // Legend row (color chip + ink label).
    let mut lx = ml;
    for (name, color) in series_names {
        out.push_str(&format!(
            r#"<rect x="{lx:.1}" y="36" width="10" height="10" rx="2" fill="{color}"/><text x="{:.1}" y="45" font-size="11" fill="{INK_2}">{}</text>
"#,
            lx + 14.0,
            esc(name)
        ));
        lx += 16.0 + 7.0 * name.len() as f64 + 18.0;
    }
    // Grid + ticks.
    for t in 0..=4 {
        let v = ymax * t as f64 / 4.0;
        let y = ypos(v);
        out.push_str(&format!(
            r#"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/>
<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_2}" text-anchor="end">{v:.1}</text>
"#,
            ml + pw,
            ml - 8.0,
            y + 4.0
        ));
    }
    // CGL parity reference line at y = 1.
    let y1 = ypos(1.0);
    out.push_str(&format!(
        r#"<line x1="{ml}" y1="{y1:.1}" x2="{:.1}" y2="{y1:.1}" stroke="{INK_2}" stroke-width="1" stroke-dasharray="4 3"/>
<text x="{:.1}" y="{:.1}" font-size="10" fill="{INK_2}" text-anchor="end">CGL = 1.0</text>
"#,
        ml + pw,
        ml + pw,
        y1 - 5.0
    ));
    // Bars: rounded at the data end, square at the baseline.
    let base = mt + ph;
    for (gi, g) in groups.iter().enumerate() {
        let gx = ml + group_w * gi as f64 + group_w * 0.14;
        for (si, &v) in g.values.iter().enumerate() {
            let x = gx + (bar_w + 2.0) * si as f64;
            let y = ypos(v);
            let r = (bar_w / 2.0).min(4.0);
            let color = &series_names[si].1;
            let height = (base - y).max(0.0);
            if height <= r {
                out.push_str(&format!(
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{height:.1}" fill="{color}"><title>{}: {} {v:.2}x</title></rect>
"#,
                    esc(&g.label),
                    esc(&series_names[si].0)
                ));
            } else {
                out.push_str(&format!(
                    r#"<path d="M{x:.1} {base:.1} V{:.1} Q{x:.1} {y:.1} {:.1} {y:.1} H{:.1} Q{:.1} {y:.1} {:.1} {:.1} V{base:.1} Z" fill="{color}"><title>{}: {} {v:.2}x</title></path>
"#,
                    y + r,
                    x + r,
                    x + bar_w - r,
                    x + bar_w,
                    x + bar_w,
                    y + r,
                    esc(&g.label),
                    esc(&series_names[si].0)
                ));
            }
        }
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_2}" text-anchor="middle">{}</text>
"#,
            gx + (bar_w + 2.0) * n_series / 2.0,
            base + 18.0,
            esc(&g.label)
        ));
    }
    out.push_str(&format!(
        r#"<text x="14" y="{:.1}" font-size="11" fill="{INK_2}" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>
"#,
        mt + ph / 2.0,
        mt + ph / 2.0,
        esc(y_label)
    ));
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series> {
        vec![
            Series {
                name: "Baseline".into(),
                color: system_color(SystemKind::Baseline).into(),
                points: vec![(2.0, 1.2), (4.0, 1.8), (8.0, 2.7)],
            },
            Series {
                name: "LockillerTM".into(),
                color: system_color(SystemKind::LockillerTm).into(),
                points: vec![(2.0, 1.5), (4.0, 2.6), (8.0, 4.1)],
            },
        ]
    }

    #[test]
    fn line_chart_is_wellformed_svg() {
        let svg = line_chart("Fig 12", "threads", "speedup vs CGL", &sample_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Markers: 3 points per series + 1 end-label dot each.
        assert_eq!(svg.matches("<circle").count(), 8);
        assert!(svg.contains("LockillerTM"));
        // Tooltips present on marks.
        assert!(svg.contains("<title>"));
    }

    #[test]
    fn bars_have_gap_and_baseline_anchor() {
        let names = vec![
            (
                "Baseline".to_string(),
                system_color(SystemKind::Baseline).to_string(),
            ),
            (
                "LockillerTM".to_string(),
                system_color(SystemKind::LockillerTm).to_string(),
            ),
        ];
        let groups = vec![
            BarGroup {
                label: "genome".into(),
                values: vec![1.8, 1.9],
            },
            BarGroup {
                label: "yada".into(),
                values: vec![0.5, 1.2],
            },
        ];
        let svg = grouped_bars("Fig 1", "speedup", &names, &groups);
        assert!(svg.contains("CGL = 1.0"), "parity reference line missing");
        assert_eq!(svg.matches("<path").count(), 4, "one rounded bar per value");
        assert!(svg.contains("genome"));
    }

    #[test]
    fn colors_follow_system_identity() {
        // The same system gets the same color regardless of chart.
        assert_eq!(system_color(SystemKind::LockillerTm), "#4a3aa7");
        assert_eq!(system_color(SystemKind::Baseline), "#2a78d6");
        // All colors distinct.
        let mut cs: Vec<&str> = SystemKind::ALL.iter().map(|s| system_color(*s)).collect();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), SystemKind::ALL.len());
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = line_chart(
            "a < b & c",
            "x",
            "y",
            &[Series {
                name: "s<1>".into(),
                color: "#2a78d6".into(),
                points: vec![(1.0, 1.0), (2.0, 2.0)],
            }],
        );
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("s<1>"));
    }
}
