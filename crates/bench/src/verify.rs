//! Exploration-budget accounting for the `tmverify` model checker.
//!
//! `experiments verify` runs a fixed battery of small configurations
//! through exhaustive schedule exploration and writes the budget
//! statistics (schedules executed, reduction effectiveness, wall
//! clock) to `BENCH_verify.json`, the same convention as
//! `BENCH_lab.json` / `BENCH_forensics.json`: a regression in these
//! numbers means the state space or the pruning changed.
//!
//! Each row also records `pruned_schedules` / `pruned_digest`: the
//! result of a second exploration with the `tmstatic` independence
//! table installed (for `--backend vm` rows the table comes from the
//! bytecode abstract interpreter over the explorer's own compiled
//! kernels; for thread rows from the spec-level analysis) — equal to
//! the baseline when the premises don't hold. The battery asserts:
//!
//! - the pruned run reproduces the baseline verdict and never adds
//!   schedules, strictly reducing them on both `disjoint-3c3l-tm` rows;
//! - a *vacuous* table (`prunable: false` — premises hold but no core
//!   is pure) leaves the exploration **byte-identical** (digest
//!   equality), the no-behavior-change half of the pruning contract;
//! - rows differing only in backend (`ring-3c3l-tm` vs its `-vm` twin)
//!   produce identical digests — the backends execute the same ops, so
//!   the explored spaces must match run-for-run.

use lockiller::{Backend, SystemKind};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

struct Entry {
    name: &'static str,
    system: SystemKind,
    prog: &'static str,
    backend: Backend,
    inject_drop_wakeups: bool,
    expect_clean: bool,
}

const SUITE: &[Entry] = &[
    Entry {
        name: "ring-2c2l-rwi",
        system: SystemKind::LockillerRwi,
        prog: "2/c:L0,S1/c:L1,S0",
        backend: Backend::Threads,
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "ring-3c3l-rwi",
        system: SystemKind::LockillerRwi,
        prog: "3/c:L0,S1/c:L1,S2/c:L2,S0",
        backend: Backend::Threads,
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "ring-3c3l-tm",
        system: SystemKind::LockillerTm,
        prog: "3/c:L0,S1/c:L1,S2/c:L2,S0",
        backend: Backend::Threads,
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "ring-3c3l-tm-vm",
        system: SystemKind::LockillerTm,
        prog: "3/c:L0,S1/c:L1,S2/c:L2,S0",
        backend: Backend::Vm,
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "ring-4c2l-rwi",
        system: SystemKind::LockillerRwi,
        prog: "2/c:L0,S1/c:L1,S0/c:L0,S1/c:L1,S0",
        backend: Backend::Threads,
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "disjoint-3c3l-tm",
        system: SystemKind::LockillerTm,
        prog: "3/c:L0,S0/c:L1,S1/c:L2,S2",
        backend: Backend::Threads,
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "disjoint-3c3l-tm-vm",
        system: SystemKind::LockillerTm,
        prog: "3/c:L0,S0/c:L1,S1/c:L2,S2",
        backend: Backend::Vm,
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "detector-drop-wakeups",
        system: SystemKind::LockillerRwi,
        prog: "2/c:L0,S1/c:L1,S0",
        backend: Backend::Threads,
        inject_drop_wakeups: true,
        expect_clean: false,
    },
];

/// Run the battery and write `BENCH_verify.json`; panics if a config's
/// verdict flips (a clean config finding a violation, or the detector
/// row going blind) or any pruning-contract assert fails.
pub fn run(quick: bool, jobs: usize, path: &Path) -> std::io::Result<()> {
    let mut rows = Vec::new();
    // Digest of the first row seen per (system, prog, inject) triple:
    // backend twins must match it exactly.
    let mut twin_digest: HashMap<(&str, &str, bool), (&str, u64)> = HashMap::new();
    for e in SUITE {
        if quick && e.name.starts_with("ring-4c") {
            continue;
        }
        let spec = ProgSpec::parse(e.prog).expect("suite specs are valid");
        let mut ex = Explorer::new(e.system, spec);
        ex.no_safety_net = true;
        ex.jobs = jobs.max(1);
        ex.inject.drop_wakeups = e.inject_drop_wakeups;
        ex.backend = e.backend;
        let start = std::time::Instant::now();
        let rep = ex.explore();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            rep.is_clean(),
            e.expect_clean,
            "{}: verdict flipped:\n{}",
            e.name,
            rep.render()
        );
        assert!(rep.complete(), "{}: space no longer drains", e.name);
        let key = (e.system.name(), e.prog, e.inject_drop_wakeups);
        match twin_digest.get(&key) {
            Some(&(twin, digest)) => assert_eq!(
                rep.digest, digest,
                "{}: exploration digest diverges from backend twin {twin}",
                e.name
            ),
            None => {
                twin_digest.insert(key, (e.name, rep.digest));
            }
        }

        // Re-explore with the independence table matched to the
        // backend's source of truth: bytecode for vm rows, spec DSL
        // otherwise.
        let table = match e.backend {
            Backend::Vm => {
                tmstatic::VmAnalysis::new(e.system, ex.config(), &ex.kernels()).independence()
            }
            Backend::Threads => {
                tmstatic::Analysis::new(e.system, ex.spec.clone(), ex.config()).independence()
            }
        };
        let prunable = table
            .as_ref()
            .is_some_and(lockiller::StaticIndependence::can_refine_any);
        let (pruned_schedules, pruned_digest) = match table {
            Some(table) => {
                let vacuous = !table.can_refine_any();
                let mut pruned = ex.clone();
                pruned.prune = Some(table);
                let prep = pruned.explore();
                assert_eq!(
                    prep.is_clean(),
                    rep.is_clean(),
                    "{}: static pruning flipped the verdict:\n{}",
                    e.name,
                    prep.render()
                );
                assert!(prep.complete(), "{}: pruned space no longer drains", e.name);
                assert!(
                    prep.schedules <= rep.schedules,
                    "{}: pruning added schedules ({} > {})",
                    e.name,
                    prep.schedules,
                    rep.schedules
                );
                if vacuous {
                    assert_eq!(
                        prep.digest, rep.digest,
                        "{}: a vacuous table must leave exploration byte-identical",
                        e.name
                    );
                }
                (prep.schedules, prep.digest)
            }
            None => (rep.schedules, rep.digest),
        };
        if e.name.starts_with("disjoint-3c3l-tm") {
            assert!(
                pruned_schedules < rep.schedules,
                "{}: static pruning must be strict here ({} !< {})",
                e.name,
                pruned_schedules,
                rep.schedules
            );
        }
        eprintln!(
            "[verify {}: {} schedule(s) ({} pruned), {} sleep-pruned, {} deduped, {:.0} ms]",
            e.name, rep.schedules, pruned_schedules, rep.pruned_sleep, rep.pruned_dedup, wall_ms
        );
        rows.push(format!(
            "  {{\"name\": \"{}\", \"system\": \"{}\", \"prog\": \"{}\", \
             \"backend\": \"{}\", \"wall_ms\": {:.3}, \"pruned_schedules\": {}, \
             \"pruned_digest\": \"{:016x}\", \"prunable\": {}, \"report\": {}}}",
            e.name,
            e.system.name(),
            e.prog,
            e.backend.name(),
            wall_ms,
            pruned_schedules,
            pruned_digest,
            prunable,
            rep.to_json()
        ));
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{\"verify\": [\n{}\n]}}", rows.join(",\n"))?;
    eprintln!("[verification budget report in {}]", path.display());
    Ok(())
}
