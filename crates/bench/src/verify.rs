//! Exploration-budget accounting for the `tmverify` model checker.
//!
//! `experiments verify` runs a fixed battery of small configurations
//! through exhaustive schedule exploration and writes the budget
//! statistics (schedules executed, reduction effectiveness, wall
//! clock) to `BENCH_verify.json`, the same convention as
//! `BENCH_lab.json` / `BENCH_forensics.json`: a regression in these
//! numbers means the state space or the pruning changed.
//!
//! Each row also records `pruned_schedules`: the schedule count of a
//! second exploration run with the `tmstatic` independence table
//! installed (equal to `schedules` when the analysis premises don't
//! hold). The battery asserts the pruned run reproduces the baseline
//! verdict and never adds schedules, and that on `disjoint-3c3l-tm`
//! the reduction is strict.

use lockiller::SystemKind;
use std::io::Write;
use std::path::Path;
use tmverify::progs::ProgSpec;
use tmverify::Explorer;

struct Entry {
    name: &'static str,
    system: SystemKind,
    prog: &'static str,
    inject_drop_wakeups: bool,
    expect_clean: bool,
}

const SUITE: &[Entry] = &[
    Entry {
        name: "ring-2c2l-rwi",
        system: SystemKind::LockillerRwi,
        prog: "2/c:L0,S1/c:L1,S0",
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "ring-3c3l-rwi",
        system: SystemKind::LockillerRwi,
        prog: "3/c:L0,S1/c:L1,S2/c:L2,S0",
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "ring-3c3l-tm",
        system: SystemKind::LockillerTm,
        prog: "3/c:L0,S1/c:L1,S2/c:L2,S0",
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "ring-4c2l-rwi",
        system: SystemKind::LockillerRwi,
        prog: "2/c:L0,S1/c:L1,S0/c:L0,S1/c:L1,S0",
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "disjoint-3c3l-tm",
        system: SystemKind::LockillerTm,
        prog: "3/c:L0,S0/c:L1,S1/c:L2,S2",
        inject_drop_wakeups: false,
        expect_clean: true,
    },
    Entry {
        name: "detector-drop-wakeups",
        system: SystemKind::LockillerRwi,
        prog: "2/c:L0,S1/c:L1,S0",
        inject_drop_wakeups: true,
        expect_clean: false,
    },
];

/// Run the battery and write `BENCH_verify.json`; panics if a config's
/// verdict flips (a clean config finding a violation, or the detector
/// row going blind).
pub fn run(quick: bool, jobs: usize, path: &Path) -> std::io::Result<()> {
    let mut rows = Vec::new();
    for e in SUITE {
        if quick && e.name.starts_with("ring-4c") {
            continue;
        }
        let spec = ProgSpec::parse(e.prog).expect("suite specs are valid");
        let mut ex = Explorer::new(e.system, spec);
        ex.no_safety_net = true;
        ex.jobs = jobs.max(1);
        ex.inject.drop_wakeups = e.inject_drop_wakeups;
        let start = std::time::Instant::now();
        let rep = ex.explore();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            rep.is_clean(),
            e.expect_clean,
            "{}: verdict flipped:\n{}",
            e.name,
            rep.render()
        );
        assert!(rep.complete(), "{}: space no longer drains", e.name);

        // Re-explore with the tmstatic independence table when its
        // premises hold: the pruned run must reach the same verdict
        // while executing no more schedules than the baseline.
        let analysis = tmstatic::Analysis::new(e.system, ex.spec.clone(), ex.config());
        let pruned_schedules = match analysis.independence() {
            Some(table) => {
                let mut pruned = ex.clone();
                pruned.prune = Some(table);
                let prep = pruned.explore();
                assert_eq!(
                    prep.is_clean(),
                    rep.is_clean(),
                    "{}: static pruning flipped the verdict:\n{}",
                    e.name,
                    prep.render()
                );
                assert!(prep.complete(), "{}: pruned space no longer drains", e.name);
                assert!(
                    prep.schedules <= rep.schedules,
                    "{}: pruning added schedules ({} > {})",
                    e.name,
                    prep.schedules,
                    rep.schedules
                );
                prep.schedules
            }
            None => rep.schedules,
        };
        if e.name == "disjoint-3c3l-tm" {
            assert!(
                pruned_schedules < rep.schedules,
                "{}: static pruning must be strict here ({} !< {})",
                e.name,
                pruned_schedules,
                rep.schedules
            );
        }
        eprintln!(
            "[verify {}: {} schedule(s) ({} pruned), {} sleep-pruned, {} deduped, {:.0} ms]",
            e.name, rep.schedules, pruned_schedules, rep.pruned_sleep, rep.pruned_dedup, wall_ms
        );
        rows.push(format!(
            "  {{\"name\": \"{}\", \"system\": \"{}\", \"prog\": \"{}\", \
             \"wall_ms\": {:.3}, \"pruned_schedules\": {}, \"report\": {}}}",
            e.name,
            e.system.name(),
            e.prog,
            wall_ms,
            pruned_schedules,
            rep.to_json()
        ));
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{\"verify\": [\n{}\n]}}", rows.join(",\n"))?;
    eprintln!("[verification budget report in {}]", path.display());
    Ok(())
}
