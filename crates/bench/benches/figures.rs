//! One Criterion group per table/figure of the paper: each benchmarks a
//! scaled-down instance of the exact code path the experiment harness
//! runs for that figure (the full-size numbers live in EXPERIMENTS.md,
//! produced by the `experiments` binary — simulated cycles, not wall
//! time, are the paper's metric; these benches track the *simulator's*
//! throughput per figure workload so regressions show up in CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::config::SystemConfig;
use stamp::{Scale, Workload, WorkloadKind};

fn run_point(system: SystemKind, workload: WorkloadKind, threads: usize) -> u64 {
    let mut prog = Workload::with_scale(workload, threads, Scale::Tiny);
    let stats = Runner::new(system)
        .threads(threads)
        .config(SystemConfig::testing(threads.max(2)))
        .run(&mut prog)
        .stats;
    stats.cycles
}

/// Table I/II: configuration construction (sanity-speed of the setup path).
fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("table01_02_config");
    g.bench_function("table1_config", |b| b.iter(SystemConfig::table1));
    g.bench_function("table2_policies", |b| {
        b.iter(|| SystemKind::ALL.map(|s| s.policy().max_retries));
    });
    g.finish();
}

/// Fig. 1: baseline HTM vs CGL at 2 threads.
fn bench_fig01(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_baseline_vs_cgl");
    g.sample_size(10);
    for w in [WorkloadKind::Genome, WorkloadKind::Yada] {
        g.bench_with_input(BenchmarkId::new("baseline", w.name()), &w, |b, &w| {
            b.iter(|| run_point(SystemKind::Baseline, w, 2));
        });
        g.bench_with_input(BenchmarkId::new("cgl", w.name()), &w, |b, &w| {
            b.iter(|| run_point(SystemKind::Cgl, w, 2));
        });
    }
    g.finish();
}

/// Fig. 7: speedup grid — representative high/low contention points.
fn bench_fig07(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_speedup_grid");
    g.sample_size(10);
    for sys in [
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ] {
        g.bench_with_input(
            BenchmarkId::new("intruder_4t", sys.name()),
            &sys,
            |b, &sys| b.iter(|| run_point(sys, WorkloadKind::Intruder, 4)),
        );
    }
    g.finish();
}

/// Fig. 8: commit-rate comparison across the recovery variants.
fn bench_fig08(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_commit_rate");
    g.sample_size(10);
    for sys in SystemKind::FIG8 {
        g.bench_with_input(
            BenchmarkId::new("kmeans_high_4t", sys.name()),
            &sys,
            |b, &sys| b.iter(|| run_point(sys, WorkloadKind::KmeansHigh, 4)),
        );
    }
    g.finish();
}

/// Fig. 9: breakdown systems at the max thread count of the test config.
fn bench_fig09(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_breakdown32");
    g.sample_size(10);
    for sys in [
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerRwil,
    ] {
        g.bench_with_input(
            BenchmarkId::new("vacation_4t", sys.name()),
            &sys,
            |b, &sys| {
                b.iter(|| run_point(sys, WorkloadKind::VacationHigh, 4));
            },
        );
    }
    g.finish();
}

/// Fig. 10/11: abort-cause + 2-thread breakdown systems.
fn bench_fig10_11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_11_abort_causes");
    g.sample_size(10);
    for sys in [
        SystemKind::Baseline,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ] {
        g.bench_with_input(BenchmarkId::new("yada_2t", sys.name()), &sys, |b, &sys| {
            b.iter(|| run_point(sys, WorkloadKind::Yada, 2));
        });
    }
    g.finish();
}

/// Fig. 12: average-speedup sweep (one representative per class).
fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_avg_speedup");
    g.sample_size(10);
    for sys in [SystemKind::LosaTmSafu, SystemKind::LockillerTm] {
        g.bench_with_input(
            BenchmarkId::new("genome_4t", sys.name()),
            &sys,
            |b, &sys| {
                b.iter(|| run_point(sys, WorkloadKind::Genome, 4));
            },
        );
    }
    g.finish();
}

/// Fig. 13: cache-size sensitivity (tiny L1 forces overflow machinery).
fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_cache_sensitivity");
    g.sample_size(10);
    let tiny_l1 = || {
        let mut cfg = SystemConfig::testing(2);
        cfg.mem.l1 = sim_core::config::CacheGeometry { sets: 4, ways: 2 };
        cfg
    };
    for sys in [SystemKind::Baseline, SystemKind::LockillerTm] {
        g.bench_with_input(
            BenchmarkId::new("labyrinth_small_l1", sys.name()),
            &sys,
            |b, &sys| {
                b.iter(|| {
                    let mut prog = Workload::with_scale(WorkloadKind::Labyrinth, 2, Scale::Tiny);
                    Runner::new(sys)
                        .threads(2)
                        .config(tiny_l1())
                        .run(&mut prog)
                        .stats
                        .cycles
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_fig01,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10_11,
    bench_fig12,
    bench_fig13
);
criterion_main!(figures);
