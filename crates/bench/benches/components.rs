//! Microbenchmarks for the simulator's building blocks: NoC routing and
//! contention, Bloom signatures, the event queue, the FxHash tables, and
//! transactional data-structure operations (via a 1-core simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use noc::Mesh;
use sim_core::event::EventQueue;
use sim_core::fxhash::{hash_u64, FxHashMap};
use sim_core::rng::SimRng;
use sim_core::types::LineAddr;

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.bench_function("send_4x8_cross", |b| {
        let mut mesh = Mesh::new(4, 8, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            mesh.send(t, 0, 31, 5)
        });
    });
    g.bench_function("send_local", |b| {
        let mut mesh = Mesh::new(4, 8, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            mesh.send(t, 5, 5, 1)
        });
    });
    g.bench_function("route_hops", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for a in 0..32 {
                for bb in 0..32 {
                    acc += noc::route_hops(a, bb, 4);
                }
            }
            acc
        });
    });
    g.finish();
}

fn bench_signature(c: &mut Criterion) {
    let mut g = c.benchmark_group("signature");
    g.bench_function("add", |b| {
        let mut s = coherence::Signature::new(1024, 3);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.add(LineAddr(i));
            if i.is_multiple_of(4096) {
                s.clear();
            }
        });
    });
    g.bench_function("test_miss", |b| {
        let mut s = coherence::Signature::new(1024, 3);
        for i in 0..64 {
            s.add(LineAddr(i));
        }
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            s.test(LineAddr(i))
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(7);
            for _ in 0..1000 {
                q.schedule_at(rng.below(10_000), ());
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        });
    });
    g.finish();
}

fn bench_fxhash(c: &mut Criterion) {
    let mut g = c.benchmark_group("fxhash");
    g.bench_function("hash_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            hash_u64(i)
        });
    });
    g.bench_function("map_insert_lookup_1k", |b| {
        b.iter(|| {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..1000u64 {
                m.insert(i * 7, i);
            }
            (0..1000u64)
                .map(|i| m.get(&(i * 7)).copied().unwrap_or(0))
                .sum::<u64>()
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64", |b| {
        let mut r = SimRng::new(42);
        b.iter(|| r.next_u64());
    });
    g.bench_function("below", |b| {
        let mut r = SimRng::new(42);
        b.iter(|| r.below(1000));
    });
    g.finish();
}

criterion_group!(
    components,
    bench_noc,
    bench_signature,
    bench_event_queue,
    bench_fxhash,
    bench_rng
);
criterion_main!(components);
