//! `tmprof` artifact round-trips: JSON escaping of hostile phase names,
//! the schema-v2 self-profile document, the collapsed-stack flamegraph
//! golden structure, and the acceptance reconciliation — `tmtrace
//! flame` per-phase totals must agree with `<stem>.selfprof.json` to
//! the millisecond.

use sim_core::prof::{HostProf, ProfPhase};
use tmobs::json::{self, Json};
use tmobs::{SelfProfiler, TraceConfig};

#[test]
fn escape_handles_quotes_backslashes_and_controls() {
    assert_eq!(json::escape(r#"say "hi""#), r#"say \"hi\""#);
    assert_eq!(json::escape(r"back\slash"), r"back\\slash");
    assert_eq!(
        json::escape("line\nbreak\ttab\rcr"),
        r"line\nbreak\ttab\rcr"
    );
    assert_eq!(json::escape("bell\u{7}"), "bell\\u0007");
    // Unicode above the control range passes through unescaped.
    assert_eq!(json::escape("相位φ→done"), "相位φ→done");
    assert_eq!(json::escape(""), "");
}

#[test]
fn selfprof_json_round_trips_hostile_phase_names() {
    let nasty = [r#"ph"ase"#, r"back\slash", "相位φ", "tab\there"];
    let mut p = SelfProfiler::start();
    for name in nasty {
        p.lap(name);
    }
    p.finish();
    let doc = p.to_json();
    let v = json::parse(&doc).expect("self-profile JSON must stay parseable");
    assert_eq!(v.get("schema").and_then(Json::as_f64), Some(2.0));
    let phases = v.get("phases").expect("phases object");
    for name in nasty {
        assert!(
            phases.get(name).and_then(Json::as_f64).is_some(),
            "phase {name:?} lost in round-trip: {doc}"
        );
    }
    assert!(phases.get("epilogue").is_some(), "finish() closes the tail");
    // The phase durations still sum to the reported total.
    let total = v.get("total_ms").and_then(Json::as_f64).unwrap();
    let sum: f64 = match phases {
        Json::Obj(kv) => kv.iter().filter_map(|(_, d)| d.as_f64()).sum(),
        other => panic!("phases is not an object: {other:?}"),
    };
    assert!((sum - total).abs() < 0.01 * (nasty.len() + 1) as f64);
}

/// Golden test for the collapsed-stack export: a fixed scope sequence
/// must produce exactly these stack lines, in exactly this (depth-first,
/// first-entered) order. Values are host timings and vary; the *paths*
/// are the contract that flamegraph tooling and `perf-diff` key on.
#[test]
fn flame_export_matches_golden_stack_structure() {
    let mut p = HostProf::start();
    for _ in 0..2 {
        p.enter(ProfPhase::Dequeue);
        p.enter(ProfPhase::SchedPick);
        p.exit();
        p.exit();
        p.enter(ProfPhase::EvRecv);
        p.enter(ProfPhase::GuestResume);
        p.exit();
        p.enter(ProfPhase::Coherence);
        p.exit();
        p.exit();
        p.enter(ProfPhase::EvRespond);
        p.enter(ProfPhase::Stamp);
        p.exit();
        p.exit();
        p.note_event(1);
    }
    let report = p.report();
    let golden = [
        "run",
        "run;dequeue",
        "run;dequeue;sched_pick",
        "run;ev_recv",
        "run;ev_recv;guest_resume",
        "run;ev_recv;coherence",
        "run;ev_respond",
        "run;ev_respond;stamp",
    ];
    let text = tmobs::flame(&report);
    let paths: Vec<&str> = text
        .lines()
        .map(|l| l.rsplit_once(' ').expect("`path value` lines").0)
        .collect();
    assert_eq!(paths, golden, "flame stack structure changed:\n{text}");
    // And every line's value parses — the whole document sums.
    assert!(tmobs::flame_total_us(&text).is_some());
}

/// The acceptance bar: the flamegraph exported from a real traced run
/// reconciles with the `"prof"` block of its own `selfprof.json` to the
/// millisecond.
#[test]
fn flame_reconciles_with_selfprof_json_to_the_millisecond() {
    let mut cfg = TraceConfig::new(
        stamp::WorkloadKind::KmeansLow,
        lockiller::system::SystemKind::LockillerTm,
    );
    cfg.threads = 2;
    cfg.profile = true;
    let art = tmobs::run_trace(&cfg);
    let report = art.host_prof.as_ref().expect("profiled trace");
    let flame_ms = tmobs::flame_total_us(&tmobs::flame(report)).unwrap() as f64 / 1e3;
    let v = json::parse(&art.selfprof_json).expect("selfprof.json parses");
    let prof = v.get("prof").expect("schema-2 prof block");
    let total_ms = prof.get("total_ms").and_then(Json::as_f64).unwrap();
    assert!(
        (flame_ms - total_ms).abs() < 1.0,
        "flame sum {flame_ms} ms vs selfprof prof.total_ms {total_ms} ms"
    );
    // The prof block's own nodes partition the same total.
    let self_sum: f64 = prof
        .get("nodes")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|n| n.get("self_ms").and_then(Json::as_f64).unwrap())
        .sum();
    assert!((self_sum - total_ms).abs() < 1.0);
    // An unprofiled trace of the same config carries no prof block and
    // simulates identically (the zero-cost guarantee, artifact-level).
    let mut plain_cfg = cfg.clone();
    plain_cfg.profile = false;
    let plain = tmobs::run_trace(&plain_cfg);
    assert!(plain.host_prof.is_none());
    assert!(json::parse(&plain.selfprof_json)
        .unwrap()
        .get("prof")
        .is_none());
    assert_eq!(
        plain.stats.to_json(),
        art.stats.to_json(),
        "profiling moved the simulated stats"
    );
}
