//! Conflict-forensics acceptance tests: attaching the forensics sink
//! never changes a run (byte-identical RunStats JSON), the blame
//! matrix's wasted cycles reconcile exactly with the aborted-cycle
//! statistics, a run diffed against itself reports zero deltas, and
//! bounded recorder storage keeps the exporters well-formed.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use sim_core::obs::ObsHandle;
use sim_core::types::Addr;
use std::sync::{Arc, Mutex};
use tmobs::{
    diff_docs, export_chrome, export_jsonl, forensics, run_trace, validate_chrome, MetricsRegistry,
    Recorder, TraceConfig, TraceMeta,
};

/// Litmus workload: every thread increments one shared counter, forcing
/// conflicts, aborts, and (on Lockiller systems) NACKs and parks.
struct Counter {
    per_thread: u64,
    threads: usize,
    addr: Addr,
}

impl Counter {
    fn new(per_thread: u64, threads: usize) -> Counter {
        Counter {
            per_thread,
            threads,
            addr: Addr::NULL,
        }
    }
}

impl Program for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.per_thread {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(20)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(30);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.addr);
        let want = self.per_thread * self.threads as u64;
        if got == want {
            Ok(())
        } else {
            Err(format!("counter = {got}, want {want}"))
        }
    }
}

const THREADS: usize = 4;
const SEED: u64 = 0xBEEF;

fn recorded_run(kind: SystemKind) -> (sim_core::stats::RunStats, Recorder) {
    let (handle, rec) = Recorder::shared(500);
    let mut prog = Counter::new(40, THREADS);
    let out = Runner::new(kind)
        .threads(THREADS)
        .seed(SEED)
        .obs(handle)
        .run(&mut prog);
    let rec = std::mem::take(&mut *rec.lock().unwrap());
    (out.stats, rec)
}

#[test]
fn forensics_sink_never_changes_the_run() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRai,
        SystemKind::LockillerRri,
        SystemKind::LockillerTm,
    ] {
        let mut prog = Counter::new(25, THREADS);
        let plain = Runner::new(kind)
            .threads(THREADS)
            .seed(SEED)
            .run(&mut prog)
            .stats;
        let (observed, rec) = {
            let (handle, rec) = Recorder::shared(100);
            let mut prog = Counter::new(25, THREADS);
            let out = Runner::new(kind)
                .threads(THREADS)
                .seed(SEED)
                .obs(handle)
                .run(&mut prog);
            let taken = std::mem::take(&mut *rec.lock().unwrap());
            (out.stats, taken)
        };
        // Byte-identical statistics even though the observed run recorded
        // conflict edges the plain run never materialized.
        assert_eq!(
            plain.to_json(),
            observed.to_json(),
            "forensics sink changed the run on {}",
            kind.name()
        );
        if kind != SystemKind::Baseline {
            assert!(
                !rec.conflicts().is_empty(),
                "{}: conflict-heavy run recorded no conflict edges",
                kind.name()
            );
        }
    }
}

#[test]
fn wasted_cycles_reconcile_exactly_across_systems() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRai,
        SystemKind::LockillerRri,
        SystemKind::LockillerRwi,
        SystemKind::LockillerRwil,
        SystemKind::LockillerTm,
    ] {
        let (stats, rec) = recorded_run(kind);
        let report = forensics::analyze(&rec, THREADS);
        report
            .reconcile(&stats)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        // The ledger partitions every NACKed attempt into an outcome.
        let l = &report.ledger;
        assert_eq!(
            l.saved + l.switched + l.lost + l.truncated,
            l.nacked_attempts,
            "{}: ledger outcomes must partition nacked attempts",
            kind.name()
        );
        // Attributed aborts cover every aborted attempt.
        assert_eq!(
            report.matrix.total_aborts(),
            stats.total_aborts(),
            "{}: matrix aborts must cover all aborts",
            kind.name()
        );
    }
}

#[test]
fn blame_on_intruder_lockillertm_is_nonempty_and_self_diffs_clean() {
    let mut cfg = TraceConfig::new(stamp::WorkloadKind::Intruder, SystemKind::LockillerTm);
    cfg.threads = 8;
    let art = run_trace(&cfg);
    art.validation.expect("workload validation");
    let f = &art.forensics;
    assert!(f.matrix.total_conflicts() > 0, "empty conflict matrix");
    assert!(!f.hotspots.is_empty(), "no hotspot lines");
    f.reconcile(&art.stats)
        .expect("wasted-cycle reconciliation");
    // Blame JSON is valid and carries the reconciled total.
    let doc = f.to_json(10);
    let v = tmobs::json::parse(&doc).expect("blame json parses");
    assert_eq!(
        v.get("total_wasted").and_then(tmobs::json::Json::as_f64),
        Some(art.stats.aborted_cycles() as f64)
    );
    // A run diffed against itself reports zero deltas; rerunning the
    // same config is byte-identical.
    let again = run_trace(&cfg);
    let (a, b) = (art.stats.to_json(), again.stats.to_json());
    assert_eq!(a, b);
    assert!(diff_docs(&a, &b, 0.0).unwrap().is_empty());
    assert!(diff_docs(&doc, &again.forensics.to_json(10), 0.0)
        .unwrap()
        .is_empty());
    // And a perturbed document is flagged.
    let tweaked = a.replace("\"commits\":", "\"commits\":1");
    assert!(!diff_docs(&a, &tweaked, 0.0).unwrap().is_empty());
}

#[test]
fn capped_recorder_keeps_exports_well_formed() {
    // Tiny span cap: the conflict-heavy run must overflow it.
    let rec = Arc::new(Mutex::new(Recorder::with_span_cap(8)));
    let handle = ObsHandle::new(rec.clone(), 500);
    let mut prog = Counter::new(40, THREADS);
    let out = Runner::new(SystemKind::LockillerTm)
        .threads(THREADS)
        .seed(SEED)
        .obs(handle)
        .run(&mut prog);
    let rec = std::mem::take(&mut *rec.lock().unwrap());
    assert_eq!(rec.spans().len(), 8);
    assert!(rec.dropped_spans() > 0, "cap was never exceeded");
    // Both exporters stay structurally valid on the truncated recording.
    let meta = TraceMeta {
        workload: "counter".into(),
        system: SystemKind::LockillerTm.name().into(),
        threads: THREADS,
        seed: SEED,
    };
    let doc = export_chrome(&rec, &meta, &out.stats);
    let s = validate_chrome(&doc).expect("capped chrome trace invalid");
    assert_eq!(s.spans, 8);
    let reg = MetricsRegistry::for_config(&sim_core::config::SystemConfig::table1());
    for line in export_jsonl(&rec, &reg, &out.stats)
        .lines()
        .filter(|l| !l.is_empty())
    {
        tmobs::json::parse(line).expect("capped jsonl line invalid");
    }
}
