//! Exporter round-trip and determinism tests: the Chrome trace parses
//! and nests, the JSONL series is byte-identical across identically
//! seeded runs, span data agrees with the engine's structured trace and
//! RunStats, and attaching a recorder never changes a simulation.

use lockiller::flatmem::{FlatMem, SetupCtx};
use lockiller::guest::GuestCtx;
use lockiller::program::Program;
use lockiller::runner::Runner;
use lockiller::system::SystemKind;
use lockiller::TraceKind;
use sim_core::obs::{SpanEnd, SpanKind};
use sim_core::stats::RunStats;
use sim_core::types::Addr;
use tmobs::{export_chrome, export_jsonl, validate_chrome, MetricsRegistry, Recorder, TraceMeta};

/// Litmus workload: every thread increments one shared counter, forcing
/// conflicts, aborts, and (on Lockiller systems) parks.
struct Counter {
    per_thread: u64,
    threads: usize,
    addr: Addr,
}

impl Counter {
    fn new(per_thread: u64, threads: usize) -> Counter {
        Counter {
            per_thread,
            threads,
            addr: Addr::NULL,
        }
    }
}

impl Program for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn setup(&mut self, s: &mut SetupCtx, _threads: usize) {
        self.addr = s.alloc(8);
    }

    fn run(&self, ctx: &mut GuestCtx) {
        let addr = self.addr;
        for _ in 0..self.per_thread {
            ctx.critical(|tx| {
                let v = tx.load(addr)?;
                tx.compute(20)?;
                tx.store(addr, v + 1)?;
                Ok(())
            });
            ctx.compute(30);
        }
    }

    fn validate(&self, mem: &FlatMem) -> Result<(), String> {
        let got = mem.read(self.addr);
        let want = self.per_thread * self.threads as u64;
        if got == want {
            Ok(())
        } else {
            Err(format!("counter = {got}, want {want}"))
        }
    }
}

const THREADS: usize = 4;
const SEED: u64 = 0xBEEF;

fn traced_run(kind: SystemKind) -> (RunStats, Vec<lockiller::TraceEvent>, Recorder) {
    let (handle, rec) = Recorder::shared(500);
    let mut prog = Counter::new(40, THREADS);
    let runner = Runner::new(kind).threads(THREADS).seed(SEED).obs(handle);
    let mut out = runner.tracing().no_validate().run(&mut prog);
    let events = out.take_trace_events();
    let (stats, mem) = (out.stats, out.mem);
    prog.validate(&mem).expect("counter total wrong");
    let rec = std::mem::take(&mut *rec.lock().unwrap());
    (stats, events, rec)
}

#[test]
fn chrome_export_parses_and_nests() {
    let (stats, _events, rec) = traced_run(SystemKind::LockillerTm);
    assert!(rec.is_finished());
    let meta = TraceMeta {
        workload: "counter".into(),
        system: SystemKind::LockillerTm.name().into(),
        threads: THREADS,
        seed: SEED,
    };
    let doc = export_chrome(&rec, &meta, &stats);
    let s = validate_chrome(&doc).unwrap();
    assert_eq!(s.spans, rec.spans().len());
    assert!(s.spans > 0, "no spans recorded");
    assert!(s.counters > 0, "no counter samples recorded");
    // Per-core tracks plus metric series covering the NoC and LLC.
    assert!(s.tracks >= 2);
    assert!(doc.contains("\"name\":\"core 0\""));
    assert!(doc.contains("noc.messages"));
    assert!(doc.contains("llc.bank"));
    // The latency histograms ride along in otherData.
    assert!(doc.contains("\"latency\":{\"classes\":{\"htm_commit\":"));
    // The heavy conflict load must show real outcomes in the spans.
    let commits = rec
        .spans_of(SpanKind::Txn)
        .filter(|s| s.outcome == SpanEnd::Commit)
        .count();
    assert!(commits > 0);
    let _ = stats;
}

#[test]
fn span_data_agrees_with_structured_trace_and_stats() {
    let (stats, events, rec) = traced_run(SystemKind::LockillerTm);
    // Every speculative commit in RunStats appears as a Txn span closed
    // with Commit, and matches the engine trace's Commit events.
    let span_commits = rec
        .spans_of(SpanKind::Txn)
        .filter(|s| s.outcome == SpanEnd::Commit)
        .count() as u64;
    let trace_commits = events
        .iter()
        .filter(|e| e.kind == TraceKind::Commit)
        .count() as u64;
    assert_eq!(span_commits, trace_commits);
    assert_eq!(span_commits + stats.stl_commits, stats.commits);
    // Aborted attempts match too.
    let span_aborts = rec
        .spans_of(SpanKind::Txn)
        .filter(|s| matches!(s.outcome, SpanEnd::Abort(_)))
        .count() as u64;
    let trace_aborts = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Abort(_)))
        .count() as u64;
    assert_eq!(span_aborts, trace_aborts);
    // Park spans pair with recovery activity: woken spans need wakeups.
    let woken = rec
        .spans_of(SpanKind::Park)
        .filter(|s| s.outcome == SpanEnd::Woken)
        .count() as u64;
    assert!(woken <= stats.wakeups);
}

#[test]
fn jsonl_is_deterministic_across_identical_seeds() {
    let reg = MetricsRegistry::for_config(&sim_core::config::SystemConfig::table1());
    let (stats_a, _, rec_a) = traced_run(SystemKind::LockillerTm);
    let (stats_b, _, rec_b) = traced_run(SystemKind::LockillerTm);
    // Byte-identical exports — including the embedded latency
    // histograms, which must be bit-deterministic run to run.
    assert_eq!(
        export_jsonl(&rec_a, &reg, &stats_a),
        export_jsonl(&rec_b, &reg, &stats_b)
    );
    let meta = TraceMeta {
        workload: "counter".into(),
        system: "LockillerTM".into(),
        threads: THREADS,
        seed: SEED,
    };
    assert_eq!(
        export_chrome(&rec_a, &meta, &stats_a),
        export_chrome(&rec_b, &meta, &stats_b)
    );
    // Sample rows land exactly on the sampling grid.
    let (_, _, rec) = traced_run(SystemKind::LockillerTm);
    let on_grid = rec.samples().iter().filter(|r| r.cycle % 500 == 0).count();
    // All rows except the final flush (emitted at end-of-run) align.
    assert!(rec.samples().len() - on_grid <= 1);
}

#[test]
fn observability_does_not_perturb_the_simulation() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::LockillerRwi,
        SystemKind::LockillerTm,
    ] {
        let mut prog = Counter::new(25, THREADS);
        let plain = Runner::new(kind)
            .threads(THREADS)
            .seed(SEED)
            .run(&mut prog)
            .stats;
        let (handle, _rec) = Recorder::shared(100);
        let mut prog = Counter::new(25, THREADS);
        let observed = Runner::new(kind)
            .threads(THREADS)
            .seed(SEED)
            .obs(handle)
            .run(&mut prog)
            .stats;
        assert_eq!(
            format!("{plain:?}"),
            format!("{observed:?}"),
            "attaching a recorder changed the run on {}",
            kind.name()
        );
    }
}

#[test]
fn summary_and_timeline_render_from_one_run() {
    let (stats, events, rec) = traced_run(SystemKind::LockillerRwil);
    let summary = tmobs::render_summary(&rec, &stats);
    assert!(summary.contains("core  0 |"));
    assert!(summary.contains("txn_length"));
    assert!(summary.contains("noc:"));
    let timeline = lockiller::render_timeline(&events, THREADS, 80);
    assert!(timeline.contains("core  0 |"));
    // The two views describe the same run: if the timeline shows any
    // commit glyph, the recorder must hold a committed Txn span.
    let timeline_has_commit = timeline
        .lines()
        .any(|l| l.starts_with("core") && l.contains(')'));
    let spans_have_commit = rec
        .spans_of(SpanKind::Txn)
        .any(|s| s.outcome == SpanEnd::Commit);
    assert_eq!(timeline_has_commit, spans_have_commit);
}
