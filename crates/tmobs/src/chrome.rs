//! Chrome trace-event JSON exporter (the format Perfetto and
//! `chrome://tracing` load). One simulated cycle maps to one microsecond
//! of display time.
//!
//! Layout: everything lives in process 0; each simulated core gets its
//! own thread track (txn / lock / park spans), the LLC arbiter gets a
//! dedicated thread track (HLA arbitration spans), and metric samples
//! become counter tracks (`ph: "C"`) — which is how the NoC link
//! utilization and LLC bank queue depths appear as tracks in Perfetto.

use crate::json::{self, escape, Json};
use crate::latency::latency_json;
use crate::recorder::{Recorder, Span};
use sim_core::obs::{SpanEnd, Track};
use sim_core::stats::RunStats;

/// Run identification embedded in the trace (`otherData` + process
/// name), and the thread-id mapping basis.
#[derive(Clone, Debug)]
pub struct TraceMeta {
    pub workload: String,
    pub system: String,
    pub threads: usize,
    pub seed: u64,
}

/// Thread-track id for a span's track: cores first, then the LLC.
fn tid(track: Track, threads: usize) -> usize {
    match track {
        Track::Core(c) => c,
        Track::Llc => threads,
        Track::Noc => threads + 1,
    }
}

fn span_event(s: &Span, threads: usize) -> String {
    let mut args = format!("\"core\":{},\"end\":\"{}\"", s.core, s.outcome.name());
    if let SpanEnd::Abort(cause) = s.outcome {
        args.push_str(&format!(",\"cause\":\"{}\"", cause.name()));
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
        s.kind.name(),
        tid(s.track, threads),
        s.start,
        s.duration(),
    )
}

/// Serialize a recording as a Chrome trace-event JSON document. The
/// run's latency histograms ride along in `otherData` (Perfetto ignores
/// unknown keys there; `tmtrace perf-diff` and scripts can read them).
pub fn export_chrome(rec: &Recorder, meta: &TraceMeta, stats: &RunStats) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"{} on {}\"}}}}",
        escape(&meta.workload),
        escape(&meta.system)
    ));
    for c in 0..meta.threads {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{c},\"args\":{{\"name\":\"core {c}\"}}}}"
        ));
    }
    events.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"LLC/HLA\"}}}}",
        meta.threads
    ));
    for s in rec.spans() {
        events.push(span_event(s, meta.threads));
    }
    // Conflict edges as thread-scoped instant events on the victim's
    // track, so blame shows up inline with the aborted/parked spans.
    for c in rec.conflicts() {
        let e = &c.edge;
        events.push(format!(
            "{{\"name\":\"conflict:{}\",\"cat\":\"conflict\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\"args\":{{\"attacker\":{},\"victim\":{},\"line\":\"{:?}\",\"action\":\"{}\"}}}}",
            e.resolution.name(),
            tid(Track::Core(e.victim), meta.threads),
            c.cycle,
            e.attacker,
            e.victim,
            e.line,
            e.action.name(),
        ));
    }
    for row in rec.samples() {
        for &(metric, value) in &row.values {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":0,\"ts\":{},\"args\":{{\"value\":{value}}}}}",
                metric.name(),
                row.cycle
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"workload\":\"{}\",\"system\":\"{}\",\"threads\":{},\"seed\":\"0x{:x}\",\"cycles\":{},\"latency\":{}}},\"traceEvents\":[\n{}\n]}}\n",
        escape(&meta.workload),
        escape(&meta.system),
        meta.threads,
        meta.seed,
        rec.end_cycle(),
        latency_json(stats),
        events.join(",\n")
    )
}

/// What [`validate_chrome`] measured about a document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    pub spans: usize,
    pub counters: usize,
    pub tracks: usize,
    pub counter_series: usize,
    pub instants: usize,
}

/// Parse an exported document back and check the structural invariants
/// Perfetto relies on: every event carries `name`/`ph`/`pid`, complete
/// events carry numeric `ts`/`dur`, and spans on one thread track are
/// properly nested (no partial overlap).
pub fn validate_chrome(doc: &str) -> Result<ChromeSummary, String> {
    let v = json::parse(doc)?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = ChromeSummary::default();
    let mut tracks: Vec<usize> = Vec::new();
    let mut series: Vec<String> = Vec::new();
    // (tid, start, end) per complete event.
    let mut slices: Vec<(usize, u64, u64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if ev.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i}: missing pid"));
        }
        match ph {
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without tid"))?
                    as usize;
                if !tracks.contains(&tid) {
                    tracks.push(tid);
                }
                slices.push((tid, ts as u64, (ts + dur) as u64));
                summary.spans += 1;
            }
            "C" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap().to_string();
                if ev.get("ts").and_then(Json::as_f64).is_none() {
                    return Err(format!("event {i}: C without ts"));
                }
                if !series.contains(&name) {
                    series.push(name);
                }
                summary.counters += 1;
            }
            "i" => {
                if ev.get("ts").and_then(Json::as_f64).is_none() {
                    return Err(format!("event {i}: i without ts"));
                }
                summary.instants += 1;
            }
            "M" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    // Nesting check per track: sort by (start, -length); walk with a
    // stack of enclosing end times. A slice must close before whatever
    // encloses it does.
    slices.sort_by_key(|&(tid, start, end)| (tid, start, std::cmp::Reverse(end)));
    let mut stack: Vec<(usize, u64)> = Vec::new();
    for &(tid, start, end) in &slices {
        while let Some(&(top_tid, top_end)) = stack.last() {
            if top_tid != tid || top_end <= start {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, top_end)) = stack.last() {
            if end > top_end {
                return Err(format!(
                    "track {tid}: span [{start},{end}) partially overlaps enclosing span ending at {top_end}"
                ));
            }
        }
        stack.push((tid, end));
    }
    summary.tracks = tracks.len();
    summary.counter_series = series.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::obs::{Metric, ObsEvent, ObsSink, SpanKind};

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "counter".into(),
            system: "LockillerTM".into(),
            threads: 2,
            seed: 0xC0FFEE,
        }
    }

    #[test]
    fn export_parses_and_validates() {
        let mut rec = Recorder::default();
        for core in 0..2 {
            rec.event(ObsEvent::SpanBegin {
                cycle: 10 + core as u64,
                track: Track::Core(core),
                kind: SpanKind::Txn,
                core,
            });
            rec.event(ObsEvent::SpanEnd {
                cycle: 50,
                track: Track::Core(core),
                kind: SpanKind::Txn,
                core,
                end: SpanEnd::Commit,
            });
        }
        rec.event(ObsEvent::Sample {
            cycle: 0,
            metric: Metric::Commits,
            value: 2,
        });
        rec.finish(60);
        let mut stats = RunStats::new(2);
        stats
            .latency
            .record_class(sim_core::latency::TxnClass::HtmCommit, 40);
        let doc = export_chrome(&rec, &meta(), &stats);
        let s = validate_chrome(&doc).unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.counters, 1);
        assert_eq!(s.tracks, 2);
        assert_eq!(s.counter_series, 1);
        // The latency block rides in otherData and round-trips.
        let v = json::parse(&doc).unwrap();
        let lat = v.get("otherData").unwrap().get("latency").unwrap();
        let back = sim_core::latency::LatencyStats::from_json_value(lat).unwrap();
        assert_eq!(back, stats.latency);
    }

    #[test]
    fn overlapping_spans_on_one_track_rejected() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":5,"dur":10}
        ]}"#;
        assert!(validate_chrome(doc).unwrap_err().contains("overlaps"));
    }

    #[test]
    fn nested_and_disjoint_spans_accepted() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":2,"dur":3},
            {"name":"c","ph":"X","pid":0,"tid":0,"ts":20,"dur":5},
            {"name":"d","ph":"X","pid":0,"tid":1,"ts":5,"dur":100}
        ]}"#;
        let s = validate_chrome(doc).unwrap();
        assert_eq!(s.spans, 4);
        assert_eq!(s.tracks, 2);
    }

    #[test]
    fn abort_cause_lands_in_args() {
        use sim_core::stats::AbortCause;
        let mut rec = Recorder::default();
        rec.event(ObsEvent::SpanBegin {
            cycle: 1,
            track: Track::Core(0),
            kind: SpanKind::Txn,
            core: 0,
        });
        rec.event(ObsEvent::SpanEnd {
            cycle: 9,
            track: Track::Core(0),
            kind: SpanKind::Txn,
            core: 0,
            end: SpanEnd::Abort(AbortCause::Mc),
        });
        rec.finish(9);
        let doc = export_chrome(&rec, &meta(), &RunStats::new(2));
        assert!(doc.contains("\"cause\":\"mc\""));
        validate_chrome(&doc).unwrap();
    }
}
