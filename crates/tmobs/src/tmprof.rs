//! Exporters for the engine's host-side self-profile (`tmprof`).
//!
//! The emitting side lives in `sim_core::prof` (the engine brackets its
//! hot-loop phases with [`sim_core::prof::HostProf`] scopes); this
//! module turns the finished [`ProfReport`] into artifacts:
//!
//! - [`flame`] — collapsed-stack flamegraph text (`path;sub;phase N`,
//!   one line per phase, self-time in integer microseconds), loadable by
//!   any flamegraph renderer and summable by plain `awk`;
//! - [`chrome_prof`] — a Chrome trace-event document with the phase tree
//!   as nested slices (aggregate durations laid out depth-first, not a
//!   timeline — the profile is a tree of totals);
//! - [`prof_json`] — the stable JSON block merged into
//!   `<stem>.selfprof.json` (schema v2) and `BENCH_engine.json`;
//! - [`phase_shares`] — per-phase self-time shares (they sum to 1.0
//!   exactly: self times partition the root total);
//! - [`render_prof`] — a terminal table, biggest self-time first.
//!
//! Reconciliation guarantee (asserted by tests and the CI gate): the sum
//! of [`flame`] values equals the report's total within one microsecond
//! per phase — far inside the millisecond the acceptance bar asks for.

use sim_core::prof::{ProfNode, ProfReport};

/// Collapsed-stack flamegraph text: one `path value` line per phase in
/// depth-first order, `value` = self-time in integer microseconds
/// (rounded). Zero-valued lines are kept so the phase inventory is
/// stable run to run.
pub fn flame(report: &ProfReport) -> String {
    let mut out = String::new();
    for n in &report.nodes {
        out.push_str(&format!("{} {}\n", n.path, round_us(n.self_ns)));
    }
    out
}

fn round_us(ns: u64) -> u64 {
    (ns + 500) / 1000
}

/// Sum of the values in a collapsed-stack document produced by [`flame`]
/// (microseconds). Returns `None` on any malformed line.
pub fn flame_total_us(text: &str) -> Option<u64> {
    let mut sum = 0u64;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let (_, v) = line.rsplit_once(' ')?;
        sum += v.parse::<u64>().ok()?;
    }
    Some(sum)
}

/// Chrome trace-event JSON of the phase tree: nested `X` slices whose
/// durations are the aggregate per-phase totals, laid out depth-first
/// (each child starts where its previous sibling ended). Load in
/// Perfetto to see the tree as a flame chart; the time axis is
/// *aggregate host microseconds*, not a timeline.
pub fn chrome_prof(report: &ProfReport) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    // Depth-first layout: a node starts at its parent's start plus the
    // totals of the siblings flattened before it. Nodes arrive
    // parent-before-child, so starts resolve in one pass.
    let mut starts: Vec<u64> = vec![0; report.nodes.len()];
    let mut cursor: Vec<u64> = vec![0; report.nodes.len()];
    let mut first = true;
    for (i, n) in report.nodes.iter().enumerate() {
        let (ts, parent_slot) = match parent_index(report, i) {
            Some(p) => (starts[p] + cursor[p], Some(p)),
            None => (0, None),
        };
        starts[i] = ts;
        if let Some(p) = parent_slot {
            cursor[p] += n.total_ns;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{},\"args\":{{\"calls\":{},\"self_us\":{},\"allocs\":{}}}}}",
            crate::json::escape(n.name),
            ts / 1000,
            n.total_ns / 1000,
            n.calls,
            n.self_ns / 1000,
            n.allocs
        ));
    }
    out.push_str("]}");
    out
}

/// Index (into `report.nodes`) of `report.nodes[i]`'s parent: the node
/// whose path is `i`'s path minus its last segment.
fn parent_index(report: &ProfReport, i: usize) -> Option<usize> {
    let path = &report.nodes[i].path;
    let (parent_path, _) = path.rsplit_once(';')?;
    report.nodes.iter().position(|n| n.path == parent_path)
}

/// The stable JSON block for a host profile (no surrounding key): totals,
/// event counters, and one entry per phase keyed by full scope path.
/// Milliseconds to 3 decimals everywhere a duration appears, matching
/// the lap-style fields it sits next to in `selfprof.json`.
pub fn prof_json(report: &ProfReport) -> String {
    let mut out = format!(
        "{{\"total_ms\":{:.3},\"events\":{},\"queue_depth_mean\":{:.2},\"nodes\":[",
        report.total_ns as f64 / 1e6,
        report.events,
        report.q_depth_mean()
    );
    for (i, n) in report.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"total_ms\":{:.3},\"self_ms\":{:.3},\"calls\":{},\"allocs\":{},\"alloc_bytes\":{}}}",
            crate::json::escape(&n.path),
            n.total_ns as f64 / 1e6,
            n.self_ns as f64 / 1e6,
            n.calls,
            n.allocs,
            n.alloc_bytes
        ));
    }
    out.push_str("]}");
    out
}

/// Per-phase share of total host time (self-time basis), keyed by full
/// scope path, in depth-first report order. Shares sum to 1.0 exactly
/// when any time was recorded — self times partition the root total.
pub fn phase_shares(report: &ProfReport) -> Vec<(String, f64)> {
    report
        .self_shares()
        .into_iter()
        .map(|(p, s)| (p.to_string(), s))
        .collect()
}

/// Terminal table: phases by self-time, descending.
pub fn render_prof(report: &ProfReport) -> String {
    let total = (report.total_ns as f64).max(1.0);
    let mut rows: Vec<&ProfNode> = report.nodes.iter().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    let mut out = format!(
        "host profile: {:.3} ms, {} events (queue depth mean {:.1})\n",
        report.total_ns as f64 / 1e6,
        report.events,
        report.q_depth_mean()
    );
    out.push_str("  self%   self ms  total ms      calls  phase\n");
    for n in rows {
        out.push_str(&format!(
            "  {:>5.1} {:>9.3} {:>9.3} {:>10}  {}\n",
            n.self_ns as f64 / total * 100.0,
            n.self_ns as f64 / 1e6,
            n.total_ns as f64 / 1e6,
            n.calls,
            n.path
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::prof::{HostProf, ProfPhase};

    fn sample_report() -> ProfReport {
        let mut p = HostProf::start();
        for _ in 0..3 {
            p.enter(ProfPhase::EvRecv);
            p.enter(ProfPhase::GuestResume);
            p.exit();
            p.exit();
            p.enter(ProfPhase::EvNet);
            p.enter(ProfPhase::Coherence);
            p.exit();
            p.exit();
            p.note_event(2);
        }
        p.report()
    }

    #[test]
    fn flame_reconciles_with_report_total() {
        let r = sample_report();
        let text = flame(&r);
        let sum = flame_total_us(&text).expect("well-formed flame output");
        // Rounding error is bounded by 0.5 us per line — far under 1 ms.
        let total_us = r.total_ns / 1000;
        assert!(
            sum.abs_diff(total_us) <= r.nodes.len() as u64,
            "flame sum {sum} vs total {total_us}"
        );
        // Every node appears exactly once.
        assert_eq!(text.lines().count(), r.nodes.len());
        assert!(text.starts_with("run "));
        assert!(text.contains("run;ev_recv;guest_resume "));
    }

    #[test]
    fn chrome_prof_is_valid_json_with_nested_slices() {
        let r = sample_report();
        let doc = chrome_prof(&r);
        let v = crate::json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), r.nodes.len());
        // The root slice spans the whole profile.
        let root = &events[0];
        assert_eq!(root.get("name").unwrap().as_str().unwrap(), "run");
        assert_eq!(root.get("ts").unwrap().as_f64().unwrap(), 0.0);
        // Children nest inside their parent's [ts, ts+dur).
        let rd = root.get("dur").unwrap().as_f64().unwrap();
        for e in &events[1..] {
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let dur = e.get("dur").unwrap().as_f64().unwrap();
            assert!(ts + dur <= rd + 1.0, "slice escapes the root");
        }
    }

    #[test]
    fn prof_json_parses_and_shares_sum_to_one() {
        let r = sample_report();
        let doc = prof_json(&r);
        let v = crate::json::parse(&doc).expect("valid JSON");
        let nodes = v.get("nodes").unwrap().as_arr().unwrap();
        assert_eq!(nodes.len(), r.nodes.len());
        let total = v.get("total_ms").unwrap().as_f64().unwrap();
        let self_sum: f64 = nodes
            .iter()
            .map(|n| n.get("self_ms").unwrap().as_f64().unwrap())
            .sum();
        // Emitted at 3 decimals; the sum matches total within rounding.
        assert!((self_sum - total).abs() < 0.01 * nodes.len() as f64);
        let shares = phase_shares(&r);
        let s: f64 = shares.iter().map(|(_, v)| v).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_prof_lists_every_phase() {
        let r = sample_report();
        let table = render_prof(&r);
        for n in &r.nodes {
            assert!(table.contains(&n.path), "missing {}", n.path);
        }
    }
}
