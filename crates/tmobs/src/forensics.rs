//! Conflict forensics: who aborted whom, on which line, and whether the
//! recovery decision paid off.
//!
//! A recording already tells us *that* aborts happened ([`Recorder`]
//! spans) and *where* conflicts were resolved ([`ConflictEvent`]s from
//! the coherence layer). This module joins the two into three artifacts:
//!
//! 1. **Attacker/victim matrix** — per core pair: conflict edges,
//!    aborts caused, and wasted cycles. Wasted cycles are the durations
//!    of aborted transaction attempts, attributed to the most recent
//!    conflicting attacker; attempts with no recorded conflict edge
//!    (capacity, faults, self-aborts with the NACK long past) land in a
//!    dedicated "unattributed" row so the matrix total reconciles
//!    *exactly* with `RunStats::aborted_cycles`.
//! 2. **Per-line hotspot table** — lines ranked by aborts caused, with
//!    the [`AbortCause`] split plus NACK / signature-reject pressure.
//! 3. **Recovery ledger** — every transaction attempt that survived at
//!    least one NACK, tracked to its eventual commit, proactive switch,
//!    or abort: the "fraction of recoveries that saved work".

use crate::recorder::{ConflictEvent, Recorder};
use sim_core::json::escape;
use sim_core::obs::{ConflictResolution, RecoveryAction, SpanEnd, SpanKind, Track};
use sim_core::stats::{AbortCause, RunStats};
use sim_core::types::{Cycle, LineAddr};

/// Core×core conflict accounting. Rows are attackers (index `threads`
/// is the "unattributed" environment row), columns are victims.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictMatrix {
    pub threads: usize,
    /// Conflict edges (NACKs + aborts + signature rejects) per pair.
    pub conflicts: Vec<Vec<u64>>,
    /// Aborted victim attempts attributed to each attacker.
    pub aborts: Vec<Vec<u64>>,
    /// Wasted (aborted-speculation) cycles attributed to each attacker.
    pub wasted: Vec<Vec<Cycle>>,
}

impl ConflictMatrix {
    fn new(threads: usize) -> ConflictMatrix {
        ConflictMatrix {
            threads,
            conflicts: vec![vec![0; threads]; threads + 1],
            aborts: vec![vec![0; threads]; threads + 1],
            wasted: vec![vec![0; threads]; threads + 1],
        }
    }

    pub fn total_conflicts(&self) -> u64 {
        self.conflicts.iter().flatten().sum()
    }

    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().flatten().sum()
    }

    /// Sum of all wasted-cycle weights; reconciles (±0) with
    /// [`RunStats::aborted_cycles`] for the same run.
    pub fn total_wasted(&self) -> Cycle {
        self.wasted.iter().flatten().sum()
    }
}

/// One cache line's conflict record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineHotspot {
    pub line: LineAddr,
    /// Aborts this line caused, split by [`AbortCause`] index.
    pub aborts: [u64; 6],
    pub nacks: u64,
    pub sig_rejects: u64,
    /// Wasted cycles of aborted attempts attributed to this line.
    pub wasted: Cycle,
}

impl LineHotspot {
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }
}

/// Where the transaction attempts that took at least one NACK /
/// signature reject ended up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryLedger {
    /// Transaction attempts that were NACKed or signature-rejected at
    /// least once.
    pub nacked_attempts: u64,
    /// ... and still committed in HTM: the recovery saved the work.
    pub saved: u64,
    /// ... and committed via a granted proactive switch (STL).
    pub switched: u64,
    /// ... and aborted anyway: the NACK only postponed the loss.
    pub lost: u64,
    /// ... still open at end-of-run truncation.
    pub truncated: u64,
    /// Total NACK edges observed (including outside transactions).
    pub nacks: u64,
    /// Total signature-reject edges observed.
    pub sig_rejects: u64,
    /// Reject follow-up split: requester-abort-itself / retry-later /
    /// wait-for-wakeup decisions.
    pub rai: u64,
    pub rri: u64,
    pub rwi: u64,
    /// Cycles spent parked by the recovery mechanism (all Park spans).
    pub park_cycles: Cycle,
}

impl RecoveryLedger {
    /// Fraction of NACK-surviving attempts whose work was saved
    /// (committed in HTM or via a proactive switch). NaN-free.
    pub fn saved_fraction(&self) -> f64 {
        let saved = self.saved + self.switched;
        if self.nacked_attempts == 0 {
            0.0
        } else {
            saved as f64 / self.nacked_attempts as f64
        }
    }
}

/// The full forensics analysis of one recording.
#[derive(Clone, Debug)]
pub struct ForensicsReport {
    pub matrix: ConflictMatrix,
    /// All conflicted lines, sorted by (aborts caused, NACKs) descending.
    pub hotspots: Vec<LineHotspot>,
    pub ledger: RecoveryLedger,
}

/// Schema version of [`ForensicsReport::to_json`].
pub const BLAME_JSON_SCHEMA: u64 = 1;

/// Derive the forensics artifacts from a finished recording.
///
/// Every aborted `Txn` span contributes its full duration as wasted
/// cycles exactly once, so `report.matrix.total_wasted()` equals the
/// run's `RunStats::aborted_cycles()` — the reconciliation that
/// [`ForensicsReport::reconcile`] checks.
pub fn analyze(rec: &Recorder, threads: usize) -> ForensicsReport {
    let mut matrix = ConflictMatrix::new(threads);
    let mut hotspots: Vec<LineHotspot> = Vec::new();
    let mut ledger = RecoveryLedger::default();

    // Conflict edges grouped per victim, preserving cycle order, so span
    // attribution below can binary-search its window.
    let mut by_victim: Vec<Vec<&ConflictEvent>> = vec![Vec::new(); threads];
    for c in rec.conflicts() {
        let e = &c.edge;
        let attacker = if e.attacker < threads {
            e.attacker
        } else {
            threads
        };
        if e.victim < threads {
            matrix.conflicts[attacker][e.victim] += 1;
            by_victim[e.victim].push(c);
        }
        let h = hotspot_mut(&mut hotspots, e.line);
        match e.resolution {
            ConflictResolution::Abort(cause) => h.aborts[cause.index()] += 1,
            ConflictResolution::Nack => {
                h.nacks += 1;
                ledger.nacks += 1;
            }
            ConflictResolution::SigReject => {
                h.sig_rejects += 1;
                ledger.sig_rejects += 1;
            }
        }
        match e.action {
            RecoveryAction::Rai => ledger.rai += 1,
            RecoveryAction::Rri => ledger.rri += 1,
            RecoveryAction::Rwi => ledger.rwi += 1,
            RecoveryAction::None => {}
        }
    }

    for span in rec.spans() {
        match span.kind {
            SpanKind::Park => ledger.park_cycles += span.duration(),
            SpanKind::Txn => {}
            _ => continue,
        }
        if span.kind != SpanKind::Txn {
            continue;
        }
        let Track::Core(victim) = span.track else {
            continue;
        };
        if victim >= threads {
            continue;
        }
        // Edges this attempt received, in [start, end] of the span.
        // Per-victim edges are cycle-ordered (the engine drains them in
        // event order), so the window is a contiguous slice.
        let edges = &by_victim[victim];
        let lo = edges.partition_point(|c| c.cycle < span.start);
        let hi = edges.partition_point(|c| c.cycle <= span.end);
        let window = &edges[lo..hi];

        let rejected = window
            .iter()
            .any(|c| !matches!(c.edge.resolution, ConflictResolution::Abort(_)));
        if rejected {
            ledger.nacked_attempts += 1;
            match span.outcome {
                SpanEnd::Commit => ledger.saved += 1,
                SpanEnd::Switched => ledger.switched += 1,
                SpanEnd::Abort(_) => ledger.lost += 1,
                _ => ledger.truncated += 1,
            }
        }

        if let SpanEnd::Abort(cause) = span.outcome {
            // Attribute the whole aborted attempt once: prefer the last
            // protocol abort edge, then the last reject edge, else the
            // unattributed row (capacity/fault/local aborts).
            let blame = window
                .iter()
                .rev()
                .find(|c| matches!(c.edge.resolution, ConflictResolution::Abort(_)))
                .or_else(|| window.last());
            let attacker = blame
                .map(|c| c.edge.attacker.min(threads))
                .unwrap_or(threads);
            matrix.aborts[attacker][victim] += 1;
            matrix.wasted[attacker][victim] += span.duration();
            if let Some(c) = blame {
                hotspot_mut(&mut hotspots, c.edge.line).wasted += span.duration();
            } else {
                // Keep the cause split visible even without a line: the
                // unattributed aborts still reconcile via the matrix.
                let _ = cause;
            }
        }
    }

    hotspots.sort_by(|a, b| {
        (b.total_aborts(), b.nacks, b.sig_rejects, a.line.0).cmp(&(
            a.total_aborts(),
            a.nacks,
            a.sig_rejects,
            b.line.0,
        ))
    });

    ForensicsReport {
        matrix,
        hotspots,
        ledger,
    }
}

fn hotspot_mut(hotspots: &mut Vec<LineHotspot>, line: LineAddr) -> &mut LineHotspot {
    if let Some(i) = hotspots.iter().position(|h| h.line == line) {
        return &mut hotspots[i];
    }
    hotspots.push(LineHotspot {
        line,
        aborts: [0; 6],
        nacks: 0,
        sig_rejects: 0,
        wasted: 0,
    });
    hotspots.last_mut().unwrap()
}

impl ForensicsReport {
    /// Check the wasted-work identity against the run's statistics:
    /// the matrix total must equal the aborted-speculation phase bucket
    /// cycle-for-cycle.
    pub fn reconcile(&self, stats: &RunStats) -> Result<(), String> {
        let matrix = self.matrix.total_wasted();
        let phases = stats.aborted_cycles();
        if matrix == phases {
            Ok(())
        } else {
            Err(format!(
                "wasted-cycle mismatch: matrix total {matrix} != RunStats aborted cycles {phases}"
            ))
        }
    }

    /// Encode as a JSON document (schema [`BLAME_JSON_SCHEMA`]).
    pub fn to_json(&self, top_lines: usize) -> String {
        fn arr2(m: &[Vec<u64>]) -> String {
            let rows: Vec<String> = m
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row.iter().map(u64::to_string).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            format!("[{}]", rows.join(","))
        }
        let mut hot = Vec::new();
        for h in self.hotspots.iter().take(top_lines) {
            let causes: Vec<String> = AbortCause::ALL
                .iter()
                .map(|c| format!("\"{}\":{}", c.name(), h.aborts[c.index()]))
                .collect();
            hot.push(format!(
                "{{\"line\":\"{}\",\"aborts\":{{{}}},\"total_aborts\":{},\"nacks\":{},\"sig_rejects\":{},\"wasted\":{}}}",
                escape(&format!("{:?}", h.line)),
                causes.join(","),
                h.total_aborts(),
                h.nacks,
                h.sig_rejects,
                h.wasted,
            ));
        }
        let l = &self.ledger;
        format!(
            concat!(
                "{{\"schema\":{},\"threads\":{},",
                "\"matrix\":{{\"conflicts\":{},\"aborts\":{},\"wasted\":{}}},",
                "\"total_conflicts\":{},\"total_aborts\":{},\"total_wasted\":{},",
                "\"hotspots\":{},",
                "\"ledger\":{{\"nacked_attempts\":{},\"saved\":{},\"switched\":{},",
                "\"lost\":{},\"truncated\":{},\"saved_fraction\":{:.6},",
                "\"nacks\":{},\"sig_rejects\":{},\"rai\":{},\"rri\":{},\"rwi\":{},",
                "\"park_cycles\":{}}}}}\n",
            ),
            BLAME_JSON_SCHEMA,
            self.matrix.threads,
            arr2(&self.matrix.conflicts),
            arr2(&self.matrix.aborts),
            arr2(&self.matrix.wasted),
            self.matrix.total_conflicts(),
            self.matrix.total_aborts(),
            self.matrix.total_wasted(),
            format!("[{}]", hot.join(",")),
            l.nacked_attempts,
            l.saved,
            l.switched,
            l.lost,
            l.truncated,
            l.saved_fraction(),
            l.nacks,
            l.sig_rejects,
            l.rai,
            l.rri,
            l.rwi,
            l.park_cycles,
        )
    }

    /// Render the three artifacts as terminal tables.
    pub fn render(&self, top_lines: usize) -> String {
        let m = &self.matrix;
        let n = m.threads;
        let mut out = String::new();
        out.push_str(&format!(
            "conflict forensics: {} cores, {} conflict edges ({} nack, {} sig-reject), {} attributed aborts, {} wasted cycles\n",
            n,
            m.total_conflicts(),
            self.ledger.nacks,
            self.ledger.sig_rejects,
            m.total_aborts(),
            m.total_wasted(),
        ));

        out.push_str("\nattacker × victim (conflicts / aborts caused / wasted kcycles):\n");
        if n <= 16 {
            out.push_str("  atk\\vic");
            for v in 0..n {
                out.push_str(&format!("{v:>14}"));
            }
            out.push('\n');
            for a in 0..=n {
                let label = if a < n {
                    format!("c{a}")
                } else {
                    "env".to_string()
                };
                if m.conflicts[a].iter().sum::<u64>() == 0 && m.aborts[a].iter().sum::<u64>() == 0 {
                    continue;
                }
                out.push_str(&format!("  {label:<7}"));
                for v in 0..n {
                    if m.conflicts[a][v] == 0 && m.aborts[a][v] == 0 {
                        out.push_str(&format!("{:>14}", "."));
                    } else {
                        out.push_str(&format!(
                            "{:>14}",
                            format!(
                                "{}/{}/{:.0}k",
                                m.conflicts[a][v],
                                m.aborts[a][v],
                                m.wasted[a][v] as f64 / 1e3
                            )
                        ));
                    }
                }
                out.push('\n');
            }
        } else {
            // Wide systems: top pairs only.
            let mut pairs: Vec<(usize, usize)> = (0..=n)
                .flat_map(|a| (0..n).map(move |v| (a, v)))
                .filter(|&(a, v)| m.conflicts[a][v] > 0 || m.aborts[a][v] > 0)
                .collect();
            pairs.sort_by_key(|&(a, v)| std::cmp::Reverse((m.wasted[a][v], m.conflicts[a][v])));
            for &(a, v) in pairs.iter().take(top_lines) {
                let label = if a < n { format!("c{a}") } else { "env".into() };
                out.push_str(&format!(
                    "  {label:>4} -> c{v:<3} {:>8} conflicts {:>7} aborts {:>12} wasted\n",
                    m.conflicts[a][v], m.aborts[a][v], m.wasted[a][v]
                ));
            }
        }

        out.push_str(&format!(
            "\ntop {} lines by aborts caused:\n  line           aborts  mc lock mutex non_tran  nacks  sig  wasted\n",
            top_lines.min(self.hotspots.len())
        ));
        for h in self.hotspots.iter().take(top_lines) {
            out.push_str(&format!(
                "  {:<14} {:>6} {:>3} {:>4} {:>5} {:>8} {:>6} {:>4} {:>7}\n",
                format!("{:?}", h.line),
                h.total_aborts(),
                h.aborts[AbortCause::Mc.index()],
                h.aborts[AbortCause::Lock.index()],
                h.aborts[AbortCause::Mutex.index()],
                h.aborts[AbortCause::NonTran.index()],
                h.nacks,
                h.sig_rejects,
                h.wasted,
            ));
        }

        let l = &self.ledger;
        out.push_str(&format!(
            concat!(
                "\nrecovery ledger:\n",
                "  nacked attempts {:>8}   saved {:>8}   switched {:>6}   lost {:>8}   truncated {:>4}\n",
                "  saved fraction  {:>7.1}%   follow-ups: rai {} / rri {} / rwi {}   park cycles {}\n",
            ),
            l.nacked_attempts,
            l.saved,
            l.switched,
            l.lost,
            l.truncated,
            l.saved_fraction() * 100.0,
            l.rai,
            l.rri,
            l.rwi,
            l.park_cycles,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::obs::{ConflictEdge, ObsEvent, ObsSink, SpanKind};
    use sim_core::types::CoreId;

    fn conflict(
        cycle: Cycle,
        attacker: CoreId,
        victim: CoreId,
        line: u64,
        resolution: ConflictResolution,
        action: RecoveryAction,
    ) -> ObsEvent {
        ObsEvent::Conflict {
            cycle,
            edge: ConflictEdge {
                attacker,
                victim,
                line: LineAddr(line),
                attacker_prio: 1,
                victim_prio: 0,
                resolution,
                action,
            },
        }
    }

    fn txn(rec: &mut Recorder, core: CoreId, start: Cycle, end: Cycle, outcome: SpanEnd) {
        rec.event(ObsEvent::SpanBegin {
            cycle: start,
            track: Track::Core(core),
            kind: SpanKind::Txn,
            core,
        });
        rec.event(ObsEvent::SpanEnd {
            cycle: end,
            track: Track::Core(core),
            kind: SpanKind::Txn,
            core,
            end: outcome,
        });
    }

    #[test]
    fn attribution_prefers_abort_edge_and_reconciles() {
        let mut rec = Recorder::default();
        // Core 1 gets NACKed by core 0, then aborted by core 2.
        rec.event(conflict(
            12,
            0,
            1,
            0x40,
            ConflictResolution::Nack,
            RecoveryAction::Rwi,
        ));
        rec.event(conflict(
            18,
            2,
            1,
            0x41,
            ConflictResolution::Abort(AbortCause::Mc),
            RecoveryAction::None,
        ));
        txn(&mut rec, 1, 10, 20, SpanEnd::Abort(AbortCause::Mc));
        // Core 2 aborts for capacity with no conflict edge: unattributed.
        txn(&mut rec, 2, 5, 35, SpanEnd::Abort(AbortCause::Of));
        // Core 0 commits after a NACK: a saved recovery.
        rec.event(conflict(
            42,
            2,
            0,
            0x40,
            ConflictResolution::Nack,
            RecoveryAction::Rwi,
        ));
        txn(&mut rec, 0, 40, 50, SpanEnd::Commit);
        rec.finish(60);

        let r = analyze(&rec, 3);
        assert_eq!(r.matrix.aborts[2][1], 1, "abort edge wins attribution");
        assert_eq!(r.matrix.wasted[2][1], 10);
        assert_eq!(r.matrix.aborts[3][2], 1, "capacity abort unattributed");
        assert_eq!(r.matrix.wasted[3][2], 30);
        assert_eq!(r.matrix.total_wasted(), 40);
        assert_eq!(r.matrix.conflicts[0][1], 1);
        assert_eq!(r.ledger.nacked_attempts, 2);
        assert_eq!(r.ledger.saved, 1);
        assert_eq!(r.ledger.lost, 1);
        assert!((r.ledger.saved_fraction() - 0.5).abs() < 1e-9);

        let mut stats = RunStats::default();
        stats.phases[sim_core::stats::Phase::Aborted.index()] = 40;
        r.reconcile(&stats).unwrap();
        stats.phases[sim_core::stats::Phase::Aborted.index()] = 41;
        assert!(r.reconcile(&stats).is_err());
    }

    #[test]
    fn nack_edge_attributes_local_self_abort() {
        // RAI: the victim aborts itself after a NACK — no protocol abort
        // edge exists, the NACKer still gets the blame.
        let mut rec = Recorder::default();
        rec.event(conflict(
            15,
            0,
            1,
            0x80,
            ConflictResolution::Nack,
            RecoveryAction::Rai,
        ));
        txn(&mut rec, 1, 10, 17, SpanEnd::Abort(AbortCause::Mc));
        rec.finish(20);
        let r = analyze(&rec, 2);
        assert_eq!(r.matrix.aborts[0][1], 1);
        assert_eq!(r.matrix.wasted[0][1], 7);
        assert_eq!(r.ledger.rai, 1);
        assert_eq!(r.ledger.lost, 1);
    }

    #[test]
    fn hotspots_rank_by_aborts_then_nacks() {
        let mut rec = Recorder::default();
        for i in 0..3 {
            rec.event(conflict(
                i,
                0,
                1,
                0x10,
                ConflictResolution::Nack,
                RecoveryAction::Rwi,
            ));
        }
        rec.event(conflict(
            5,
            0,
            1,
            0x20,
            ConflictResolution::Abort(AbortCause::Mc),
            RecoveryAction::None,
        ));
        rec.finish(10);
        let r = analyze(&rec, 2);
        assert_eq!(r.hotspots[0].line, LineAddr(0x20));
        assert_eq!(r.hotspots[0].total_aborts(), 1);
        assert_eq!(r.hotspots[1].line, LineAddr(0x10));
        assert_eq!(r.hotspots[1].nacks, 3);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut rec = Recorder::default();
        rec.event(conflict(
            3,
            0,
            1,
            0x40,
            ConflictResolution::SigReject,
            RecoveryAction::Rwi,
        ));
        txn(&mut rec, 1, 1, 9, SpanEnd::Abort(AbortCause::Lock));
        rec.finish(10);
        let r = analyze(&rec, 2);
        let doc = r.to_json(8);
        let v = sim_core::json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(sim_core::json::Json::as_f64),
            Some(BLAME_JSON_SCHEMA as f64)
        );
        assert_eq!(
            v.get("total_wasted").and_then(sim_core::json::Json::as_f64),
            Some(8.0)
        );
        let rendered = r.render(8);
        assert!(rendered.contains("recovery ledger"));
        assert!(rendered.contains("sig-reject"));
    }
}
