//! # tmobs — observability for the LockillerTM simulator
//!
//! The emitting layers (`lockiller`, `coherence`, `noc`) speak the small
//! vocabulary defined in `sim_core::obs`; this crate owns everything on
//! the *consuming* side:
//!
//! - [`recorder::Recorder`] — an [`sim_core::obs::ObsSink`] that pairs
//!   span begin/end events into closed [`recorder::Span`]s and groups
//!   periodic metric samples into per-tick rows;
//! - [`registry::MetricsRegistry`] — the union of every layer's metric
//!   registrations, plus fixed-bucket [`registry::Histogram`]s (txn
//!   length, park latency, bank queue depth) built from a recording;
//! - exporters: [`chrome`] (Chrome trace-event JSON, loadable in
//!   Perfetto — one track per core plus LLC and NoC tracks), [`jsonl`]
//!   (metrics time series, one JSON object per sample tick), and
//!   [`summary`] (terminal occupancy heatmap + abort/NoC/LLC tables);
//! - [`forensics`] — conflict forensics derived from a recording: the
//!   attacker/victim matrix with wasted-cycle weights, the per-line
//!   hotspot table, and the recovery-outcome ledger (`tmtrace blame`);
//! - [`diff`] — schema-agnostic numeric JSON diff used as a run-to-run
//!   regression detector (`tmtrace diff`, bench, CI);
//! - [`latency`] — per-transaction-class latency percentile tables and
//!   the JSON block exporters embed, rendered from the engine's
//!   deterministic log-bucketed histograms (`sim_core::latency`);
//! - [`witness`] — replayable schedule witnesses written by the
//!   `tmverify` explorer (`tmtrace witness` renders them, `tmverify
//!   replay` re-executes them);
//! - [`session`] — a one-call harness running a STAMP workload on a
//!   Table-II system with a recorder attached, returning all artifacts;
//! - [`selfprof::SelfProfiler`] — host-side wall-clock accounting of the
//!   simulator's own phases (setup / simulate / export / epilogue);
//! - [`tmprof`] — exporters for the engine's scope-based host profile
//!   (`sim_core::prof`): collapsed-stack flamegraph, Chrome-trace
//!   nesting, the schema-v2 `selfprof.json` `"prof"` block, and the
//!   per-phase shares `experiments engine` records (`tmtrace flame`);
//! - [`batch::BatchProgress`] — thread-safe completion counter + stderr
//!   progress lines for batch executors (the bench crate's `tmlab`);
//! - the `tmtrace` CLI binary, which writes the artifacts to disk.
//!
//! Attaching a recorder never changes a simulation's outcome: sinks are
//! write-only, and the engine's emission sites are dead branches when no
//! sink is installed (see `sim_core::obs`).

pub mod batch;
pub mod chrome;
pub mod diff;
pub mod forensics;
pub mod jsonl;
pub mod latency;
pub mod recorder;
pub mod registry;
pub mod selfprof;
pub mod session;
pub mod summary;
pub mod tmprof;
pub mod witness;

/// Minimal JSON support (escaping + a recursive-descent parser); lives in
/// `sim_core` so statistics serialization can share it, re-exported here
/// because the exporters and their callers historically used `tmobs::json`.
pub use sim_core::json;

pub use batch::BatchProgress;
pub use chrome::{export_chrome, validate_chrome, ChromeSummary, TraceMeta};
pub use diff::{check_schema_match, diff_docs, diff_values, top_phase_movers, MetricDelta};
pub use forensics::{analyze, ConflictMatrix, ForensicsReport, LineHotspot, RecoveryLedger};
pub use jsonl::export_jsonl;
pub use latency::{latency_json, render_latency_table};
pub use recorder::{ConflictEvent, Recorder, SampleRow, Span};
pub use registry::{standard_histograms, Histogram, MetricsRegistry};
pub use selfprof::SelfProfiler;
pub use session::{run_trace, TraceArtifacts, TraceConfig};
pub use summary::render_summary;
pub use tmprof::{chrome_prof, flame, flame_total_us, phase_shares, prof_json, render_prof};
pub use witness::{Witness, WITNESS_VERSION};
