//! One-call tracing harness: run a STAMP workload on a Table-II system
//! with a recorder attached and return every artifact (`tmtrace` is a
//! thin CLI over this; tests drive it directly).

use crate::chrome::{export_chrome, TraceMeta};
use crate::forensics::{self, ForensicsReport};
use crate::jsonl::export_jsonl;
use crate::recorder::Recorder;
use crate::registry::MetricsRegistry;
use crate::selfprof::SelfProfiler;
use crate::summary::render_summary;
use lockiller::system::SystemKind;
use lockiller::Runner;
use sim_core::config::SystemConfig;
use sim_core::obs::ObsHandle;
use sim_core::stats::RunStats;
use sim_core::types::Cycle;
use stamp::{Scale, Workload, WorkloadKind};

/// What to run and how to sample it.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    pub workload: WorkloadKind,
    pub system: SystemKind,
    pub threads: usize,
    pub scale: Scale,
    pub seed: u64,
    /// Metric sampling interval in simulated cycles.
    pub sample_every: Cycle,
    /// Hardware configuration (Table I by default).
    pub hw: SystemConfig,
    /// Enable `tmprof` host-side engine profiling (see `sim_core::prof`):
    /// the artifacts gain the phase tree ([`TraceArtifacts::host_prof`])
    /// and `selfprof_json` gains a `"prof"` block. Pure host
    /// observation — the simulated outcome is byte-identical either way.
    pub profile: bool,
}

impl TraceConfig {
    pub fn new(workload: WorkloadKind, system: SystemKind) -> TraceConfig {
        TraceConfig {
            workload,
            system,
            threads: 4,
            scale: Scale::Tiny,
            seed: 0xC0FFEE,
            sample_every: ObsHandle::DEFAULT_SAMPLE_EVERY,
            hw: SystemConfig::table1(),
            profile: false,
        }
    }
}

/// Everything a traced run produces.
#[derive(Debug)]
pub struct TraceArtifacts {
    pub stats: RunStats,
    pub recorder: Recorder,
    /// Chrome trace-event JSON (load in Perfetto / chrome://tracing).
    pub chrome_json: String,
    /// Metrics time series (schema line + one JSON object per tick).
    pub metrics_jsonl: String,
    /// Terminal summary (occupancy heatmap, tables, histograms).
    pub summary: String,
    /// Event-glyph timeline from the engine's structured trace.
    pub timeline: String,
    /// Host wall-clock per simulator phase.
    pub profile: String,
    /// Stable JSON form of the self-profile, extended with engine
    /// self-metrics (events processed, host-ns per simulated cycle,
    /// event-queue high-water) — `tmtrace` archives it for CI.
    pub selfprof_json: String,
    /// The workload's own post-run validation result.
    pub validation: Result<(), String>,
    /// Conflict forensics (attacker/victim matrix, hotspots, recovery
    /// ledger) derived from the recording; `tmtrace blame` renders it.
    pub forensics: ForensicsReport,
    /// Engine host-profile phase tree; `Some` iff
    /// [`TraceConfig::profile`] was set. `tmtrace flame` exports it.
    pub host_prof: Option<sim_core::prof::ProfReport>,
}

/// Run `cfg` to completion and export all artifacts.
pub fn run_trace(cfg: &TraceConfig) -> TraceArtifacts {
    let mut prof = SelfProfiler::start();
    let mut prog = Workload::with_scale(cfg.workload, cfg.threads, cfg.scale);
    let (handle, rec) = Recorder::shared(cfg.sample_every);
    let mut runner = Runner::new(cfg.system)
        .config(cfg.hw.clone())
        .threads(cfg.threads)
        .seed(cfg.seed)
        .obs(handle);
    if cfg.profile {
        runner = runner.profile();
    }
    prof.lap("setup");
    let mut out = runner.tracing().no_validate().run(&mut prog);
    let events = out.take_trace_events();
    let host_prof = out.host_prof.take();
    let (stats, mem) = (out.stats, out.mem);
    prof.lap("simulate");
    let validation = lockiller::Program::validate(&prog, &mem);
    let recorder = std::mem::take(&mut *rec.lock().expect("recorder poisoned"));
    let registry = MetricsRegistry::for_config(&cfg.hw);
    let meta = TraceMeta {
        workload: cfg.workload.name().to_string(),
        system: cfg.system.name().to_string(),
        threads: cfg.threads,
        seed: cfg.seed,
    };
    let chrome_json = export_chrome(&recorder, &meta, &stats);
    let metrics_jsonl = export_jsonl(&recorder, &registry, &stats);
    let summary = render_summary(&recorder, &stats);
    let timeline = lockiller::render_timeline(&events, cfg.threads, 100);
    let forensics = forensics::analyze(&recorder, cfg.threads);
    prof.lap("export");
    prof.finish();
    let selfprof_json = selfprof_with_engine(&prof, &stats, host_prof.as_ref());
    TraceArtifacts {
        stats,
        recorder,
        chrome_json,
        metrics_jsonl,
        summary,
        timeline,
        profile: prof.render(),
        selfprof_json,
        validation,
        forensics,
        host_prof,
    }
}

/// Combine the host-side phase profile with engine self-metrics sampled
/// from the run's stats — simulated work done, host cost per simulated
/// cycle (from the `simulate` lap), the event-queue high-water — and,
/// when the engine was profiled, the `tmprof` phase tree (the schema-v2
/// `"prof"` block). Every ratio is 0 (never NaN/Inf) when a denominator
/// is 0.
fn selfprof_with_engine(
    prof: &SelfProfiler,
    stats: &RunStats,
    host_prof: Option<&sim_core::prof::ProfReport>,
) -> String {
    let simulate_s = prof
        .phases()
        .iter()
        .find(|(name, _)| name == "simulate")
        .map(|(_, d)| d.as_secs_f64())
        .unwrap_or(0.0);
    let ns_per_cycle = if stats.cycles == 0 {
        0.0
    } else {
        simulate_s * 1e9 / stats.cycles as f64
    };
    let cycles_per_sec = if simulate_s <= 0.0 {
        0.0
    } else {
        stats.cycles as f64 / simulate_s
    };
    let mut doc = prof.to_json();
    // Splice the engine block into the profile object (before the final
    // brace) so the artifact stays one flat JSON document.
    doc.pop();
    doc.push_str(&format!(
        ",\"engine\":{{\"sim_cycles\":{},\"events_processed\":{},\"event_queue_peak\":{},\"ns_per_cycle\":{ns_per_cycle:.3},\"sim_cycles_per_sec\":{cycles_per_sec:.1}}}",
        stats.cycles, stats.events_processed, stats.event_queue_peak
    ));
    if let Some(r) = host_prof {
        doc.push_str(&format!(",\"prof\":{}", crate::tmprof::prof_json(r)));
    }
    doc.push('}');
    doc
}
