//! The metrics registry (every layer's registrations in one place) and
//! fixed-bucket histograms derived from a recording.

use crate::recorder::Recorder;
use sim_core::config::SystemConfig;
use sim_core::obs::{Metric, MetricSpec, SpanKind};

/// Union of the metric registrations contributed by the engine
/// (`lockiller::engine`), the memory system (`coherence::memsys`), and
/// the mesh (`noc::mesh`) for one hardware configuration.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    specs: Vec<MetricSpec>,
}

impl MetricsRegistry {
    pub fn for_config(cfg: &SystemConfig) -> MetricsRegistry {
        let mut specs = lockiller::engine::obs_metric_specs();
        // One LLC bank per tile (the directory is banked across cores).
        specs.extend(coherence::memsys::obs_metric_specs(cfg.num_cores));
        specs.extend(noc::mesh::obs_metric_specs(cfg.noc.width, cfg.noc.height));
        MetricsRegistry { specs }
    }

    pub fn specs(&self) -> &[MetricSpec] {
        &self.specs
    }

    pub fn spec(&self, metric: Metric) -> Option<&MetricSpec> {
        self.specs.iter().find(|s| s.metric == metric)
    }

    pub fn len(&self) -> usize {
        self.specs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one overflow bucket catches the rest.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub name: &'static str,
    pub unit: &'static str,
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    pub fn new(name: &'static str, unit: &'static str, bounds: Vec<u64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            name,
            unit,
            bounds,
            counts,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn observe(&mut self, v: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact merge of another histogram with identical bounds: bucket
    /// counts add element-wise, so merging is associative and
    /// commutative. Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (0.0 ..= 1.0): the inclusive upper edge
    /// of the bucket holding rank `ceil(q * count)`, with the overflow
    /// bucket reporting the recorded max (its true edge is unbounded).
    /// 0 on an empty histogram — never NaN/Inf, and safe for
    /// single-bucket layouts where every observation lands in one bin.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (bound, n) in self.buckets() {
            cum += n;
            if cum >= rank {
                return if bound == u64::MAX {
                    self.max
                } else {
                    bound.min(self.max)
                };
            }
        }
        self.max
    }

    /// `(upper_bound, count)` per bucket; the final entry is the
    /// overflow bucket with `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Terminal rendering: one `#`-bar row per non-empty bucket.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} ({}): n={} mean={:.1} max={}\n",
            self.name,
            self.unit,
            self.count,
            self.mean(),
            self.max
        );
        if self.count == 0 {
            return out;
        }
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (bound, n) in self.buckets() {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat((n * 40 / peak).max(1) as usize);
            let label = if bound == u64::MAX {
                "   +inf".to_string()
            } else {
                format!("{bound:>7}")
            };
            out.push_str(&format!("  <= {label} {n:>8} {bar}\n"));
        }
        out
    }
}

/// The standard histograms the issue calls out, built from a recording:
/// transaction length, NACK-to-wake (park) latency, and per-bank queue
/// depth as seen by the periodic sampler.
pub fn standard_histograms(rec: &Recorder) -> Vec<Histogram> {
    let mut txn = Histogram::new(
        "txn_length",
        "cycles",
        vec![16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536],
    );
    for s in rec.spans_of(SpanKind::Txn) {
        txn.observe(s.duration());
    }
    let mut park = Histogram::new(
        "park_latency",
        "cycles",
        vec![8, 16, 32, 64, 128, 256, 512, 1024, 4096],
    );
    for s in rec.spans_of(SpanKind::Park) {
        park.observe(s.duration());
    }
    let mut depth = Histogram::new("bank_queue_depth", "reqs", vec![0, 1, 2, 4, 8, 16, 32, 64]);
    for row in rec.samples() {
        for &(metric, value) in &row.values {
            if matches!(metric, Metric::BankQueueDepth(_)) {
                depth.observe(value);
            }
        }
    }
    vec![txn, park, depth]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_layers() {
        let cfg = SystemConfig::table1();
        let reg = MetricsRegistry::for_config(&cfg);
        // 8 engine + 2 per bank + (2 global + 1 per link) NoC.
        let links = cfg.noc.width * cfg.noc.height * 4;
        assert_eq!(reg.len(), 8 + 2 * cfg.num_cores + 2 + links);
        assert!(reg.spec(Metric::Commits).is_some());
        assert!(reg.spec(Metric::EventsProcessed).is_some());
        assert!(reg.spec(Metric::EventQueueDepth).is_some());
        assert!(reg.spec(Metric::BankQueueDepth(0)).is_some());
        assert!(reg.spec(Metric::LinkBusy(0)).is_some());
        // Names in specs match the canonical Metric names.
        for s in reg.specs() {
            assert_eq!(s.name, s.metric.name());
        }
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new("t", "cycles", vec![10, 100]);
        for v in [1, 10, 11, 1000] {
            h.observe(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (u64::MAX, 1)]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 255.5).abs() < 1e-9);
        assert!(h.render().contains("+inf"));
    }

    #[test]
    fn empty_histogram_renders_without_bars() {
        let h = Histogram::new("t", "cycles", vec![10]);
        assert_eq!(h.mean(), 0.0);
        assert!(!h.render().contains('#'));
    }

    #[test]
    fn empty_and_single_bucket_percentiles_are_guarded() {
        // Empty: every quantile is 0, never NaN/Inf.
        let empty = Histogram::new("t", "cycles", vec![10, 100]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.percentile(q), 0);
        }
        // Single-bucket layout: everything lands in one bin; quantiles
        // report min(bound, max) so they never exceed what was seen.
        let mut one = Histogram::new("t", "cycles", vec![1000]);
        one.observe(7);
        assert_eq!(one.percentile(0.5), 7);
        assert_eq!(one.percentile(1.0), 7);
        // Overflow-only content reports the recorded max, not +inf.
        let mut over = Histogram::new("t", "cycles", vec![10]);
        over.observe(500);
        assert_eq!(over.percentile(0.99), 500);
    }

    #[test]
    fn bucket_edges_are_inclusive() {
        let mut h = Histogram::new("t", "cycles", vec![10, 100]);
        h.observe(10); // exactly on the first edge: belongs to bucket 0
        h.observe(11); // first value past the edge: bucket 1
        h.observe(100);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 1), (100, 2), (u64::MAX, 0)]);
    }

    #[test]
    fn merge_is_associative_and_matches_direct_observation() {
        let bounds = vec![10u64, 100, 1000];
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new("t", "cycles", bounds.clone());
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let (a, b, c) = (mk(&[1, 50]), mk(&[200, 5000]), mk(&[10]));
        let all = mk(&[1, 50, 200, 5000, 10]);
        // (a+b)+c
        let mut ab_c = mk(&[]);
        ab_c.merge(&a);
        ab_c.merge(&b);
        ab_c.merge(&c);
        // a+(b+c)
        let mut bc = mk(&[]);
        bc.merge(&b);
        bc.merge(&c);
        let mut a_bc = mk(&[]);
        a_bc.merge(&a);
        a_bc.merge(&bc);
        for h in [&ab_c, &a_bc] {
            assert_eq!(
                h.buckets().collect::<Vec<_>>(),
                all.buckets().collect::<Vec<_>>()
            );
            assert_eq!(h.count(), all.count());
            assert_eq!(h.max(), all.max());
            assert!((h.mean() - all.mean()).abs() < 1e-12);
            assert_eq!(h.percentile(0.5), all.percentile(0.5));
        }
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new("t", "cycles", vec![10]);
        let b = Histogram::new("t", "cycles", vec![20]);
        a.merge(&b);
    }
}
