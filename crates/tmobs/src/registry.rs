//! The metrics registry (every layer's registrations in one place) and
//! fixed-bucket histograms derived from a recording.

use crate::recorder::Recorder;
use sim_core::config::SystemConfig;
use sim_core::obs::{Metric, MetricSpec, SpanKind};

/// Union of the metric registrations contributed by the engine
/// (`lockiller::engine`), the memory system (`coherence::memsys`), and
/// the mesh (`noc::mesh`) for one hardware configuration.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    specs: Vec<MetricSpec>,
}

impl MetricsRegistry {
    pub fn for_config(cfg: &SystemConfig) -> MetricsRegistry {
        let mut specs = lockiller::engine::obs_metric_specs();
        // One LLC bank per tile (the directory is banked across cores).
        specs.extend(coherence::memsys::obs_metric_specs(cfg.num_cores));
        specs.extend(noc::mesh::obs_metric_specs(cfg.noc.width, cfg.noc.height));
        MetricsRegistry { specs }
    }

    pub fn specs(&self) -> &[MetricSpec] {
        &self.specs
    }

    pub fn spec(&self, metric: Metric) -> Option<&MetricSpec> {
        self.specs.iter().find(|s| s.metric == metric)
    }

    pub fn len(&self) -> usize {
        self.specs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one overflow bucket catches the rest.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub name: &'static str,
    pub unit: &'static str,
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    pub fn new(name: &'static str, unit: &'static str, bounds: Vec<u64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            name,
            unit,
            bounds,
            counts,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn observe(&mut self, v: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// `(upper_bound, count)` per bucket; the final entry is the
    /// overflow bucket with `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Terminal rendering: one `#`-bar row per non-empty bucket.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} ({}): n={} mean={:.1} max={}\n",
            self.name,
            self.unit,
            self.count,
            self.mean(),
            self.max
        );
        if self.count == 0 {
            return out;
        }
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (bound, n) in self.buckets() {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat((n * 40 / peak).max(1) as usize);
            let label = if bound == u64::MAX {
                "   +inf".to_string()
            } else {
                format!("{bound:>7}")
            };
            out.push_str(&format!("  <= {label} {n:>8} {bar}\n"));
        }
        out
    }
}

/// The standard histograms the issue calls out, built from a recording:
/// transaction length, NACK-to-wake (park) latency, and per-bank queue
/// depth as seen by the periodic sampler.
pub fn standard_histograms(rec: &Recorder) -> Vec<Histogram> {
    let mut txn = Histogram::new(
        "txn_length",
        "cycles",
        vec![16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536],
    );
    for s in rec.spans_of(SpanKind::Txn) {
        txn.observe(s.duration());
    }
    let mut park = Histogram::new(
        "park_latency",
        "cycles",
        vec![8, 16, 32, 64, 128, 256, 512, 1024, 4096],
    );
    for s in rec.spans_of(SpanKind::Park) {
        park.observe(s.duration());
    }
    let mut depth = Histogram::new("bank_queue_depth", "reqs", vec![0, 1, 2, 4, 8, 16, 32, 64]);
    for row in rec.samples() {
        for &(metric, value) in &row.values {
            if matches!(metric, Metric::BankQueueDepth(_)) {
                depth.observe(value);
            }
        }
    }
    vec![txn, park, depth]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_layers() {
        let cfg = SystemConfig::table1();
        let reg = MetricsRegistry::for_config(&cfg);
        // 6 engine + 2 per bank + (2 global + 1 per link) NoC.
        let links = cfg.noc.width * cfg.noc.height * 4;
        assert_eq!(reg.len(), 6 + 2 * cfg.num_cores + 2 + links);
        assert!(reg.spec(Metric::Commits).is_some());
        assert!(reg.spec(Metric::BankQueueDepth(0)).is_some());
        assert!(reg.spec(Metric::LinkBusy(0)).is_some());
        // Names in specs match the canonical Metric names.
        for s in reg.specs() {
            assert_eq!(s.name, s.metric.name());
        }
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new("t", "cycles", vec![10, 100]);
        for v in [1, 10, 11, 1000] {
            h.observe(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(10, 2), (100, 1), (u64::MAX, 1)]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 255.5).abs() < 1e-9);
        assert!(h.render().contains("+inf"));
    }

    #[test]
    fn empty_histogram_renders_without_bars() {
        let h = Histogram::new("t", "cycles", vec![10]);
        assert_eq!(h.mean(), 0.0);
        assert!(!h.render().contains('#'));
    }
}
