//! JSONL metrics exporter: a schema line followed by one JSON object per
//! sample tick, closed by a latency-histogram line. The output is a pure
//! function of the recording and stats, so two identically-seeded runs
//! produce byte-identical files.

use crate::json::escape;
use crate::latency::latency_json;
use crate::recorder::Recorder;
use crate::registry::MetricsRegistry;
use sim_core::stats::RunStats;

/// Serialize the sampled time series. Line 1 is the schema (every
/// registered metric with unit and help text); each following line is
/// `{"cycle": N, "metrics": {"name": value, ...}}` in emission order; the
/// final line is `{"latency": {...}}` with the run's per-class histograms.
pub fn export_jsonl(rec: &Recorder, reg: &MetricsRegistry, stats: &RunStats) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":[");
    for (i, s) in reg.specs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"unit\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\"}}",
            escape(&s.name),
            escape(s.unit),
            if s.metric.is_counter() {
                "counter"
            } else {
                "gauge"
            },
            escape(s.help)
        ));
    }
    out.push_str("]}\n");
    for row in rec.samples() {
        out.push_str(&format!("{{\"cycle\":{},\"metrics\":{{", row.cycle));
        for (i, (metric, value)) in row.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{value}", metric.name()));
        }
        out.push_str("}}\n");
    }
    out.push_str(&format!("{{\"latency\":{}}}\n", latency_json(stats)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use sim_core::config::SystemConfig;
    use sim_core::obs::{Metric, ObsEvent, ObsSink};

    #[test]
    fn every_line_is_valid_json() {
        let mut rec = Recorder::default();
        for (cycle, value) in [(0, 0), (2000, 5)] {
            rec.event(ObsEvent::Sample {
                cycle,
                metric: Metric::Commits,
                value,
            });
            rec.event(ObsEvent::Sample {
                cycle,
                metric: Metric::BankQueueDepth(3),
                value: 1,
            });
        }
        rec.finish(4000);
        let reg = MetricsRegistry::for_config(&SystemConfig::table1());
        let mut stats = sim_core::stats::RunStats::new(2);
        stats
            .latency
            .record_class(sim_core::latency::TxnClass::HtmCommit, 42);
        let doc = export_jsonl(&rec, &reg, &stats);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 4);
        let schema = json::parse(lines[0]).unwrap();
        assert_eq!(
            schema.get("schema").unwrap().as_arr().unwrap().len(),
            reg.len()
        );
        let row = json::parse(lines[2]).unwrap();
        assert_eq!(row.get("cycle").unwrap().as_f64(), Some(2000.0));
        let metrics = row.get("metrics").unwrap();
        assert_eq!(metrics.get("engine.commits").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            metrics.get("llc.bank3.queue_depth").unwrap().as_f64(),
            Some(1.0)
        );
        // The closing line carries the latency histograms and round-trips.
        let last = json::parse(lines[3]).unwrap();
        let lat =
            sim_core::latency::LatencyStats::from_json_value(last.get("latency").unwrap()).unwrap();
        assert_eq!(lat, stats.latency);
    }
}
