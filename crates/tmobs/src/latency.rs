//! Latency rendering: the per-transaction-class percentile table shown
//! by `tmtrace summary` and the compact JSON block the exporters embed.
//!
//! The numbers come from `RunStats::latency` — the engine's deterministic
//! log-bucketed histograms — so everything here is presentation: the
//! quantile math (including the NaN-free empty-class behavior) lives in
//! `sim_core::latency`.

use sim_core::latency::{LatencyHist, TxnClass};
use sim_core::stats::RunStats;

fn row(name: &str, h: &LatencyHist) -> String {
    format!(
        "  {:<15} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10.1}\n",
        name,
        h.count(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999(),
        h.max(),
        h.mean()
    )
}

/// Render the per-class latency percentile table plus the three
/// lifecycle-phase distributions. Every class row is always present —
/// empty classes print zeros, never NaN/Inf.
pub fn render_latency_table(stats: &RunStats) -> String {
    let mut out = String::from("transaction latency by outcome class (simulated cycles):\n");
    out.push_str(&format!(
        "  {:<15} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "class", "count", "p50", "p90", "p99", "p999", "max", "mean"
    ));
    for c in TxnClass::ALL {
        out.push_str(&row(c.name(), stats.latency.class(c)));
    }
    out.push_str("lifecycle phases:\n");
    out.push_str(&row("park_wait", &stats.latency.park));
    out.push_str(&row("fallback_hold", &stats.latency.fallback_hold));
    out.push_str(&row("first_abort", &stats.latency.first_abort));
    out
}

/// The latency block exporters embed: identical to the `latency` object
/// inside `RunStats::to_json`, re-exposed so artifacts that don't carry
/// full stats (Chrome traces, metrics JSONL) still ship the histograms.
pub fn latency_json(stats: &RunStats) -> String {
    stats.latency.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::latency::TxnClass;
    use sim_core::stats::AbortCause;

    #[test]
    fn table_has_every_class_row_and_no_nan() {
        let stats = RunStats::new(2);
        let t = render_latency_table(&stats);
        for c in TxnClass::ALL {
            assert!(t.contains(c.name()), "missing class row {}", c.name());
        }
        assert!(t.contains("park_wait"));
        assert!(t.contains("fallback_hold"));
        assert!(t.contains("first_abort"));
        assert!(!t.contains("NaN") && !t.contains("inf"), "{t}");
    }

    #[test]
    fn table_shows_recorded_percentiles() {
        let mut stats = RunStats::new(2);
        for _ in 0..10 {
            stats.latency.record_class(TxnClass::HtmCommit, 100);
        }
        stats
            .latency
            .record_class(TxnClass::Retry(AbortCause::Of), 7);
        let t = render_latency_table(&stats);
        let htm_row = t
            .lines()
            .find(|l| l.trim_start().starts_with("htm_commit"))
            .unwrap();
        assert!(htm_row.contains("10"), "{htm_row}");
        let json = latency_json(&stats);
        assert!(json.contains("\"retry_of\":{\"count\":1"));
    }
}
