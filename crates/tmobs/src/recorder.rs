//! The in-memory sink: pairs span begin/end events into closed spans and
//! groups metric samples into per-tick rows.
//!
//! The recorder is deliberately tolerant: an end with no matching open
//! span is counted (not an error), and spans still open when the run
//! finishes are auto-closed at the final cycle with [`SpanEnd::End`].
//! Both situations are legitimate — e.g. a park span closed by an abort
//! racing its own wake-up, or a transaction still running when the last
//! thread exits.

use sim_core::obs::{ConflictEdge, Metric, ObsEvent, ObsHandle, ObsSink, SpanEnd, SpanKind, Track};
use sim_core::types::{CoreId, Cycle};
use std::sync::{Arc, Mutex};

/// A closed span in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub track: Track,
    pub kind: SpanKind,
    /// The acting core (equals the track core on per-core tracks; the
    /// requester on the LLC track).
    pub core: CoreId,
    pub start: Cycle,
    pub end: Cycle,
    pub outcome: SpanEnd,
}

impl Span {
    pub fn duration(&self) -> Cycle {
        self.end - self.start
    }
}

/// A recorded conflict edge, stamped with the simulated cycle of the
/// arbitration decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictEvent {
    pub cycle: Cycle,
    pub edge: ConflictEdge,
}

/// Every metric observed at one sample tick, in emission order.
#[derive(Clone, Debug)]
pub struct SampleRow {
    pub cycle: Cycle,
    pub values: Vec<(Metric, u64)>,
}

/// An [`ObsSink`] that records everything for post-run export.
#[derive(Debug, Default)]
pub struct Recorder {
    spans: Vec<Span>,
    /// Still-open spans, in open order. Linear search is fine: at most a
    /// handful per core are ever open at once.
    open: Vec<Span>,
    samples: Vec<SampleRow>,
    conflicts: Vec<ConflictEvent>,
    /// Closed-span storage bound; `None` (the default) is unbounded.
    /// When the cap is hit, further closing spans are dropped (counted in
    /// [`Recorder::dropped_spans`]); pairing state keeps working, so the
    /// kept prefix is still well-formed.
    span_cap: Option<usize>,
    dropped_spans: u64,
    unmatched_ends: u64,
    auto_closed: u64,
    end_cycle: Cycle,
    finished: bool,
}

impl Recorder {
    /// A shared recorder plus the [`ObsHandle`] to hand to
    /// `Runner::obs`. Keep the returned `Arc` to read the recording back
    /// after the run.
    pub fn shared(sample_every: Cycle) -> (ObsHandle, Arc<Mutex<Recorder>>) {
        let rec = Arc::new(Mutex::new(Recorder::default()));
        let handle = ObsHandle::new(rec.clone(), sample_every);
        (handle, rec)
    }

    /// A recorder that keeps at most `cap` closed spans (bounded memory
    /// for long runs); see [`Recorder::dropped_spans`].
    pub fn with_span_cap(cap: usize) -> Recorder {
        Recorder {
            span_cap: Some(cap),
            ..Recorder::default()
        }
    }

    fn push_span(&mut self, s: Span) {
        match self.span_cap {
            Some(cap) if self.spans.len() >= cap => self.dropped_spans += 1,
            _ => self.spans.push(s),
        }
    }

    /// Closed spans, in close order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Conflict edges, in emission order.
    pub fn conflicts(&self) -> &[ConflictEvent] {
        &self.conflicts
    }

    /// Closing spans discarded because the span cap was reached.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Sample rows, in emission (cycle) order.
    pub fn samples(&self) -> &[SampleRow] {
        &self.samples
    }

    /// End events that found no matching open span.
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// Spans force-closed at [`ObsSink::finish`].
    pub fn auto_closed(&self) -> u64 {
        self.auto_closed
    }

    /// Final simulated cycle (0 until `finish` runs).
    pub fn end_cycle(&self) -> Cycle {
        self.end_cycle
    }

    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Closed spans of one kind.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }
}

impl ObsSink for Recorder {
    fn event(&mut self, ev: ObsEvent) {
        match ev {
            ObsEvent::SpanBegin {
                cycle,
                track,
                kind,
                core,
            } => {
                self.open.push(Span {
                    track,
                    kind,
                    core,
                    start: cycle,
                    end: cycle,
                    outcome: SpanEnd::End,
                });
            }
            ObsEvent::SpanEnd {
                cycle,
                track,
                kind,
                core,
                end,
            } => {
                // Most-recent matching open span wins (spans of one kind
                // on one track never genuinely interleave, but closing
                // LIFO keeps nesting sane if they ever did).
                let found = self
                    .open
                    .iter()
                    .rposition(|s| s.track == track && s.kind == kind && s.core == core);
                if let Some(i) = found {
                    let mut s = self.open.remove(i);
                    s.end = cycle;
                    s.outcome = end;
                    self.push_span(s);
                } else {
                    self.unmatched_ends += 1;
                }
            }
            ObsEvent::Sample {
                cycle,
                metric,
                value,
            } => match self.samples.last_mut() {
                Some(row) if row.cycle == cycle => row.values.push((metric, value)),
                _ => self.samples.push(SampleRow {
                    cycle,
                    values: vec![(metric, value)],
                }),
            },
            ObsEvent::Conflict { cycle, edge } => {
                self.conflicts.push(ConflictEvent { cycle, edge });
            }
        }
    }

    fn finish(&mut self, cycle: Cycle) {
        self.end_cycle = self.end_cycle.max(cycle);
        for mut s in std::mem::take(&mut self.open) {
            s.end = cycle.max(s.start);
            s.outcome = SpanEnd::End;
            self.push_span(s);
            self.auto_closed += 1;
        }
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(cycle: Cycle, kind: SpanKind, core: CoreId) -> ObsEvent {
        ObsEvent::SpanBegin {
            cycle,
            track: Track::Core(core),
            kind,
            core,
        }
    }

    fn end(cycle: Cycle, kind: SpanKind, core: CoreId, how: SpanEnd) -> ObsEvent {
        ObsEvent::SpanEnd {
            cycle,
            track: Track::Core(core),
            kind,
            core,
            end: how,
        }
    }

    #[test]
    fn pairs_begin_and_end() {
        let mut r = Recorder::default();
        r.event(begin(10, SpanKind::Txn, 0));
        r.event(begin(12, SpanKind::Txn, 1));
        r.event(end(20, SpanKind::Txn, 0, SpanEnd::Commit));
        r.finish(30);
        assert_eq!(r.spans().len(), 2);
        let s = &r.spans()[0];
        assert_eq!((s.start, s.end, s.outcome), (10, 20, SpanEnd::Commit));
        // Core 1's span was auto-closed at the final cycle.
        let s = &r.spans()[1];
        assert_eq!((s.core, s.end, s.outcome), (1, 30, SpanEnd::End));
        assert_eq!(r.auto_closed(), 1);
        assert_eq!(r.unmatched_ends(), 0);
    }

    #[test]
    fn unmatched_end_is_counted_not_fatal() {
        let mut r = Recorder::default();
        r.event(end(5, SpanKind::Park, 0, SpanEnd::Woken));
        assert_eq!(r.unmatched_ends(), 1);
        assert!(r.spans().is_empty());
    }

    #[test]
    fn samples_group_by_cycle() {
        let mut r = Recorder::default();
        for (cycle, metric, value) in [
            (0, Metric::Commits, 0),
            (0, Metric::Aborts, 0),
            (2000, Metric::Commits, 7),
        ] {
            r.event(ObsEvent::Sample {
                cycle,
                metric,
                value,
            });
        }
        assert_eq!(r.samples().len(), 2);
        assert_eq!(r.samples()[0].values.len(), 2);
        assert_eq!(r.samples()[1].cycle, 2000);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let mut r = Recorder::with_span_cap(2);
        for i in 0..4u64 {
            r.event(begin(i * 10, SpanKind::Txn, 0));
            r.event(end(i * 10 + 5, SpanKind::Txn, 0, SpanEnd::Commit));
        }
        r.event(begin(100, SpanKind::Park, 1));
        r.finish(200);
        // Two kept, two dropped at close time, one dropped at auto-close.
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.dropped_spans(), 3);
        assert_eq!(r.auto_closed(), 1);
        assert_eq!(r.spans()[0].start, 0);
        assert_eq!(r.spans()[1].start, 10);
    }

    #[test]
    fn conflicts_are_recorded_in_order() {
        use sim_core::obs::{ConflictResolution, RecoveryAction};
        use sim_core::types::LineAddr;
        let mut r = Recorder::default();
        for c in 0..3u64 {
            r.event(ObsEvent::Conflict {
                cycle: c,
                edge: ConflictEdge {
                    attacker: 0,
                    victim: 1,
                    line: LineAddr(c),
                    attacker_prio: 1,
                    victim_prio: 0,
                    resolution: ConflictResolution::Nack,
                    action: RecoveryAction::Rwi,
                },
            });
        }
        assert_eq!(r.conflicts().len(), 3);
        assert_eq!(r.conflicts()[2].edge.line, LineAddr(2));
    }

    #[test]
    fn lifo_matching_of_same_key_spans() {
        let mut r = Recorder::default();
        r.event(begin(1, SpanKind::Park, 0));
        r.event(begin(5, SpanKind::Park, 0));
        r.event(end(6, SpanKind::Park, 0, SpanEnd::Retried));
        r.finish(9);
        // The inner (most recent) span closed first.
        assert_eq!(r.spans()[0].start, 5);
        assert_eq!(r.spans()[1].start, 1);
    }
}
