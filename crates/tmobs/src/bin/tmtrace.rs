//! Observability CLI: run one STAMP workload on one Table-II system with
//! the recorder attached and write the artifacts to disk.
//!
//! ```text
//! tmtrace [--workload NAME] [--system NAME] [--threads N]
//!         [--scale tiny|small|full] [--seed HEX] [--sample CYCLES]
//!         [--out DIR] [--timeline] [--validate] [-v]
//! ```
//!
//! Defaults: intruder on LockillerTM, 4 threads, tiny scale, artifacts
//! under `tmtrace-out/`. `--validate` re-parses the written Chrome trace
//! and checks its structural invariants (exit status 1 on failure, so CI
//! can gate on it). Load the `.trace.json` in <https://ui.perfetto.dev>.

use lockiller::system::SystemKind;
use stamp::{Scale, WorkloadKind};
use tmobs::{run_trace, validate_chrome, TraceConfig};

struct Args {
    cfg: TraceConfig,
    out: std::path::PathBuf,
    timeline: bool,
    validate: bool,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tmtrace [--workload NAME] [--system NAME] [--threads N]\n\
         \x20              [--scale tiny|small|full] [--seed HEX] [--sample CYCLES]\n\
         \x20              [--out DIR] [--timeline] [--validate] [-v]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: TraceConfig::new(WorkloadKind::Intruder, SystemKind::LockillerTm),
        out: std::path::PathBuf::from("tmtrace-out"),
        timeline: false,
        validate: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" | "-w" => {
                let v = val();
                let Some(k) = WorkloadKind::from_name(&v) else {
                    eprintln!("unknown workload {v:?}");
                    usage();
                };
                args.cfg.workload = k;
            }
            "--system" | "-s" => {
                let v = val();
                let Some(k) = SystemKind::from_name(&v) else {
                    eprintln!("unknown system {v:?}");
                    usage();
                };
                args.cfg.system = k;
            }
            "--threads" | "-t" => {
                args.cfg.threads = val().parse().unwrap_or_else(|_| usage());
            }
            "--scale" => {
                args.cfg.scale = match val().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage(),
                };
            }
            "--seed" => {
                let v = val();
                let v = v.trim_start_matches("0x");
                args.cfg.seed = u64::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "--sample" => {
                args.cfg.sample_every = val().parse().unwrap_or_else(|_| usage());
            }
            "--out" | "-o" => args.out = val().into(),
            "--timeline" => args.timeline = true,
            "--validate" => args.validate = true,
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let art = run_trace(&args.cfg);

    if let Err(e) = &art.validation {
        eprintln!("workload validation FAILED: {e}");
        std::process::exit(1);
    }

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let stem = format!(
        "{}-{}",
        args.cfg.workload.name(),
        args.cfg.system.name().to_lowercase()
    );
    let trace_path = args.out.join(format!("{stem}.trace.json"));
    let jsonl_path = args.out.join(format!("{stem}.metrics.jsonl"));
    let summary_path = args.out.join(format!("{stem}.summary.txt"));
    std::fs::write(&trace_path, &art.chrome_json).expect("write trace");
    std::fs::write(&jsonl_path, &art.metrics_jsonl).expect("write metrics");
    std::fs::write(&summary_path, &art.summary).expect("write summary");

    print!("{}", art.summary);
    if args.timeline {
        print!("{}", art.timeline);
    }
    if args.verbose {
        print!("{}", art.profile);
    }
    println!(
        "wrote {} ({} spans, {} sample rows)",
        trace_path.display(),
        art.recorder.spans().len(),
        art.recorder.samples().len()
    );
    println!("wrote {}", jsonl_path.display());
    println!("wrote {}", summary_path.display());
    println!("open the trace at https://ui.perfetto.dev");

    if args.validate {
        let written = std::fs::read_to_string(&trace_path).expect("re-read trace");
        match validate_chrome(&written) {
            Ok(s) => println!(
                "validated: {} spans on {} tracks, {} counter samples in {} series",
                s.spans, s.tracks, s.counters, s.counter_series
            ),
            Err(e) => {
                eprintln!("trace validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
