//! Observability CLI: run one STAMP workload on one Table-II system with
//! the recorder attached and write the artifacts to disk.
//!
//! ```text
//! tmtrace [run]  [--workload NAME] [--system NAME] [--threads N]
//!                [--scale tiny|small|full] [--seed HEX] [--sample CYCLES]
//!                [--out DIR] [--timeline] [--validate] [-v]
//! tmtrace blame  [same options] [--top N]
//! tmtrace flame  [same options]
//! tmtrace diff   A.json B.json [--threshold PCT]
//! tmtrace perf-diff BASELINE.json CURRENT.json [--tolerance PCT]
//!                [--host-tolerance PCT] [--top-phases K]
//! tmtrace witness FILE.json [...]
//! ```
//!
//! Defaults: intruder on LockillerTM, 4 threads, tiny scale, artifacts
//! under `tmtrace-out/`. `--validate` re-parses the written Chrome trace
//! and checks its structural invariants (exit status 1 on failure, so CI
//! can gate on it). Load the `.trace.json` in <https://ui.perfetto.dev>.
//!
//! `blame` additionally renders the conflict forensics (attacker/victim
//! matrix, per-line hotspots, recovery ledger), writes `<stem>.blame.json`,
//! and fails (exit 1) if the matrix's wasted-cycle total does not
//! reconcile with the run's aborted-cycle statistics. Both `run` and
//! `blame` write `<stem>.stats.json` so a later `tmtrace diff` can gate
//! on run-to-run regressions: `diff` exits 0 when no numeric leaf differs
//! beyond the threshold (default 0%: any change), 1 otherwise.
//!
//! `flame` runs the session with `tmprof` engine profiling enabled and
//! additionally writes `<stem>.flame.txt` (collapsed-stack flamegraph,
//! self-time in microseconds) and `<stem>.prof.trace.json` (the phase
//! tree as nested Chrome-trace slices); the `selfprof.json` gains the
//! schema-v2 `"prof"` block, and the command fails (exit 1) if the
//! flamegraph totals do not reconcile with it to the millisecond.
//!
//! `perf-diff` refuses (exit 2) to compare documents whose top-level
//! `"schema"` tags differ — the error names the path and both
//! versions — and, when host metrics moved, prints the top-K phase
//! shares that moved most (`--top-phases`, default 5): the phase
//! attribution of a host regression.
//!
//! `witness` renders `tmverify` schedule-witness files (see
//! `tmobs::witness`) without re-executing them; use `tmverify replay`
//! to re-run one.

use lockiller::system::SystemKind;
use stamp::{Scale, WorkloadKind};
use tmobs::{diff_docs, run_trace, validate_chrome, TraceConfig};

enum Cmd {
    Run,
    Blame,
    Flame,
}

struct Args {
    cmd: Cmd,
    cfg: TraceConfig,
    out: std::path::PathBuf,
    timeline: bool,
    validate: bool,
    verbose: bool,
    top: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: tmtrace [run]  [--workload NAME] [--system NAME] [--threads N]\n\
         \x20              [--scale tiny|small|full] [--seed HEX] [--sample CYCLES]\n\
         \x20              [--out DIR] [--timeline] [--validate] [-v]\n\
         \x20      tmtrace blame [same options] [--top N]\n\
         \x20      tmtrace flame [same options]\n\
         \x20      tmtrace diff  A.json B.json [--threshold PCT]\n\
         \x20      tmtrace perf-diff BASELINE.json CURRENT.json [--tolerance PCT]\n\
         \x20              [--host-tolerance PCT] [--top-phases K]\n\
         \x20      tmtrace witness FILE.json [...]"
    );
    std::process::exit(2);
}

fn parse_args(mut it: std::env::Args) -> Args {
    let mut args = Args {
        cmd: Cmd::Run,
        cfg: TraceConfig::new(WorkloadKind::Intruder, SystemKind::LockillerTm),
        out: std::path::PathBuf::from("tmtrace-out"),
        timeline: false,
        validate: false,
        verbose: false,
        top: 10,
    };
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "run" => args.cmd = Cmd::Run,
            "blame" => args.cmd = Cmd::Blame,
            "flame" => {
                args.cmd = Cmd::Flame;
                args.cfg.profile = true;
            }
            "--workload" | "-w" => {
                let v = val();
                let Some(k) = WorkloadKind::from_name(&v) else {
                    eprintln!("unknown workload {v:?}");
                    usage();
                };
                args.cfg.workload = k;
            }
            "--system" | "-s" => {
                let v = val();
                let Some(k) = SystemKind::from_name(&v) else {
                    eprintln!("unknown system {v:?}");
                    usage();
                };
                args.cfg.system = k;
            }
            "--threads" | "-t" => {
                args.cfg.threads = val().parse().unwrap_or_else(|_| usage());
            }
            "--scale" => {
                args.cfg.scale = match val().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage(),
                };
            }
            "--seed" => {
                let v = val();
                let v = v.trim_start_matches("0x");
                args.cfg.seed = u64::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "--sample" => {
                args.cfg.sample_every = val().parse().unwrap_or_else(|_| usage());
            }
            "--top" => args.top = val().parse().unwrap_or_else(|_| usage()),
            "--out" | "-o" => args.out = val().into(),
            "--timeline" => args.timeline = true,
            "--validate" => args.validate = true,
            "-v" | "--verbose" => args.verbose = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

/// `tmtrace diff A.json B.json [--threshold PCT]`: exit 0 when every
/// numeric leaf agrees within the threshold, 1 when any delta is flagged.
fn cmd_diff(mut it: std::env::Args) -> ! {
    let mut files: Vec<String> = Vec::new();
    let mut threshold = 0.0f64;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
            path => files.push(path.to_string()),
        }
    }
    if files.len() != 2 {
        eprintln!("diff needs exactly two JSON files");
        usage();
    }
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (read(&files[0]), read(&files[1]));
    match diff_docs(&a, &b, threshold) {
        Ok(deltas) if deltas.is_empty() => {
            println!(
                "no deltas beyond {threshold}% between {} and {}",
                files[0], files[1]
            );
            std::process::exit(0);
        }
        Ok(deltas) => {
            println!(
                "{} delta(s) beyond {threshold}% between {} and {}:",
                deltas.len(),
                files[0],
                files[1]
            );
            for d in &deltas {
                println!("  {}", d.render());
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("diff FAILED: {e}");
            std::process::exit(2);
        }
    }
}

/// `tmtrace perf-diff BASELINE.json CURRENT.json`: the CI perf gate.
/// Numeric leaves are split into two classes by path: anything under a
/// `host` object (wall-clock, cycles/sec, ns/cycle) is machine-dependent
/// and only gated when `--host-tolerance` is given — otherwise it is
/// reported but never fails the gate. Everything else is deterministic
/// simulator output (simulated cycles, commit counts, latency
/// percentiles) and is gated at `--tolerance` (default 0%: any change
/// fails). Exit 0 on pass, 1 on regression, 2 on usage/parse errors.
fn cmd_perf_diff(mut it: std::env::Args) -> ! {
    let mut files: Vec<String> = Vec::new();
    let mut tolerance = 0.0f64;
    let mut host_tolerance: Option<f64> = None;
    let mut top_phases = 5usize;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--host-tolerance" => {
                host_tolerance = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--top-phases" => {
                top_phases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
            path => files.push(path.to_string()),
        }
    }
    if files.len() != 2 {
        eprintln!("perf-diff needs exactly two JSON files (baseline, current)");
        usage();
    }
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (read(&files[0]), read(&files[1]));
    // Refuse to gate across schema versions: the error names the
    // offending path and both versions so the fix is self-evident.
    let parse = |name: &str, text: &str| {
        tmobs::json::parse(text).unwrap_or_else(|e| {
            eprintln!("perf-diff FAILED: {name}: {e}");
            std::process::exit(2);
        })
    };
    let (va, vb) = (parse(&files[0], &a), parse(&files[1], &b));
    if let Err(e) = tmobs::check_schema_match(&va, &vb, &files[0], &files[1]) {
        eprintln!("perf-diff FAILED: {e}");
        std::process::exit(2);
    }
    // Collect every changed leaf, then apply per-class tolerances.
    let deltas = tmobs::diff_values(&va, &vb, 0.0);
    let is_host = |path: &str| {
        path.split('.').any(|seg| {
            seg == "host"
                || seg
                    .strip_suffix(']')
                    .is_some_and(|s| s.starts_with("host["))
        })
    };
    let (host, det): (Vec<_>, Vec<_>) = deltas.into_iter().partition(|d| is_host(&d.path));
    let det_fail: Vec<_> = det.iter().filter(|d| d.rel_pct() > tolerance).collect();
    let host_fail: Vec<_> = match host_tolerance {
        Some(t) => host.iter().filter(|d| d.rel_pct() > t).collect(),
        None => Vec::new(),
    };
    println!(
        "perf-diff {} vs {}: {} deterministic delta(s), {} host delta(s)",
        files[0],
        files[1],
        det.len(),
        host.len()
    );
    if !host.is_empty() {
        match host_tolerance {
            Some(t) => println!("host metrics (gated at {t}%):"),
            None => println!("host metrics (report-only; pass --host-tolerance to gate):"),
        }
        for d in &host {
            println!("  {}", d.render());
        }
        // Attribution: which engine phases account for the host movement.
        let movers = tmobs::top_phase_movers(&host, top_phases);
        if !movers.is_empty() {
            println!(
                "top {} phase mover(s) (by absolute share change):",
                movers.len()
            );
            for d in movers {
                println!("  {}", d.render());
            }
        }
    }
    if !det_fail.is_empty() {
        println!("deterministic metrics beyond {tolerance}%:");
        for d in &det_fail {
            println!("  {}", d.render());
        }
    }
    if det_fail.is_empty() && host_fail.is_empty() {
        println!("perf gate PASSED");
        std::process::exit(0);
    }
    eprintln!(
        "perf gate FAILED: {} deterministic + {} host regression(s)",
        det_fail.len(),
        host_fail.len()
    );
    std::process::exit(1);
}

/// `tmtrace witness FILE.json [...]`: render witness files. Exit 0 when
/// every file parses, 2 otherwise.
fn cmd_witness(it: std::env::Args) -> ! {
    let mut any = false;
    for path in it {
        match path.as_str() {
            "-h" | "--help" => usage(),
            _ => {}
        }
        any = true;
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match tmobs::Witness::parse(&text) {
            Ok(w) => {
                println!("{path}:");
                print!("{}", w.render());
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if !any {
        eprintln!("witness needs at least one file");
        usage();
    }
    std::process::exit(0);
}

fn main() {
    let mut it = std::env::args();
    it.next(); // argv[0]
               // `diff`, `perf-diff`, and `witness` have their own grammars
               // (positional files); dispatch before the flag parser sees
               // them.
    let args = match std::env::args().nth(1).as_deref() {
        Some("diff") => {
            it.next();
            cmd_diff(it)
        }
        Some("perf-diff") => {
            it.next();
            cmd_perf_diff(it)
        }
        Some("witness") => {
            it.next();
            cmd_witness(it)
        }
        _ => parse_args(it),
    };

    let art = run_trace(&args.cfg);

    if let Err(e) = &art.validation {
        eprintln!("workload validation FAILED: {e}");
        std::process::exit(1);
    }

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let stem = format!(
        "{}-{}",
        args.cfg.workload.name(),
        args.cfg.system.name().to_lowercase()
    );
    let trace_path = args.out.join(format!("{stem}.trace.json"));
    let jsonl_path = args.out.join(format!("{stem}.metrics.jsonl"));
    let summary_path = args.out.join(format!("{stem}.summary.txt"));
    let stats_path = args.out.join(format!("{stem}.stats.json"));
    let selfprof_path = args.out.join(format!("{stem}.selfprof.json"));
    std::fs::write(&trace_path, &art.chrome_json).expect("write trace");
    std::fs::write(&jsonl_path, &art.metrics_jsonl).expect("write metrics");
    std::fs::write(&summary_path, &art.summary).expect("write summary");
    std::fs::write(&stats_path, art.stats.to_json()).expect("write stats");
    std::fs::write(&selfprof_path, &art.selfprof_json).expect("write selfprof");

    if matches!(args.cmd, Cmd::Flame) {
        let report = art.host_prof.as_ref().expect("flame runs with profiling");
        let flame_text = tmobs::flame(report);
        let flame_path = args.out.join(format!("{stem}.flame.txt"));
        let prof_trace_path = args.out.join(format!("{stem}.prof.trace.json"));
        std::fs::write(&flame_path, &flame_text).expect("write flamegraph");
        std::fs::write(&prof_trace_path, tmobs::chrome_prof(report)).expect("write prof trace");
        print!("{}", tmobs::render_prof(report));
        // The acceptance bar: collapsed-stack totals reconcile with the
        // archived selfprof.json to the millisecond.
        let flame_ms = tmobs::flame_total_us(&flame_text).expect("well-formed flame") as f64 / 1e3;
        let prof_ms = report.total_ns as f64 / 1e6;
        if (flame_ms - prof_ms).abs() >= 1.0 {
            eprintln!(
                "flame reconciliation FAILED: flame {flame_ms:.3} ms vs profile {prof_ms:.3} ms"
            );
            std::process::exit(1);
        }
        println!("reconciled: flame {flame_ms:.3} ms == profile {prof_ms:.3} ms (< 1 ms apart)");
        println!("wrote {}", flame_path.display());
        println!("wrote {}", prof_trace_path.display());
    }

    if matches!(args.cmd, Cmd::Blame) {
        let blame_path = args.out.join(format!("{stem}.blame.json"));
        let doc = art.forensics.to_json(args.top);
        if let Err(e) = tmobs::json::parse(&doc) {
            eprintln!("blame JSON validation FAILED: {e}");
            std::process::exit(1);
        }
        std::fs::write(&blame_path, &doc).expect("write blame");
        print!("{}", art.forensics.render(args.top));
        match art.forensics.reconcile(&art.stats) {
            Ok(()) => println!(
                "\nreconciled: matrix wasted cycles == RunStats aborted cycles ({})",
                art.stats.aborted_cycles()
            ),
            Err(e) => {
                eprintln!("\nblame reconciliation FAILED: {e}");
                std::process::exit(1);
            }
        }
        println!("wrote {}", blame_path.display());
    } else {
        print!("{}", art.summary);
    }
    if args.timeline {
        print!("{}", art.timeline);
    }
    if args.verbose {
        print!("{}", art.profile);
    }
    println!(
        "wrote {} ({} spans, {} sample rows, {} conflict edges)",
        trace_path.display(),
        art.recorder.spans().len(),
        art.recorder.samples().len(),
        art.recorder.conflicts().len()
    );
    println!("wrote {}", jsonl_path.display());
    println!("wrote {}", summary_path.display());
    println!("wrote {}", stats_path.display());
    println!("wrote {}", selfprof_path.display());
    println!("open the trace at https://ui.perfetto.dev");

    if args.validate {
        let written = std::fs::read_to_string(&trace_path).expect("re-read trace");
        match validate_chrome(&written) {
            Ok(s) => println!(
                "validated: {} spans on {} tracks, {} counter samples in {} series, {} instants",
                s.spans, s.tracks, s.counters, s.counter_series, s.instants
            ),
            Err(e) => {
                eprintln!("trace validation FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
