//! Run-to-run regression detection: compare two JSON documents (RunStats
//! dumps, blame reports, bench artifacts — any numeric-leaved JSON) and
//! flag metric deltas beyond a relative threshold.
//!
//! The comparison is schema-agnostic: both documents are flattened to
//! dotted numeric leaf paths (`phases[1]`, `ledger.saved_fraction`, ...)
//! and joined on path. A key present on only one side is always flagged.
//! `tmtrace diff` fronts this; the bench crate and CI reuse it as a
//! self-contained regression gate.

use crate::json::{self, Json};

/// One flagged difference between documents A and B.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Dotted leaf path (`stats.aborts[2]`).
    pub path: String,
    /// Value in document A; `None` if the key only exists in B.
    pub a: Option<f64>,
    /// Value in document B; `None` if the key only exists in A.
    pub b: Option<f64>,
}

impl MetricDelta {
    /// Relative change in percent, against the larger magnitude (so it is
    /// symmetric and NaN-free). Missing keys report 100%.
    pub fn rel_pct(&self) -> f64 {
        match (self.a, self.b) {
            (Some(a), Some(b)) => {
                let denom = a.abs().max(b.abs());
                if denom == 0.0 {
                    0.0
                } else {
                    (b - a).abs() / denom * 100.0
                }
            }
            _ => 100.0,
        }
    }

    pub fn render(&self) -> String {
        fn v(x: Option<f64>) -> String {
            x.map_or_else(|| "-".to_string(), |x| format!("{x}"))
        }
        format!(
            "{:<40} {:>16} -> {:>16}  ({:+.2}%)",
            self.path,
            v(self.a),
            v(self.b),
            self.rel_pct()
        )
    }
}

/// Flatten every numeric leaf of `v` into `out` under dotted paths.
/// Booleans count as 0/1 (they are metrics too: `swmr_violation`);
/// strings and nulls are identity metadata and are skipped.
fn flatten(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Bool(b) => out.push((prefix.to_string(), if *b { 1.0 } else { 0.0 })),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), item, out);
            }
        }
        Json::Obj(fields) => {
            for (k, item) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, item, out);
            }
        }
        Json::Str(_) | Json::Null => {}
    }
}

/// Compare two parsed documents; return the deltas at or beyond
/// `threshold_pct` (0.0 flags any change), in document order of A with
/// B-only keys appended.
pub fn diff_values(a: &Json, b: &Json, threshold_pct: f64) -> Vec<MetricDelta> {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    flatten("", a, &mut fa);
    flatten("", b, &mut fb);
    let mut out = Vec::new();
    for (path, va) in &fa {
        match fb.iter().find(|(p, _)| p == path) {
            Some((_, vb)) => {
                let d = MetricDelta {
                    path: path.clone(),
                    a: Some(*va),
                    b: Some(*vb),
                };
                if va != vb && d.rel_pct() >= threshold_pct {
                    out.push(d);
                }
            }
            None => out.push(MetricDelta {
                path: path.clone(),
                a: Some(*va),
                b: None,
            }),
        }
    }
    for (path, vb) in &fb {
        if !fa.iter().any(|(p, _)| p == path) {
            out.push(MetricDelta {
                path: path.clone(),
                a: None,
                b: Some(*vb),
            });
        }
    }
    out
}

/// Parse and compare two JSON documents.
pub fn diff_docs(a: &str, b: &str, threshold_pct: f64) -> Result<Vec<MetricDelta>, String> {
    let va = json::parse(a).map_err(|e| format!("document A: {e}"))?;
    let vb = json::parse(b).map_err(|e| format!("document B: {e}"))?;
    Ok(diff_values(&va, &vb, threshold_pct))
}

/// Check that two gateable documents carry the same top-level `"schema"`
/// tag. On mismatch the error names the offending JSON path (`$.schema`)
/// and **both** versions, so the fix (re-bless the baseline, or check
/// out the matching tool) is obvious from the message alone.
pub fn check_schema_match(a: &Json, b: &Json, a_name: &str, b_name: &str) -> Result<(), String> {
    let tag = |v: &Json| v.get("schema").and_then(Json::as_f64);
    let render = |v: Option<f64>| v.map_or_else(|| "absent".to_string(), |s| format!("{s}"));
    let (sa, sb) = (tag(a), tag(b));
    if sa == sb {
        Ok(())
    } else {
        Err(format!(
            "schema mismatch at $.schema: {a_name} has schema {}, {b_name} has schema {} \
             (re-bless the baseline with the current tool, or diff artifacts written by the \
             same schema version)",
            render(sa),
            render(sb)
        ))
    }
}

/// The `k` largest host-phase movements among `deltas`: leaves under a
/// `phases` object (the `host.phases.<scope-path>` shares written by
/// `experiments engine`), ranked by absolute change. This is the
/// attribution step of a host perf regression — the phases that moved
/// most are where the regression lives.
pub fn top_phase_movers(deltas: &[MetricDelta], k: usize) -> Vec<&MetricDelta> {
    let mut movers: Vec<&MetricDelta> = deltas
        .iter()
        .filter(|d| d.path.split('.').any(|seg| seg == "phases"))
        .collect();
    movers.sort_by(|x, y| {
        let abs = |d: &MetricDelta| (d.b.unwrap_or(0.0) - d.a.unwrap_or(0.0)).abs();
        abs(y)
            .partial_cmp(&abs(x))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    movers.truncate(k);
    movers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_zero_deltas() {
        let doc = r#"{"cycles":100,"aborts":[1,2,3],"nested":{"x":1.5,"ok":true},"name":"run"}"#;
        assert!(diff_docs(doc, doc, 0.0).unwrap().is_empty());
    }

    #[test]
    fn changed_leaf_is_flagged_with_path() {
        let a = r#"{"stats":{"aborts":[5,0]}}"#;
        let b = r#"{"stats":{"aborts":[6,0]}}"#;
        let d = diff_docs(a, b, 0.0).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "stats.aborts[0]");
        assert!((d[0].rel_pct() - 100.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_suppresses_small_deltas() {
        let a = r#"{"cycles":1000}"#;
        let b = r#"{"cycles":1009}"#;
        assert!(diff_docs(a, b, 1.0).unwrap().is_empty());
        assert_eq!(diff_docs(a, b, 0.5).unwrap().len(), 1);
    }

    #[test]
    fn missing_keys_always_flagged() {
        let a = r#"{"x":1,"only_a":2}"#;
        let b = r#"{"x":1,"only_b":3}"#;
        let d = diff_docs(a, b, 50.0).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].path, "only_a");
        assert_eq!(d[0].b, None);
        assert_eq!(d[1].path, "only_b");
        assert_eq!(d[1].a, None);
        assert_eq!(d[0].rel_pct(), 100.0);
    }

    #[test]
    fn strings_are_identity_not_metrics() {
        let a = r#"{"system":"LockillerTM","v":1}"#;
        let b = r#"{"system":"Baseline","v":1}"#;
        assert!(diff_docs(a, b, 0.0).unwrap().is_empty());
    }

    #[test]
    fn schema_mismatch_error_names_path_and_both_versions() {
        let a = json::parse(r#"{"schema":1,"x":1}"#).unwrap();
        let b = json::parse(r#"{"schema":2,"x":1}"#).unwrap();
        let e = check_schema_match(&a, &b, "baseline.json", "current.json").unwrap_err();
        assert!(e.contains("$.schema"), "no JSON path in: {e}");
        assert!(
            e.contains("baseline.json has schema 1"),
            "missing A version: {e}"
        );
        assert!(
            e.contains("current.json has schema 2"),
            "missing B version: {e}"
        );
        // Matching (or equally absent) schemas pass.
        assert!(check_schema_match(&a, &a, "a", "a").is_ok());
        let none = json::parse(r#"{"x":1}"#).unwrap();
        assert!(check_schema_match(&none, &none, "a", "b").is_ok());
        let e = check_schema_match(&a, &none, "a.json", "b.json").unwrap_err();
        assert!(
            e.contains("b.json has schema absent"),
            "missing absent note: {e}"
        );
    }

    #[test]
    fn top_phase_movers_ranks_by_absolute_change() {
        let a = r#"{"points":[{"host":{"phases":{"run;ev_recv":0.50,"run;dequeue":0.10,"run;ev_net":0.40},"wall_s":1.0}}]}"#;
        let b = r#"{"points":[{"host":{"phases":{"run;ev_recv":0.30,"run;dequeue":0.12,"run;ev_net":0.58},"wall_s":2.0}}]}"#;
        let deltas = diff_docs(a, b, 0.0).unwrap();
        let movers = top_phase_movers(&deltas, 2);
        assert_eq!(movers.len(), 2);
        // ev_recv moved 0.20, ev_net 0.18, dequeue 0.02; wall_s is not a
        // phase and must never appear.
        assert!(movers[0].path.ends_with("run;ev_recv"));
        assert!(movers[1].path.ends_with("run;ev_net"));
        assert!(movers.iter().all(|d| !d.path.contains("wall_s")));
    }
}
