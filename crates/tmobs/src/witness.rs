//! Replayable schedule witnesses.
//!
//! When the `tmverify` explorer finds a violating schedule it shrinks
//! the decision sequence (ddmin) and serializes the result as a witness
//! file: everything needed to reproduce the violation bit-for-bit —
//! the system, the guest program (as a `ProgSpec` string), the
//! fault-injection and safety-net knobs, and the tie-break decision
//! vector. `tmverify replay FILE` re-executes it; `tmtrace witness
//! FILE` renders it for humans.
//!
//! The format is versioned JSON so corpus files in `tests/corpus/`
//! survive schema growth.

use sim_core::json::{self, Json};

/// Current witness schema version.
pub const WITNESS_VERSION: u64 = 1;

/// A self-contained reproduction recipe for one violating schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Schema version ([`WITNESS_VERSION`] when written by this build).
    pub version: u64,
    /// Free-form description (which bug / which run produced this).
    pub title: String,
    /// `SystemKind` CLI name (e.g. `lockillertm`).
    pub system: String,
    /// Simulated cores.
    pub cores: usize,
    /// Distinct cache lines in the guest program's arena.
    pub lines: u64,
    /// Guest program as a `tmverify` ProgSpec string.
    pub prog: String,
    /// Fault-injection knobs active for the run (CLI names, e.g.
    /// `drop-wakeups`); empty for a genuine (non-injected) violation.
    pub inject: Vec<String>,
    /// Whether the wake-up safety net was disabled (deadlock checking).
    pub no_safety_net: bool,
    /// Whether the run used the shrunken 2-line L1 (capacity-overflow
    /// configurations; the geometry changes which schedules exist).
    pub tiny_l1: bool,
    /// HTM retry-budget override, if one was set.
    pub retries: Option<u32>,
    /// The shrunk tie-break decision vector: the n-th nondeterministic
    /// pick point takes candidate `decisions[n]` (0 beyond the end).
    pub decisions: Vec<usize>,
    /// `CheckKind::name()` of the violation this witness reproduces.
    pub violation_kind: String,
    /// The violation's human-readable message when first found.
    pub violation_message: String,
}

impl Witness {
    /// Serialize as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let arr = |xs: &[String]| {
            xs.iter()
                .map(|s| format!("\"{}\"", json::escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let decisions = self
            .decisions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let retries = self.retries.map_or("null".to_owned(), |r| r.to_string());
        format!(
            "{{\n  \"version\": {},\n  \"title\": \"{}\",\n  \"system\": \"{}\",\n  \
             \"cores\": {},\n  \"lines\": {},\n  \"prog\": \"{}\",\n  \
             \"inject\": [{}],\n  \"no_safety_net\": {},\n  \"tiny_l1\": {},\n  \
             \"retries\": {},\n  \"decisions\": [{}],\n  \
             \"violation_kind\": \"{}\",\n  \"violation_message\": \"{}\"\n}}\n",
            self.version,
            json::escape(&self.title),
            json::escape(&self.system),
            self.cores,
            self.lines,
            json::escape(&self.prog),
            arr(&self.inject),
            self.no_safety_net,
            self.tiny_l1,
            retries,
            decisions,
            json::escape(&self.violation_kind),
            json::escape(&self.violation_message),
        )
    }

    /// Parse a witness document, validating the schema.
    pub fn parse(text: &str) -> Result<Witness, String> {
        let doc = json::parse(text)?;
        let num = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("witness: missing/invalid \"{key}\""))
        };
        let st = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("witness: missing/invalid \"{key}\""))
        };
        let version = num("version")? as u64;
        if version == 0 || version > WITNESS_VERSION {
            return Err(format!("witness: unsupported version {version}"));
        }
        let inject = doc
            .get("inject")
            .and_then(Json::as_arr)
            .ok_or("witness: missing/invalid \"inject\"")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "witness: non-string in \"inject\"".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let decisions = doc
            .get("decisions")
            .and_then(Json::as_arr)
            .ok_or("witness: missing/invalid \"decisions\"")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .map(|n| n as usize)
                    .ok_or_else(|| "witness: non-number in \"decisions\"".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let flag = |key: &str| -> Result<bool, String> {
            match doc.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                // `tiny_l1` postdates the first written files; absent
                // means the default geometry.
                None if key == "tiny_l1" => Ok(false),
                _ => Err(format!("witness: missing/invalid \"{key}\"")),
            }
        };
        let no_safety_net = flag("no_safety_net")?;
        let tiny_l1 = flag("tiny_l1")?;
        let retries = match doc.get("retries") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_f64().ok_or("witness: invalid \"retries\"")? as u32),
        };
        Ok(Witness {
            version,
            title: st("title")?,
            system: st("system")?,
            cores: num("cores")? as usize,
            lines: num("lines")? as u64,
            prog: st("prog")?,
            inject,
            no_safety_net,
            tiny_l1,
            retries,
            decisions,
            violation_kind: st("violation_kind")?,
            violation_message: st("violation_message")?,
        })
    }

    /// Multi-line human-readable rendering (`tmtrace witness`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("witness v{}: {}\n", self.version, self.title));
        out.push_str(&format!(
            "  config:    {} x{} cores, {} lines\n",
            self.system, self.cores, self.lines
        ));
        out.push_str(&format!("  program:   {}\n", self.prog));
        if !self.inject.is_empty() {
            out.push_str(&format!("  injected:  {}\n", self.inject.join(", ")));
        }
        if self.no_safety_net {
            out.push_str("  safety net: disabled (deadlock detection)\n");
        }
        if self.tiny_l1 {
            out.push_str("  geometry:  tiny L1 (2 lines; capacity-overflow config)\n");
        }
        if let Some(r) = self.retries {
            out.push_str(&format!("  retries:   {r}\n"));
        }
        out.push_str(&format!(
            "  violation: [{}] {}\n",
            self.violation_kind, self.violation_message
        ));
        out.push_str(&format!(
            "  schedule:  {} decision(s): {:?}\n",
            self.decisions.len(),
            self.decisions
        ));
        out.push_str("  replay:    cargo run -p tmverify -- replay <this file>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Witness {
        Witness {
            version: WITNESS_VERSION,
            title: "dropped wake-up deadlock".into(),
            system: "lockillertm".into(),
            cores: 2,
            lines: 2,
            prog: "2/c:L0,S1/c:S0,L1".into(),
            inject: vec!["drop-wakeups".into()],
            no_safety_net: true,
            tiny_l1: false,
            retries: Some(2),
            decisions: vec![0, 1, 0, 2],
            violation_kind: "deadlock".into(),
            violation_message: "cores [0, 1] stuck".into(),
        }
    }

    #[test]
    fn roundtrip() {
        let w = sample();
        let text = w.to_json();
        let back = Witness::parse(&text).expect("parse back");
        assert_eq!(back, w);
    }

    #[test]
    fn renders_key_facts() {
        let r = sample().render();
        assert!(r.contains("drop-wakeups"));
        assert!(r.contains("deadlock"));
        assert!(r.contains("[0, 1, 0, 2]"));
    }

    #[test]
    fn rejects_bad_docs() {
        assert!(Witness::parse("{}").is_err());
        assert!(Witness::parse("not json").is_err());
        let mut w = sample();
        w.version = WITNESS_VERSION + 1;
        assert!(Witness::parse(&w.to_json()).is_err());
    }

    #[test]
    fn escapes_strings() {
        let mut w = sample();
        w.violation_message = "a \"quoted\"\nmessage".into();
        let back = Witness::parse(&w.to_json()).expect("escaped roundtrip");
        assert_eq!(back.violation_message, w.violation_message);
    }
}
