//! Host-side self-profiling: wall-clock time spent in each phase of a
//! `tmtrace` invocation (setup, simulate, export, ...). This measures
//! the *simulator*, not the simulated machine, so it can never perturb a
//! run — it only wraps it.

use std::time::{Duration, Instant};

/// Lap-style wall-clock profiler: [`SelfProfiler::lap`] closes the
/// current phase and starts the next; [`SelfProfiler::finish`] closes
/// the trailing `"epilogue"` phase so no time is dropped.
#[derive(Debug)]
pub struct SelfProfiler {
    started: Instant,
    last: Instant,
    phases: Vec<(String, Duration)>,
    finished: bool,
}

impl SelfProfiler {
    pub fn start() -> SelfProfiler {
        let now = Instant::now();
        SelfProfiler {
            started: now,
            last: now,
            phases: Vec::new(),
            finished: false,
        }
    }

    /// Close the phase that ran since the previous lap (or start) under
    /// `name`.
    pub fn lap(&mut self, name: &str) {
        assert!(!self.finished, "lap after finish");
        let now = Instant::now();
        self.phases.push((name.to_string(), now - self.last));
        self.last = now;
    }

    /// Close the profile: everything since the final lap becomes the
    /// `"epilogue"` phase, so the phases always sum to [`Self::total`]
    /// (without this, time after the last lap was silently dropped —
    /// `total()` reads `self.last`). Idempotent.
    pub fn finish(&mut self) {
        if !self.finished {
            self.lap("epilogue");
            self.finished = true;
        }
    }

    /// Wall-clock covered by the recorded phases (start to last lap; call
    /// [`Self::finish`] first to account for everything up to now).
    pub fn total(&self) -> Duration {
        self.last - self.started
    }

    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Stable JSON export for CI archival: schema tag, phase names in lap
    /// order with millisecond durations, plus the total. Field order is
    /// fixed so diffing two archives keys on identical paths. Schema 2 =
    /// the v1 lap fields plus the `"epilogue"` phase from
    /// [`Self::finish`] and the optional `"prof"` / `"engine"` blocks
    /// callers splice in (see `session::selfprof_with_engine`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":2,\"phases\":{");
        for (i, (name, d)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{:.3}",
                crate::json::escape(name),
                d.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "}},\"total_ms\":{:.3}}}",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }

    /// One line per phase with its share of the total.
    pub fn render(&self) -> String {
        let total = self.total().as_secs_f64().max(1e-9);
        let mut out = String::from("self-profile (host wall-clock):\n");
        for (name, d) in &self.phases {
            out.push_str(&format!(
                "  {:<10} {:>9.3} ms ({:>5.1}%)\n",
                name,
                d.as_secs_f64() * 1e3,
                d.as_secs_f64() / total * 100.0
            ));
        }
        out.push_str(&format!(
            "  {:<10} {:>9.3} ms\n",
            "total",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate_to_total() {
        let mut p = SelfProfiler::start();
        p.lap("a");
        p.lap("b");
        let sum: Duration = p.phases().iter().map(|(_, d)| *d).sum();
        assert_eq!(sum, p.total());
        let r = p.render();
        assert!(r.contains("a"));
        assert!(r.contains("total"));
    }

    #[test]
    fn finish_closes_trailing_epilogue_and_phases_sum_to_total() {
        let mut p = SelfProfiler::start();
        p.lap("work");
        // Burn measurable time *after* the final lap — the bug this
        // guards against dropped it from total().
        let t = Instant::now();
        while t.elapsed() < Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        p.finish();
        let (name, d) = p.phases().last().unwrap();
        assert_eq!(name, "epilogue");
        assert!(*d >= Duration::from_millis(2));
        let sum: Duration = p.phases().iter().map(|(_, d)| *d).sum();
        assert_eq!(sum, p.total());
        // Idempotent: a second finish adds nothing.
        p.finish();
        assert_eq!(p.phases().len(), 2);
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let mut p = SelfProfiler::start();
        p.lap("setup");
        p.lap("simulate");
        p.finish();
        let doc = p.to_json();
        let v = crate::json::parse(&doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_f64().unwrap(), 2.0);
        let phases = v.get("phases").unwrap();
        assert!(phases.get("setup").unwrap().as_f64().is_some());
        assert!(phases.get("simulate").unwrap().as_f64().is_some());
        assert!(phases.get("epilogue").unwrap().as_f64().is_some());
        assert!(v.get("total_ms").unwrap().as_f64().unwrap() >= 0.0);
    }
}
