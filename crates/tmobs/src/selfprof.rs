//! Host-side self-profiling: wall-clock time spent in each phase of a
//! `tmtrace` invocation (setup, simulate, export, ...). This measures
//! the *simulator*, not the simulated machine, so it can never perturb a
//! run — it only wraps it.

use std::time::{Duration, Instant};

/// Lap-style wall-clock profiler: [`SelfProfiler::lap`] closes the
/// current phase and starts the next.
#[derive(Debug)]
pub struct SelfProfiler {
    started: Instant,
    last: Instant,
    phases: Vec<(String, Duration)>,
}

impl SelfProfiler {
    pub fn start() -> SelfProfiler {
        let now = Instant::now();
        SelfProfiler {
            started: now,
            last: now,
            phases: Vec::new(),
        }
    }

    /// Close the phase that ran since the previous lap (or start) under
    /// `name`.
    pub fn lap(&mut self, name: &str) {
        let now = Instant::now();
        self.phases.push((name.to_string(), now - self.last));
        self.last = now;
    }

    pub fn total(&self) -> Duration {
        self.last - self.started
    }

    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Stable JSON export for CI archival: phase names in lap order with
    /// millisecond durations, plus the total. Field order is fixed so
    /// diffing two archives keys on identical paths.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\":{");
        for (i, (name, d)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{:.3}",
                crate::json::escape(name),
                d.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "}},\"total_ms\":{:.3}}}",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }

    /// One line per phase with its share of the total.
    pub fn render(&self) -> String {
        let total = self.total().as_secs_f64().max(1e-9);
        let mut out = String::from("self-profile (host wall-clock):\n");
        for (name, d) in &self.phases {
            out.push_str(&format!(
                "  {:<10} {:>9.3} ms ({:>5.1}%)\n",
                name,
                d.as_secs_f64() * 1e3,
                d.as_secs_f64() / total * 100.0
            ));
        }
        out.push_str(&format!(
            "  {:<10} {:>9.3} ms\n",
            "total",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate_to_total() {
        let mut p = SelfProfiler::start();
        p.lap("a");
        p.lap("b");
        let sum: Duration = p.phases().iter().map(|(_, d)| *d).sum();
        assert_eq!(sum, p.total());
        let r = p.render();
        assert!(r.contains("a"));
        assert!(r.contains("total"));
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let mut p = SelfProfiler::start();
        p.lap("setup");
        p.lap("simulate");
        let doc = p.to_json();
        let v = crate::json::parse(&doc).unwrap();
        let phases = v.get("phases").unwrap();
        assert!(phases.get("setup").unwrap().as_f64().is_some());
        assert!(phases.get("simulate").unwrap().as_f64().is_some());
        assert!(v.get("total_ms").unwrap().as_f64().unwrap() >= 0.0);
    }
}
