//! Terminal renderer: a per-core occupancy heatmap over simulated time
//! (the span-level companion to `lockiller::trace::render_timeline`'s
//! event glyphs), plus abort, NoC, and LLC tables and the standard
//! histograms.

use crate::latency::render_latency_table;
use crate::recorder::Recorder;
use crate::registry::standard_histograms;
use sim_core::obs::{SpanKind, Track};
use sim_core::stats::{AbortCause, RunStats};

/// Shade ramp for bucket occupancy (0% .. 100%).
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Heatmap width in columns.
const WIDTH: usize = 64;

fn ramp(frac: f64) -> char {
    let i = (frac * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[i.min(RAMP.len() - 1)]
}

/// Fraction of each of `width` equal time buckets covered by the given
/// span kinds on `core`'s track.
fn occupancy(rec: &Recorder, core: usize, kinds: &[SpanKind], end: u64, width: usize) -> Vec<f64> {
    let per = end.div_ceil(width as u64).max(1);
    let mut cover = vec![0u64; width];
    for s in rec.spans() {
        if s.track != Track::Core(core) || !kinds.contains(&s.kind) {
            continue;
        }
        let (lo, hi) = (s.start, s.end.max(s.start));
        let first = (lo / per) as usize;
        let last = ((hi.saturating_sub(1)) / per) as usize;
        for (b, c) in cover
            .iter_mut()
            .enumerate()
            .take(width.min(last + 1))
            .skip(first)
        {
            let b_lo = b as u64 * per;
            let b_hi = b_lo + per;
            *c += hi.min(b_hi).saturating_sub(lo.max(b_lo));
        }
    }
    cover.iter().map(|&c| c as f64 / per as f64).collect()
}

/// Render the full terminal summary for a recorded run.
pub fn render_summary(rec: &Recorder, stats: &RunStats) -> String {
    let mut out = String::new();
    let end = rec.end_cycle().max(stats.cycles).max(1);
    out.push_str(&format!(
        "run: {} cycles, {} threads | commits={} aborts={} commit_rate={:.3} fallbacks={}\n",
        end,
        stats.threads,
        stats.commits,
        stats.total_aborts(),
        stats.commit_rate(),
        stats.fallbacks
    ));
    out.push_str(&format!(
        "spans: {} recorded ({} auto-closed, {} unmatched ends) | trace events dropped: {}\n",
        rec.spans().len(),
        rec.auto_closed(),
        rec.unmatched_ends(),
        stats.trace_dropped
    ));

    // Occupancy heatmap: shade = fraction of the bucket the core spent
    // inside an atomic section (txn or lock); a lane per core.
    let busy_kinds = [
        SpanKind::Txn,
        SpanKind::TlLock,
        SpanKind::StlLock,
        SpanKind::Fallback,
    ];
    out.push_str(&format!(
        "\natomic-section occupancy ({} cycles/column, shade {})\n",
        end.div_ceil(WIDTH as u64).max(1),
        RAMP.iter().collect::<String>()
    ));
    for core in 0..stats.threads {
        let occ = occupancy(rec, core, &busy_kinds, end, WIDTH);
        let lane: String = occ.iter().map(|&f| ramp(f)).collect();
        out.push_str(&format!("core {core:>2} |{lane}|\n"));
    }
    let parked: Vec<_> = (0..stats.threads)
        .map(|c| {
            occupancy(rec, c, &[SpanKind::Park], end, WIDTH)
                .iter()
                .sum::<f64>()
                / WIDTH as f64
        })
        .collect();
    if parked.iter().any(|&p| p > 0.0) {
        out.push_str("parked  |");
        out.push_str(
            &parked
                .iter()
                .map(|&p| format!("{:>5.1}% ", p * 100.0))
                .collect::<String>(),
        );
        out.push_str("| (mean park fraction per core)\n");
    }

    // Abort causes, labeled by the taxonomy's display names with a
    // NaN-free share column (`abort_fraction` returns 0.0 on empty runs,
    // and zero-count causes are skipped anyway).
    if stats.total_aborts() > 0 {
        out.push_str("\naborts by cause:\n");
        for cause in AbortCause::ALL {
            let n = stats.aborts[cause.index()];
            if n > 0 {
                out.push_str(&format!(
                    "  {:<9} {n:>8} {:>5.1}%\n",
                    cause.name(),
                    stats.abort_fraction(cause) * 100.0
                ));
            }
        }
        out.push_str(&format!(
            "  wasted speculation: {} cycles ({:.1}% of attributed time)\n",
            stats.aborted_cycles(),
            stats.wasted_fraction() * 100.0
        ));
    }

    // NoC and LLC.
    out.push_str(&format!(
        "\nnoc: {} msgs, {:.2} hops/msg, {} queue-cycles, max link util {:.1}%\n",
        stats.messages,
        stats.avg_hops_per_msg(),
        stats.noc_queue_cycles,
        stats.max_link_utilization() * 100.0
    ));
    let peak_bank = stats
        .bank_queue_peak
        .iter()
        .enumerate()
        .max_by_key(|&(_, &p)| p);
    if let Some((bank, &peak)) = peak_bank {
        out.push_str(&format!(
            "llc: hit rate {:.1}%, deepest bank queue {peak} (bank {bank})\n",
            stats.llc_hit_rate() * 100.0
        ));
    }

    out.push('\n');
    out.push_str(&render_latency_table(stats));

    out.push('\n');
    for h in standard_histograms(rec) {
        out.push_str(&h.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::obs::{ObsEvent, ObsSink, SpanEnd};

    #[test]
    fn ramp_is_monotone_and_bounded() {
        assert_eq!(ramp(0.0), ' ');
        assert_eq!(ramp(1.0), '@');
        assert_eq!(ramp(7.0), '@');
    }

    #[test]
    fn occupancy_covers_full_span() {
        let mut rec = Recorder::default();
        rec.event(ObsEvent::SpanBegin {
            cycle: 0,
            track: Track::Core(0),
            kind: SpanKind::Txn,
            core: 0,
        });
        rec.event(ObsEvent::SpanEnd {
            cycle: 100,
            track: Track::Core(0),
            kind: SpanKind::Txn,
            core: 0,
            end: SpanEnd::Commit,
        });
        rec.finish(100);
        let occ = occupancy(&rec, 0, &[SpanKind::Txn], 100, 10);
        assert!(occ.iter().all(|&f| (f - 1.0).abs() < 1e-9), "{occ:?}");
        let none = occupancy(&rec, 1, &[SpanKind::Txn], 100, 10);
        assert!(none.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn summary_renders_lanes_for_every_thread() {
        let rec = Recorder::default();
        let mut stats = RunStats::new(3);
        stats.threads = 3;
        stats.cycles = 500;
        let s = render_summary(&rec, &stats);
        assert!(s.contains("core  0 |"));
        assert!(s.contains("core  2 |"));
        assert!(s.contains("noc:"));
        // The latency table is always present, with every class row and
        // no NaN/Inf even though nothing was recorded.
        assert!(s.contains("transaction latency by outcome class"));
        assert!(s.contains("htm_commit"));
        assert!(!s.contains("NaN"));
    }
}
