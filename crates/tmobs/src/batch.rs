//! Host-side progress reporting for batch runs: a thread-safe counter
//! built on the same wall-clock accounting as [`crate::selfprof`].
//!
//! Batch executors (the bench crate's `tmlab`) tick this from worker
//! threads as points complete; when enabled it paints one stderr line
//! per completion with the running count, the point's label, and its
//! host wall-clock cost. Like every tmobs facility it is write-only:
//! it observes the harness, it cannot influence a simulation.

use std::sync::Mutex;
use std::time::Instant;

/// Shared progress counter for a batch of `total` work items.
#[derive(Debug)]
pub struct BatchProgress {
    started: Instant,
    state: Mutex<State>,
    verbose: bool,
}

#[derive(Debug)]
struct State {
    done: usize,
    total: usize,
}

impl BatchProgress {
    /// `verbose: false` still counts (for [`BatchProgress::done`]) but
    /// prints nothing.
    pub fn new(total: usize, verbose: bool) -> BatchProgress {
        BatchProgress {
            started: Instant::now(),
            state: Mutex::new(State { done: 0, total }),
            verbose,
        }
    }

    /// Record one completed item. `label` names the point; `cached` marks
    /// a cache hit (reported, not simulated); `wall_ms` is the item's own
    /// host wall-clock cost.
    pub fn tick(&self, label: &str, cached: bool, wall_ms: f64) {
        let (done, total) = {
            let mut s = self.state.lock().unwrap();
            s.done += 1;
            (s.done, s.total)
        };
        if self.verbose {
            let how = if cached {
                "cache".to_string()
            } else {
                format!("{wall_ms:.1} ms")
            };
            eprintln!(
                "  [tmlab {done:>4}/{total}] {label} ({how}, {:.1}s elapsed)",
                self.started.elapsed().as_secs_f64()
            );
        }
    }

    /// Items completed so far.
    pub fn done(&self) -> usize {
        self.state.lock().unwrap().done
    }

    /// Wall-clock seconds since the batch started.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_count_from_any_thread() {
        let p = BatchProgress::new(8, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    p.tick("a", false, 1.0);
                    p.tick("b", true, 0.0);
                });
            }
        });
        assert_eq!(p.done(), 8);
        assert!(p.elapsed_secs() >= 0.0);
    }
}
