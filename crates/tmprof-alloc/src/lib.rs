//! Counting global allocator for host-side self-profiling.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and maintains two
//! thread-local counters — allocation count and allocated bytes — that
//! the `sim_core::prof` scope profiler samples on phase entry/exit to
//! attribute heap traffic to engine phases. The counters are
//! monotonically increasing per thread; phase attribution is done by
//! differencing, so wrap-around at `u64::MAX` is not a practical
//! concern.
//!
//! Binaries opt in by registering the allocator (registration itself is
//! safe Rust):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tmprof_alloc::CountingAlloc = tmprof_alloc::CountingAlloc;
//! ```
//!
//! Without the registration every counter stays 0 and the profiler
//! reports `allocs = 0` for every phase — the rest of the profile is
//! unaffected.
//!
//! This crate is the workspace's one documented `unsafe_code` exception
//! (see its `Cargo.toml`): a `GlobalAlloc` impl is necessarily `unsafe`.
//! The unsafe surface is limited to forwarding the four allocator
//! methods to `System`; the counter updates are plain `Cell` arithmetic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative `(allocations, bytes)` performed by the current thread
/// since it started, when [`CountingAlloc`] is the registered global
/// allocator; `(0, 0)` otherwise.
pub fn thread_counters() -> (u64, u64) {
    // `try_with` because the allocator can be called during TLS
    // teardown, after these cells are gone; counting stops then.
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (count, bytes)
}

#[inline]
fn note(bytes: usize) {
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes as u64)));
}

/// System allocator wrapper that counts per-thread allocations.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is fresh traffic worth attributing; count the new size.
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not register the allocator, so the counters
    // stay 0 — which is exactly the disabled-path contract.
    #[test]
    fn counters_are_zero_without_registration() {
        let v: Vec<u64> = (0..64).collect();
        assert_eq!(v.len(), 64);
        assert_eq!(thread_counters(), (0, 0));
    }

    #[test]
    fn note_accumulates() {
        note(16);
        note(8);
        let (c, b) = thread_counters();
        assert_eq!(c, 2);
        assert_eq!(b, 24);
    }
}
