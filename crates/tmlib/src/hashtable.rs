//! Chained transactional hash table (STAMP `lib/hashtable.c`): genome's
//! segment dedup set and vacation-style lookup tables.
//!
//! Fixed bucket array allocated at setup; each bucket is a sorted
//! [`List`]. Concurrent transactions conflict only when they touch the
//! same bucket (or the same chain nodes) — the same conflict profile as
//! the original.

use crate::alloc::TmAlloc;
use crate::list::List;
use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, TxCtx};
use sim_core::fxhash::hash_u64;
use sim_core::types::Addr;

/// Handle to a transactional hash table.
#[derive(Clone, Copy, Debug)]
pub struct HashTable {
    buckets: Addr,
    nbuckets: u64,
}

impl HashTable {
    /// Allocate with `nbuckets` chains (power of two).
    pub fn setup(s: &mut SetupCtx, nbuckets: u64) -> HashTable {
        assert!(nbuckets.is_power_of_two());
        let buckets = s.alloc(nbuckets);
        for b in 0..nbuckets {
            s.write(buckets.add(b), 0);
        }
        HashTable { buckets, nbuckets }
    }

    fn bucket(&self, key: u64) -> List {
        let b = hash_u64(key) & (self.nbuckets - 1);
        List::at(self.buckets.add(b))
    }

    /// Insert during untimed setup.
    pub fn setup_insert(&self, s: &mut SetupCtx, key: u64, data: u64) -> bool {
        // Setup-time chains reuse the list layout via direct writes.
        let b = hash_u64(key) & (self.nbuckets - 1);
        let head = self.buckets.add(b);
        // Walk for duplicate + find insert position (sorted).
        let mut prev: Option<Addr> = None;
        let mut cur = s.read(head);
        while cur != 0 {
            let k = s.read(Addr(cur));
            if k == key {
                return false;
            }
            if k > key {
                break;
            }
            prev = Some(Addr(cur));
            cur = s.read(Addr(cur).add(2));
        }
        let node = s.alloc(3);
        s.write(node, key);
        s.write(node.add(1), data);
        s.write(node.add(2), cur);
        match prev {
            None => s.write(head, node.0),
            Some(p) => s.write(p.add(2), node.0),
        }
        true
    }

    /// Insert; false if the key is already present.
    pub fn insert(
        &self,
        tx: &mut TxCtx,
        alloc: &TmAlloc,
        key: u64,
        data: u64,
    ) -> Result<bool, Abort> {
        self.bucket(key).insert(tx, alloc, key, data)
    }

    pub fn find(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        self.bucket(key).find(tx, key)
    }

    pub fn remove(&self, tx: &mut TxCtx, key: u64) -> Result<Option<u64>, Abort> {
        self.bucket(key).remove(tx, key)
    }

    pub fn update(&self, tx: &mut TxCtx, key: u64, data: u64) -> Result<bool, Abort> {
        self.bucket(key).update(tx, key, data)
    }

    pub fn contains(&self, tx: &mut TxCtx, key: u64) -> Result<bool, Abort> {
        Ok(self.find(tx, key)?.is_some())
    }

    /// Total entries (O(buckets + entries); used in validation phases).
    pub fn len(&self, tx: &mut TxCtx) -> Result<u64, Abort> {
        let mut n = 0;
        for b in 0..self.nbuckets {
            n += List::at(self.buckets.add(b)).len(tx)?;
        }
        Ok(n)
    }

    /// Untimed whole-table read for validation oracles.
    pub fn snapshot(&self, mem: &lockiller::flatmem::FlatMem) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for b in 0..self.nbuckets {
            let mut cur = mem.read(self.buckets.add(b));
            while cur != 0 {
                out.push((mem.read(Addr(cur)), mem.read(Addr(cur).add(1))));
                cur = mem.read(Addr(cur).add(2));
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    fn with_table(
        body: impl Fn(&mut TxCtx, &HashTable, &TmAlloc) -> Result<(), Abort> + Send + Sync,
    ) {
        let handles: Mutex<Option<(HashTable, TmAlloc)>> = Mutex::new(None);
        run_tx(
            |s| {
                let alloc = TmAlloc::setup(s, 1, 1 << 17);
                let t = HashTable::setup(s, 16);
                *handles.lock().unwrap() = Some((t, alloc));
            },
            |tx| {
                let (t, alloc) = handles.lock().unwrap().unwrap();
                body(tx, &t, &alloc)
            },
        );
    }

    #[test]
    fn insert_find_remove_across_buckets() {
        with_table(|tx, t, alloc| {
            for k in 0..100u64 {
                assert!(t.insert(tx, alloc, k * 7, k)?);
            }
            assert_eq!(t.len(tx)?, 100);
            for k in 0..100u64 {
                assert_eq!(t.find(tx, k * 7)?, Some(k), "key {}", k * 7);
            }
            assert_eq!(t.find(tx, 1)?, None);
            assert_eq!(t.remove(tx, 7)?, Some(1));
            assert_eq!(t.remove(tx, 7)?, None);
            assert_eq!(t.len(tx)?, 99);
            Ok(())
        });
    }

    #[test]
    fn duplicate_insert_rejected() {
        with_table(|tx, t, alloc| {
            assert!(t.insert(tx, alloc, 42, 1)?);
            assert!(!t.insert(tx, alloc, 42, 2)?);
            assert_eq!(t.find(tx, 42)?, Some(1));
            Ok(())
        });
    }

    #[test]
    fn setup_insert_matches_tx_view() {
        let handles: Mutex<Option<HashTable>> = Mutex::new(None);
        run_tx(
            |s| {
                let t = HashTable::setup(s, 8);
                assert!(t.setup_insert(s, 10, 100));
                assert!(t.setup_insert(s, 18, 180)); // same bucket candidates
                assert!(!t.setup_insert(s, 10, 999));
                *handles.lock().unwrap() = Some(t);
            },
            |tx| {
                let t = handles.lock().unwrap().unwrap();
                assert_eq!(t.find(tx, 10)?, Some(100));
                assert_eq!(t.find(tx, 18)?, Some(180));
                assert_eq!(t.len(tx)?, 2);
                Ok(())
            },
        );
    }
}
