//! Transactional memory allocator with per-thread arenas.
//!
//! Mirrors STAMP's thread-local allocator: each thread bump-allocates from
//! its own arena, so allocation itself causes no inter-thread conflicts.
//! The bump pointer lives in simulated memory: an aborted transaction's
//! allocations are rolled back with everything else. Crossing into a fresh
//! 4 KiB page issues a [`TxCtx::page_touch`], which models the demand-
//! paging faults that abort best-effort HTM transactions in
//! allocation-heavy workloads.

use lockiller::flatmem::{SetupCtx, PAGE_WORDS};
use lockiller::guest::{Abort, TxCtx};
use sim_core::types::Addr;

/// Handle to the arena set; copyable into guest closures.
#[derive(Clone, Copy, Debug)]
pub struct TmAlloc {
    /// Base of the control block: one bump-pointer word per thread
    /// (each on its own cache line to avoid false sharing).
    ctl: Addr,
    /// Base of thread 0's arena.
    arenas: Addr,
    /// Words per thread arena.
    arena_words: u64,
    threads: u64,
}

impl TmAlloc {
    /// Reserve arenas for `threads` threads of `arena_words` words each.
    /// Arena space above the setup-time break is *not* pre-mapped: first
    /// touches fault, as fresh heap pages do.
    pub fn setup(s: &mut SetupCtx, threads: usize, arena_words: u64) -> TmAlloc {
        let threads = threads as u64;
        let ctl = s.alloc(threads * 8);
        let arenas = s.reserve_arena(threads * arena_words);
        for t in 0..threads {
            // Bump pointer starts at the arena base.
            let base = arenas.add(t * arena_words);
            s.write(ctl.add(t * 8), base.0);
        }
        TmAlloc {
            ctl,
            arenas,
            arena_words,
            threads,
        }
    }

    fn bump_addr(&self, tid: usize) -> Addr {
        self.ctl.add(tid as u64 * 8)
    }

    /// Allocate `words` words (line-aligned) from the calling thread's
    /// arena. Fails the enclosing transaction on a demand-paging fault;
    /// panics if the arena is exhausted (a workload sizing bug).
    pub fn alloc(&self, tx: &mut TxCtx, words: u64) -> Result<Addr, Abort> {
        let tid = tx.tid();
        debug_assert!((tid as u64) < self.threads);
        let bp_addr = self.bump_addr(tid);
        let cur = tx.load(bp_addr)?;
        let aligned = (cur + 7) & !7;
        let new = aligned + words;
        let arena_base = self.arenas.0 + tid as u64 * self.arena_words;
        assert!(
            new <= arena_base + self.arena_words,
            "thread {tid} arena exhausted ({} words)",
            self.arena_words
        );
        tx.store(bp_addr, new)?;
        // Demand paging: touch each page the fresh object spans.
        let first_page = aligned / PAGE_WORDS;
        let last_page = (new.max(aligned + 1) - 1) / PAGE_WORDS;
        for p in first_page..=last_page {
            tx.page_touch(p)?;
        }
        Ok(Addr(aligned))
    }

    /// Allocate and zero-fill (fresh pages are zeroed by the OS; arena
    /// reuse after an aborted transaction may leave stale words, so
    /// structures that rely on zeroed fields use this).
    pub fn alloc_zeroed(&self, tx: &mut TxCtx, words: u64) -> Result<Addr, Abort> {
        let a = self.alloc(tx, words)?;
        for i in 0..words {
            tx.store(a.add(i), 0)?;
        }
        Ok(a)
    }

    /// Words remaining in `tid`'s arena (diagnostics, untimed contexts).
    pub fn arena_words(&self) -> u64 {
        self.arena_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let handle: Mutex<Option<TmAlloc>> = Mutex::new(None);
        let out: Mutex<Vec<Addr>> = Mutex::new(Vec::new());
        run_tx(
            |s| {
                *handle.lock().unwrap() = Some(TmAlloc::setup(s, 2, 4096));
            },
            |tx| {
                let a = handle.lock().unwrap().unwrap();
                let mut got = Vec::new();
                for w in [3u64, 8, 1, 16] {
                    got.push(a.alloc(tx, w)?);
                }
                *out.lock().unwrap() = got;
                Ok(())
            },
        );
        let got = out.into_inner().unwrap();
        assert_eq!(got.len(), 4);
        for w in &got {
            assert_eq!(w.0 % 8, 0, "allocation not line-aligned");
        }
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "allocations overlap");
        // Ranges must not overlap either: each next base >= prev + size.
        assert!(got[1].0 >= got[0].0 + 3);
    }

    #[test]
    fn zeroed_allocation_is_zero() {
        let handle: Mutex<Option<TmAlloc>> = Mutex::new(None);
        let probe: Mutex<Option<Addr>> = Mutex::new(None);
        let mem = run_tx(
            |s| {
                *handle.lock().unwrap() = Some(TmAlloc::setup(s, 1, 4096));
            },
            |tx| {
                let a = handle.lock().unwrap().unwrap();
                let p = a.alloc_zeroed(tx, 8)?;
                tx.store(p.add(7), 9)?;
                *probe.lock().unwrap() = Some(p);
                Ok(())
            },
        );
        let p = probe.into_inner().unwrap().unwrap();
        for i in 0..7 {
            assert_eq!(mem.read(p.add(i)), 0);
        }
        assert_eq!(mem.read(p.add(7)), 9);
    }
}
