//! Transactional bitmap (STAMP `lib/bitmap.c`): genome's segment-usage
//! tracking and ssca2's visited sets.
//!
//! Layout: `[nbits, word0, word1, ...]`. Bit `i` lives in word `i / 64`,
//! so nearby bits share cache lines — the source of genuine (and false)
//! sharing the original exhibits.

use lockiller::flatmem::SetupCtx;
use lockiller::guest::{Abort, TxCtx};
use sim_core::types::Addr;

const NBITS: u64 = 0;
const WORDS: u64 = 1;

/// Handle to a transactional bitmap.
#[derive(Clone, Copy, Debug)]
pub struct Bitmap {
    base: Addr,
}

impl Bitmap {
    pub fn setup(s: &mut SetupCtx, nbits: u64) -> Bitmap {
        let words = nbits.div_ceil(64);
        let base = s.alloc(WORDS + words);
        s.write(base.add(NBITS), nbits);
        for w in 0..words {
            s.write(base.add(WORDS + w), 0);
        }
        Bitmap { base }
    }

    pub fn nbits(&self, tx: &mut TxCtx) -> Result<u64, Abort> {
        tx.load(self.base.add(NBITS))
    }

    /// Set bit `i`; returns the previous value.
    pub fn test_and_set(&self, tx: &mut TxCtx, i: u64) -> Result<bool, Abort> {
        let cell = self.base.add(WORDS + i / 64);
        let w = tx.load(cell)?;
        let mask = 1u64 << (i % 64);
        if w & mask != 0 {
            return Ok(true);
        }
        tx.store(cell, w | mask)?;
        Ok(false)
    }

    pub fn set(&self, tx: &mut TxCtx, i: u64) -> Result<(), Abort> {
        self.test_and_set(tx, i).map(|_| ())
    }

    pub fn clear(&self, tx: &mut TxCtx, i: u64) -> Result<(), Abort> {
        let cell = self.base.add(WORDS + i / 64);
        let w = tx.load(cell)?;
        tx.store(cell, w & !(1u64 << (i % 64)))?;
        Ok(())
    }

    pub fn test(&self, tx: &mut TxCtx, i: u64) -> Result<bool, Abort> {
        let w = tx.load(self.base.add(WORDS + i / 64))?;
        Ok(w & (1u64 << (i % 64)) != 0)
    }

    /// Untimed popcount for validation.
    pub fn count(&self, mem: &lockiller::flatmem::FlatMem) -> u64 {
        let nbits = mem.read(self.base.add(NBITS));
        let words = nbits.div_ceil(64);
        (0..words)
            .map(|w| mem.read(self.base.add(WORDS + w)).count_ones() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_tx;
    use std::sync::Mutex;

    #[test]
    fn set_test_clear() {
        let h: Mutex<Option<Bitmap>> = Mutex::new(None);
        run_tx(
            |s| {
                *h.lock().unwrap() = Some(Bitmap::setup(s, 200));
            },
            |tx| {
                let b = h.lock().unwrap().unwrap();
                assert_eq!(b.nbits(tx)?, 200);
                assert!(!b.test(tx, 5)?);
                assert!(!b.test_and_set(tx, 5)?);
                assert!(b.test_and_set(tx, 5)?);
                assert!(b.test(tx, 5)?);
                // Bits in a different word.
                assert!(!b.test(tx, 150)?);
                b.set(tx, 150)?;
                assert!(b.test(tx, 150)?);
                b.clear(tx, 5)?;
                assert!(!b.test(tx, 5)?);
                assert!(b.test(tx, 150)?);
                Ok(())
            },
        );
    }

    #[test]
    fn count_after_run() {
        let h: Mutex<Option<Bitmap>> = Mutex::new(None);
        let mem = run_tx(
            |s| {
                *h.lock().unwrap() = Some(Bitmap::setup(s, 128));
            },
            |tx| {
                let b = h.lock().unwrap().unwrap();
                for i in [0u64, 63, 64, 127] {
                    b.set(tx, i)?;
                }
                Ok(())
            },
        );
        assert_eq!(h.into_inner().unwrap().unwrap().count(&mem), 4);
    }
}
